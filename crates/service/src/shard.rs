//! Sharded synthetic-utilization counters (the concurrent Section 4 state).
//!
//! Layout:
//!
//! * **Global per-stage totals** — one cache-padded [`AtomicF64`] per
//!   stage holding the live contribution sum *above* the reservation
//!   floor, plus an atomic count of live contributions. Reading the full
//!   utilization vector is `N` relaxed loads: the cheap aggregate path.
//! * **Per-shard bookkeeping** — a mutex-protected [`Shard`] holding the
//!   live-entry map (which task charged what, where), the shard's
//!   [`TimerWheel`] of deadline decrements, an importance-ordered shedding
//!   index, and the shard's slice of the decision-latency histogram.
//!   Threads are spread across shards round-robin, so shard mutexes are
//!   effectively uncontended.
//!
//! Consistency rules (proved out by the concurrency tests):
//!
//! * Charges (additions) happen only while the service's admission gate is
//!   held, so the gate holder composes a vector that concurrent mutations
//!   can only *decrease* — and the region test is monotone in every
//!   `U_j`, so a decision made on a stale-high vector is conservative.
//! * Reductions (deadline expiry, release, shed, idle reset) subtract the
//!   per-stage amount **before** decrementing the stage's live count.
//!   When the gate holder observes a live count of zero it may therefore
//!   pin the stage total to exactly `0.0` (the floor), mirroring
//!   `StageTracker`'s empty-tracker normalization, without racing any
//!   in-flight subtraction.
//! * Exactly-once removal is enforced by `HashMap::remove` on the entry
//!   map: whichever of {deadline expiry, release, shed} wins removes the
//!   entry; the others observe its absence and do nothing.
//!
//! On top of the rules above, two lock-free aids power the service's
//! reject fast path (DESIGN.md §14):
//!
//! * **Seqlock over additions.** A global sequence counter is bumped to
//!   odd before a charge's first add and to even after its last.
//!   [`ShardedUtilization::snapshot_into`] reads the utilization vector
//!   without any lock and reports whether the read was torn (the counter
//!   was odd, or changed across the read). Reductions deliberately do
//!   *not* bump the counter: a snapshot missing a concurrent reduction is
//!   merely stale-high, which the monotone region test turns into a
//!   conservative (reject-only) answer.
//! * **Per-shard next-due hints.** Each shard publishes a lower bound on
//!   its earliest pending deadline decrement. A reader that observes
//!   `now < hint` knows a locked decision on that shard would drain
//!   nothing from its wheel, so skipping the drain cannot change the
//!   verdict. Commits lower the hint with `fetch_min`; drains refresh it
//!   from the wheel under the shard lock.

use crate::wheel::TimerWheel;
use frap_core::hist::LatencyHistogram;
use frap_core::task::{Importance, StageId};
use frap_core::time::Time;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Largest wheel population for which a consumed next-due hint is
/// refreshed by an exact [`TimerWheel::earliest`] scan; above it the
/// refresh falls back to the `now + 1` lower bound (see
/// [`ShardedUtilization::expire_due`]). 512 entries keeps the scan under
/// a few microseconds and is an order of magnitude above the live-task
/// population of reject-dominated steady states, the only regime where
/// the lock-free reject path needs a far-future hint.
const HINT_SCAN_LIMIT: usize = 512;

/// An `f64` stored in an `AtomicU64` by bit pattern, with CAS-loop add.
#[derive(Debug, Default)]
pub struct AtomicF64 {
    bits: AtomicU64,
}

impl AtomicF64 {
    /// A new atomic holding `value`.
    pub fn new(value: f64) -> AtomicF64 {
        AtomicF64 {
            bits: AtomicU64::new(value.to_bits()),
        }
    }

    /// The current value.
    #[inline]
    pub fn load(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::SeqCst))
    }

    /// Overwrites the value.
    #[inline]
    pub fn store(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::SeqCst);
    }

    /// Atomically adds `delta` (compare-exchange loop) and returns the new
    /// value.
    #[inline]
    pub fn fetch_add(&self, delta: f64) -> f64 {
        let mut current = self.bits.load(Ordering::SeqCst);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .bits
                .compare_exchange_weak(current, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return f64::from_bits(next),
                Err(actual) => current = actual,
            }
        }
    }
}

/// Pads (and aligns) a value to a cache line so per-stage atomics on
/// adjacent stages do not false-share.
#[derive(Debug, Default)]
#[repr(align(64))]
pub struct CachePadded<T>(pub T);

/// One live admitted task's bookkeeping, owned by exactly one shard.
#[derive(Debug)]
pub struct LiveEntry {
    /// `(stage, amount)` still charged; amounts are zeroed by idle resets.
    pub contributions: Vec<(StageId, f64)>,
    /// Parallel to `contributions`: stage-departure flags for idle reset.
    pub departed: Vec<bool>,
    /// Absolute deadline (decrement instant).
    pub expiry: Time,
    /// Shedding priority.
    pub importance: Importance,
}

/// The mutex-protected slice of state owned by one worker-thread shard.
#[derive(Debug)]
pub struct Shard {
    /// Live entries admitted through this shard.
    pub entries: HashMap<u64, LiveEntry>,
    /// Deadline decrements for this shard's entries.
    pub wheel: TimerWheel,
    /// Shedding index, ascending `(importance, ticket)`.
    pub by_importance: BTreeSet<(Importance, u64)>,
    /// This shard's slice of the decision-latency histogram
    /// (nanosecond-valued; see `metrics`).
    pub latency: LatencyHistogram,
    /// Scratch buffer for wheel drains.
    drained: Vec<(Time, u64)>,
    /// This shard's index in the owning [`ShardedUtilization`], so a
    /// locked drain can refresh the matching next-due hint.
    index: usize,
}

/// Per-stage synthetic-utilization counters sharded across worker threads.
#[derive(Debug)]
pub struct ShardedUtilization {
    floors: Vec<f64>,
    /// Live contribution sum above the floor, one per stage.
    totals: Vec<CachePadded<AtomicF64>>,
    /// Number of live contributions per stage.
    live: Vec<CachePadded<AtomicUsize>>,
    /// Seqlock over additions: odd while a charge is in flight.
    seq: CachePadded<AtomicU64>,
    /// Per-shard lower bound (µs) on the earliest pending deadline
    /// decrement; `u64::MAX` when the shard's wheel is known empty.
    next_due: Vec<CachePadded<AtomicU64>>,
    shards: Vec<Mutex<Shard>>,
}

impl ShardedUtilization {
    /// State for `floors.len()` stages split over `shards` shards, with
    /// per-stage reservation floors (Section 5); all wheels start at
    /// `start`.
    ///
    /// # Panics
    ///
    /// Panics if there are no stages, no shards, or a floor is negative or
    /// not finite.
    pub fn new(floors: &[f64], shards: usize, start: Time) -> ShardedUtilization {
        assert!(!floors.is_empty(), "at least one stage");
        assert!(shards > 0, "at least one shard");
        for &f in floors {
            assert!(
                f.is_finite() && f >= 0.0,
                "reservation must be a finite non-negative utilization"
            );
        }
        ShardedUtilization {
            floors: floors.to_vec(),
            totals: floors
                .iter()
                .map(|_| CachePadded(AtomicF64::new(0.0)))
                .collect(),
            live: floors.iter().map(|_| CachePadded::default()).collect(),
            seq: CachePadded(AtomicU64::new(0)),
            next_due: (0..shards)
                .map(|_| CachePadded(AtomicU64::new(u64::MAX)))
                .collect(),
            shards: (0..shards)
                .map(|index| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        wheel: TimerWheel::new(start),
                        by_importance: BTreeSet::new(),
                        latency: LatencyHistogram::new(),
                        drained: Vec::new(),
                        index,
                    })
                })
                .collect(),
        }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.floors.len()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The reservation floors.
    pub fn floors(&self) -> &[f64] {
        &self.floors
    }

    /// The shard mutexes (lock in ascending index order; the admission
    /// gate, if needed, is always acquired after every shard lock).
    pub fn shard(&self, index: usize) -> &Mutex<Shard> {
        &self.shards[index]
    }

    /// Reads the aggregate utilization vector into `out`: floor plus live
    /// total per stage, clamped to the floor so float drift from unordered
    /// subtraction can never produce a (panic-inducing) negative
    /// utilization.
    pub fn read_into(&self, out: &mut Vec<f64>) {
        out.clear();
        for (total, &floor) in self.totals.iter().zip(&self.floors) {
            out.push(floor + total.0.load().max(0.0));
        }
    }

    /// Fused [`ShardedUtilization::pin_idle_floors`] +
    /// [`ShardedUtilization::read_into`]: one pass over the stages instead
    /// of two, for decision paths that always do both back to back.
    /// **Caller must hold the admission gate** (pinning is an addition-side
    /// operation).
    pub fn pin_and_read_into(&self, out: &mut Vec<f64>) {
        out.clear();
        for ((total, live), &floor) in self.totals.iter().zip(&self.live).zip(&self.floors) {
            if live.0.load(Ordering::SeqCst) == 0 {
                total.0.store(0.0);
                out.push(floor);
            } else {
                out.push(floor + total.0.load().max(0.0));
            }
        }
    }

    /// Number of live contributions currently charged on `stage`.
    pub fn stage_live(&self, stage: usize) -> usize {
        self.live[stage].0.load(Ordering::SeqCst)
    }

    /// Charges an arrival's contributions. **Caller must hold the
    /// admission gate** — additions are only legal under the gate, which
    /// is also what makes the single seqlock writer-side safe (no two
    /// charges are ever concurrent).
    pub fn charge(&self, contributions: &[(StageId, f64)]) {
        self.seq.0.fetch_add(1, Ordering::SeqCst); // odd: charge in flight
        for &(stage, amount) in contributions {
            self.totals[stage.index()].0.fetch_add(amount);
            self.live[stage.index()].0.fetch_add(1, Ordering::SeqCst);
        }
        self.seq.0.fetch_add(1, Ordering::SeqCst); // even: charge visible
    }

    /// A charge that pauses between the first stage's add and the rest,
    /// so the torn-read test can deterministically catch a reader mid
    /// charge. Same seqlock protocol as [`ShardedUtilization::charge`].
    #[cfg(test)]
    pub fn torn_charge_for_test(&self, contributions: &[(StageId, f64)], pause: impl FnOnce()) {
        self.seq.0.fetch_add(1, Ordering::SeqCst);
        let (first, rest) = contributions.split_first().expect("non-empty charge");
        self.totals[first.0.index()].0.fetch_add(first.1);
        self.live[first.0.index()].0.fetch_add(1, Ordering::SeqCst);
        pause();
        for &(stage, amount) in rest {
            self.totals[stage.index()].0.fetch_add(amount);
            self.live[stage.index()].0.fetch_add(1, Ordering::SeqCst);
        }
        self.seq.0.fetch_add(1, Ordering::SeqCst);
    }

    /// Lock-free utilization snapshot for the reject fast path. Reads the
    /// same per-stage values [`ShardedUtilization::pin_and_read_into`]
    /// would produce — stages with no live contributions read as exactly
    /// the floor — but **without writing** the pin back and without any
    /// lock. Returns `false` (leaving `out` unspecified) when the seqlock
    /// shows a charge in flight or completed mid-read; the caller must
    /// then fall back to the locked path.
    ///
    /// Reductions do not participate in the seqlock, so a "clean" snapshot
    /// may still be missing concurrent subtractions — i.e. it is
    /// stale-*high*, which the monotone region test renders conservative:
    /// only safe-to-make rejections may be concluded from it.
    pub fn snapshot_into(&self, out: &mut Vec<f64>) -> bool {
        let s1 = self.seq.0.load(Ordering::SeqCst);
        if s1 & 1 == 1 {
            return false;
        }
        out.clear();
        for ((total, live), &floor) in self.totals.iter().zip(&self.live).zip(&self.floors) {
            if live.0.load(Ordering::SeqCst) == 0 {
                out.push(floor);
            } else {
                out.push(floor + total.0.load().max(0.0));
            }
        }
        self.seq.0.load(Ordering::SeqCst) == s1
    }

    /// Lowers shard `index`'s next-due hint to `expiry` if it is earlier.
    /// Called on every commit, after the entry is inserted in the wheel.
    pub fn note_deadline(&self, index: usize, expiry: Time) {
        self.next_due[index]
            .0
            .fetch_min(expiry.as_micros(), Ordering::SeqCst);
    }

    /// Shard `index`'s next-due hint in microseconds: a lower bound on the
    /// earliest deadline decrement a locked drain of that shard could
    /// apply. `u64::MAX` means the wheel is known empty.
    pub fn shard_next_due(&self, index: usize) -> u64 {
        self.next_due[index].0.load(Ordering::SeqCst)
    }

    /// Pins every stage with no live contributions to exactly the floor,
    /// mirroring `StageTracker`'s empty-tracker normalization. **Caller
    /// must hold the admission gate** (see module docs for why this cannot
    /// race an in-flight subtraction).
    pub fn pin_idle_floors(&self) {
        for (total, live) in self.totals.iter().zip(&self.live) {
            if live.0.load(Ordering::SeqCst) == 0 {
                total.0.store(0.0);
            }
        }
    }

    /// Subtracts one entry's remaining contributions (total first, then
    /// live count — the ordering [`ShardedUtilization::pin_idle_floors`]
    /// relies on). Lock-free; safe without the gate because reductions
    /// only shrink the vector. Returns the summed amount removed.
    pub fn subtract_entry(&self, contributions: &[(StageId, f64)]) -> f64 {
        let mut removed = 0.0;
        for &(stage, amount) in contributions {
            self.totals[stage.index()].0.fetch_add(-amount);
            self.live[stage.index()].0.fetch_sub(1, Ordering::SeqCst);
            removed += amount;
        }
        removed
    }

    /// Subtracts a single stage's slice of an entry (idle reset path).
    pub fn subtract_stage(&self, stage: StageId, amount: f64) {
        self.totals[stage.index()].0.fetch_add(-amount);
        self.live[stage.index()].0.fetch_sub(1, Ordering::SeqCst);
    }

    /// Applies every deadline decrement due at or before `now` on a locked
    /// shard: expired entries leave the map, the shedding index, and the
    /// global totals, in deterministic `(expiry, ticket)` order. Returns
    /// the number of entries expired.
    pub fn expire_due(&self, shard: &mut Shard, now: Time) -> u64 {
        // Batch decisions hoist one clock read per batch, so `now` may
        // predate advances applied by interleaved per-request decisions;
        // a zero-width advance is legal and still surfaces due entries.
        let now = now.max(shard.wheel.cursor());
        if shard.wheel.cursor() >= now && shard.wheel.is_empty() {
            // Still heal a stale hint, or the fast path would stay
            // disabled for this shard until its next real drain.
            if self.next_due[shard.index].0.load(Ordering::SeqCst) <= now.as_micros() {
                self.next_due[shard.index]
                    .0
                    .store(u64::MAX, Ordering::SeqCst);
            }
            return 0;
        }
        let mut drained = std::mem::take(&mut shard.drained);
        drained.clear();
        shard.wheel.advance(now, &mut drained);
        let mut expired = 0;
        for &(_, id) in &drained {
            // Exactly-once: release or shed may have removed the entry.
            if let Some(entry) = shard.entries.remove(&id) {
                self.subtract_entry(&entry.contributions);
                shard.by_importance.remove(&(entry.importance, id));
                expired += 1;
            }
        }
        shard.drained = drained;
        // Refresh the next-due hint once the drain has consumed it. The
        // exact scan is O(slots + entries), so it is only worth paying on
        // a lightly loaded wheel — precisely the regime where rejections
        // dominate and the fast path earns its keep. A crowded wheel
        // (admission-heavy churn, where lazy-deleted released entries
        // also pile up) gets `now + 1` instead: the cheapest valid lower
        // bound, since everything due ≤ `now` was drained above. That
        // leaves the fast path mostly disabled there, which costs nothing
        // — admission-heavy runs leave the lock-free reject prefix after
        // a request or two anyway.
        if self.next_due[shard.index].0.load(Ordering::SeqCst) <= now.as_micros() {
            let refreshed = if shard.wheel.len() <= HINT_SCAN_LIMIT {
                shard
                    .wheel
                    .earliest()
                    .map(Time::as_micros)
                    .unwrap_or(u64::MAX)
            } else {
                now.as_micros() + 1
            };
            self.next_due[shard.index]
                .0
                .store(refreshed, Ordering::SeqCst);
        }
        expired
    }

    /// Recomputes per-stage live sums from the (already locked) shards'
    /// entry maps and checks them against the atomic totals (within float
    /// tolerance) and the live counts (exactly). The caller must hold
    /// every shard lock *and* the admission gate — in that order, matching
    /// the service's lock discipline (shards ascending, gate last).
    /// Panics on divergence; used by the concurrency tests.
    pub fn validate_locked(&self, shards: &[&Shard]) {
        assert_eq!(shards.len(), self.shard_count(), "all shards required");
        let mut sums = vec![0.0f64; self.stages()];
        let mut counts = vec![0usize; self.stages()];
        for shard in shards {
            for entry in shard.entries.values() {
                for &(stage, amount) in &entry.contributions {
                    sums[stage.index()] += amount;
                    counts[stage.index()] += 1;
                }
            }
        }
        for j in 0..self.stages() {
            let total = self.totals[j].0.load();
            let live = self.live[j].0.load(Ordering::SeqCst);
            assert_eq!(live, counts[j], "stage {j}: live count diverged");
            assert!(
                (total - sums[j]).abs() < 1e-6,
                "stage {j}: atomic total {total} diverged from entry sum {}",
                sums[j]
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(j: usize) -> StageId {
        StageId::new(j)
    }

    #[test]
    fn atomic_f64_add_and_load() {
        let a = AtomicF64::new(1.5);
        assert_eq!(a.fetch_add(0.25), 1.75);
        assert_eq!(a.load(), 1.75);
        a.store(0.0);
        assert_eq!(a.load(), 0.0);
    }

    #[test]
    fn charge_and_subtract_roundtrip() {
        let su = ShardedUtilization::new(&[0.1, 0.0], 2, Time::ZERO);
        let contrib = vec![(stage(0), 0.2), (stage(1), 0.3)];
        su.charge(&contrib);
        let mut v = Vec::new();
        su.read_into(&mut v);
        assert!((v[0] - 0.3).abs() < 1e-12);
        assert!((v[1] - 0.3).abs() < 1e-12);
        assert_eq!(su.stage_live(0), 1);
        su.subtract_entry(&contrib);
        su.pin_idle_floors();
        su.read_into(&mut v);
        assert_eq!(v, vec![0.1, 0.0]);
        validate(&su);
    }

    fn validate(su: &ShardedUtilization) {
        let guards: Vec<_> = (0..su.shard_count())
            .map(|i| su.shard(i).lock().unwrap())
            .collect();
        let refs: Vec<&Shard> = guards.iter().map(|g| &**g).collect();
        su.validate_locked(&refs);
    }

    #[test]
    fn expiry_removes_entries_deterministically() {
        let su = ShardedUtilization::new(&[0.0], 1, Time::ZERO);
        let c = vec![(stage(0), 0.25)];
        {
            let mut sh = su.shard(0).lock().unwrap();
            for id in 0..4u64 {
                su.charge(&c);
                sh.entries.insert(
                    id,
                    LiveEntry {
                        contributions: c.clone(),
                        departed: vec![false],
                        expiry: Time::from_micros(10 + id),
                        importance: Importance::LOWEST,
                    },
                );
                sh.wheel.insert(Time::from_micros(10 + id), id);
                sh.by_importance.insert((Importance::LOWEST, id));
            }
            assert_eq!(su.expire_due(&mut sh, Time::from_micros(11)), 2);
            assert_eq!(sh.entries.len(), 2);
        }
        su.pin_idle_floors();
        let mut v = Vec::new();
        su.read_into(&mut v);
        assert!((v[0] - 0.5).abs() < 1e-12);
        validate(&su);
    }

    #[test]
    #[should_panic(expected = "reservation")]
    fn negative_floor_panics() {
        let _ = ShardedUtilization::new(&[-0.1], 1, Time::ZERO);
    }

    #[test]
    fn snapshot_matches_pin_and_read_when_quiescent() {
        let su = ShardedUtilization::new(&[0.05, 0.0, 0.1], 2, Time::ZERO);
        su.charge(&[(stage(0), 0.2), (stage(2), 0.3)]);
        let mut locked = Vec::new();
        su.pin_and_read_into(&mut locked);
        let mut snap = Vec::new();
        assert!(su.snapshot_into(&mut snap));
        assert_eq!(snap, locked);
        // Idle stages read as the floor without the snapshot writing pins.
        assert_eq!(snap[1], 0.0);
        su.subtract_entry(&[(stage(0), 0.2), (stage(2), 0.3)]);
        assert!(su.snapshot_into(&mut snap));
        assert_eq!(snap, vec![0.05, 0.0, 0.1]);
    }

    #[test]
    fn torn_charge_is_detected_by_the_seqlock() {
        use std::sync::mpsc;
        let su = std::sync::Arc::new(ShardedUtilization::new(&[0.0, 0.0], 1, Time::ZERO));
        let (in_pause_tx, in_pause_rx) = mpsc::channel::<()>();
        let (resume_tx, resume_rx) = mpsc::channel::<()>();
        let writer = {
            let su = std::sync::Arc::clone(&su);
            std::thread::spawn(move || {
                su.torn_charge_for_test(&[(stage(0), 0.25), (stage(1), 0.5)], || {
                    in_pause_tx.send(()).unwrap();
                    resume_rx.recv().unwrap();
                });
            })
        };
        // The writer is parked mid-charge: the first stage's add is
        // published, the second's is not. A lock-free reader must see the
        // odd sequence and refuse the snapshot — this is the "seqlock
        // retry engaged" observation, made deterministic.
        in_pause_rx.recv().unwrap();
        let mut snap = Vec::new();
        assert!(!su.snapshot_into(&mut snap), "torn read went undetected");
        resume_tx.send(()).unwrap();
        writer.join().unwrap();
        assert!(su.snapshot_into(&mut snap));
        assert_eq!(snap, vec![0.25, 0.5]);
    }

    #[test]
    fn snapshot_detects_a_charge_completing_mid_read() {
        // A full charge between the two sequence reads also invalidates;
        // simulate by bumping the counter twice via a real charge after
        // priming s1... not reachable without threads, so instead check
        // the monotone property the protocol relies on: a clean snapshot
        // taken after a charge reflects it entirely, never partially.
        let su = ShardedUtilization::new(&[0.0; 4], 1, Time::ZERO);
        for i in 1..=16u64 {
            let amount = i as f64 * 0.001;
            su.charge(&[
                (stage(0), amount),
                (stage(1), 2.0 * amount),
                (stage(2), 3.0 * amount),
                (stage(3), 4.0 * amount),
            ]);
            let mut snap = Vec::new();
            assert!(su.snapshot_into(&mut snap));
            // Proportions prove no partial charge is ever visible to a
            // clean snapshot.
            assert!((snap[1] - 2.0 * snap[0]).abs() < 1e-12);
            assert!((snap[2] - 3.0 * snap[0]).abs() < 1e-12);
            assert!((snap[3] - 4.0 * snap[0]).abs() < 1e-12);
        }
    }

    #[test]
    fn next_due_hints_follow_commits_and_drains() {
        let su = ShardedUtilization::new(&[0.0], 1, Time::ZERO);
        assert_eq!(su.shard_next_due(0), u64::MAX);
        let c = vec![(stage(0), 0.1)];
        {
            let mut sh = su.shard(0).lock().unwrap();
            for (id, expiry) in [(1u64, 500u64), (2, 300), (3, 900)] {
                su.charge(&c);
                sh.entries.insert(
                    id,
                    LiveEntry {
                        contributions: c.clone(),
                        departed: vec![false],
                        expiry: Time::from_micros(expiry),
                        importance: Importance::LOWEST,
                    },
                );
                sh.wheel.insert(Time::from_micros(expiry), id);
                sh.by_importance.insert((Importance::LOWEST, id));
                su.note_deadline(0, Time::from_micros(expiry));
            }
            // fetch_min kept the earliest commit.
            assert_eq!(su.shard_next_due(0), 300);
            // A drain past the hint refreshes it from the wheel.
            assert_eq!(su.expire_due(&mut sh, Time::from_micros(600)), 2);
            assert_eq!(su.shard_next_due(0), 900);
            // Draining everything parks the hint at MAX.
            assert_eq!(su.expire_due(&mut sh, Time::from_micros(1_000)), 1);
            assert_eq!(su.shard_next_due(0), u64::MAX);
        }
        validate(&su);
    }

    #[test]
    fn stale_hint_heals_even_when_the_wheel_is_already_drained() {
        let su = ShardedUtilization::new(&[0.0], 1, Time::ZERO);
        su.note_deadline(0, Time::from_micros(100));
        let mut sh = su.shard(0).lock().unwrap();
        // Wheel is empty (the entry was never actually inserted); a drain
        // attempt at now ≥ hint must still reset the hint so the fast
        // path is not permanently disabled.
        assert_eq!(su.expire_due(&mut sh, Time::from_micros(150)), 0);
        assert_eq!(su.shard_next_due(0), u64::MAX);
    }

    #[test]
    fn hoisted_batch_clock_cannot_rewind_the_wheel() {
        let su = ShardedUtilization::new(&[0.0], 1, Time::ZERO);
        let mut sh = su.shard(0).lock().unwrap();
        sh.wheel.insert(Time::from_micros(50), 1);
        sh.entries.insert(
            1,
            LiveEntry {
                contributions: vec![(stage(0), 0.1)],
                departed: vec![false],
                expiry: Time::from_micros(50),
                importance: Importance::LOWEST,
            },
        );
        su.charge(&[(stage(0), 0.1)]);
        sh.by_importance.insert((Importance::LOWEST, 1));
        let mut out = Vec::new();
        sh.wheel.advance(Time::from_micros(200), &mut out);
        for (expiry, id) in out {
            sh.wheel.insert(expiry, id); // re-file for expire_due
        }
        // `now` predates the wheel cursor (a hoisted batch clock read);
        // the clamp must surface the due entry instead of panicking.
        assert_eq!(su.expire_due(&mut sh, Time::from_micros(100)), 1);
        assert!(sh.entries.is_empty());
    }
}
