//! A bounded lock-free MPSC ring for deferred admission bookkeeping.
//!
//! The lock-free admit path (DESIGN.md §16) must not take a shard mutex,
//! but every admission eventually needs structural bookkeeping inside
//! one: a live-entry map insert, a timer-wheel insert, and a shedding
//!-index insert. Admitting threads instead push the finished entry into
//! their shard's pending ring; whichever thread next holds that shard's
//! mutex (a deadline drain, release, batch commit, or validator) drains
//! the ring first, so the deferred inserts land before any operation
//! that could observe their absence.
//!
//! The implementation is the classic bounded MPMC sequence-counter queue
//! (Vyukov), used here with a single consumer (the shard-mutex holder —
//! mutual exclusion of consumers comes from the mutex, not the ring).
//! Each slot carries a sequence number: `seq == pos` means free for the
//! producer claiming `pos`, `seq == pos + 1` means occupied and readable
//! by the consumer at `pos`. Producers claim slots with one CAS and
//! never wait for each other; a full ring fails the push immediately
//! (the caller falls back to a `try_lock` direct insert — see
//! `ShardedUtilization::push_pending`), so no decision path ever blocks.
//!
//! This is the one module in the crate allowed `unsafe`: slot payloads
//! live in `UnsafeCell<MaybeUninit<T>>` and ownership is transferred by
//! the sequence-number protocol above (same precedent as the gateway's
//! reactor ring).
#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

/// Pending entries per shard. Sized so that even a full batch of
/// admissions (gateway batches are bounded well below this) fits without
/// touching the fallback path; at 4096 the fallback triggers only under
/// synthetic all-admit floods, where the `try_lock` drain keeps progress.
pub const PENDING_RING_CAPACITY: usize = 4096;

struct Slot<T> {
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<T>>,
}

/// A bounded multi-producer single-consumer ring. `T: Send` transfers
/// between threads; the single consumer must be externally serialized
/// (here: the shard mutex).
pub struct MpscRing<T> {
    slots: Box<[Slot<T>]>,
    mask: u64,
    /// Next position a producer will claim.
    head: AtomicU64,
    /// Next position the consumer will read.
    tail: AtomicU64,
}

// Safety: values are moved in by one thread and out by another; the slot
// sequence protocol (acquire on read, release on publish) transfers
// ownership, so this is as Sync as a channel of `T: Send`.
unsafe impl<T: Send> Sync for MpscRing<T> {}
unsafe impl<T: Send> Send for MpscRing<T> {}

impl<T> std::fmt::Debug for MpscRing<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MpscRing")
            .field("capacity", &self.slots.len())
            .field("len", &self.len())
            .finish()
    }
}

impl<T> MpscRing<T> {
    /// A ring holding up to `capacity` entries (rounded up to a power of
    /// two, minimum 2).
    pub fn with_capacity(capacity: usize) -> MpscRing<T> {
        let cap = capacity.max(2).next_power_of_two();
        MpscRing {
            slots: (0..cap)
                .map(|i| Slot {
                    seq: AtomicU64::new(i as u64),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: cap as u64 - 1,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
        }
    }

    /// Entries currently queued (approximate under concurrent pushes).
    pub fn len(&self) -> usize {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        head.saturating_sub(tail) as usize
    }

    /// Whether the ring currently holds nothing (approximate under
    /// concurrent pushes — exact from under the consumer's mutex).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Attempts to enqueue `value` without blocking. Returns the value
    /// back when the ring is full. Safe to call from any thread.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Safety: the CAS granted this producer exclusive
                        // ownership of the slot until the seq publish.
                        unsafe { (*slot.value.get()).write(value) };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if seq < pos {
                // The consumer has not freed this slot yet: full. A
                // lagging producer (claimed an earlier pos, store still
                // in flight) also lands here for *its* slot only after
                // wrapping a full lap, which equally means full.
                return Err(value);
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues one entry, or `None` if the ring is empty (or the next
    /// slot's producer has claimed but not yet published — the caller
    /// retries at its next drain; entries are never lost). Must only be
    /// called by the single consumer.
    pub fn try_pop(&self) -> Option<T> {
        let pos = self.tail.load(Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == pos + 1 {
            // Safety: seq == pos + 1 means the producer's publish store
            // happened-before this load; the consumer now owns the slot.
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            // Free the slot for the producer one lap ahead.
            slot.seq.store(pos + self.mask + 1, Ordering::Release);
            self.tail.store(pos + 1, Ordering::Release);
            Some(value)
        } else {
            None
        }
    }
}

impl<T> Drop for MpscRing<T> {
    fn drop(&mut self) {
        while self.try_pop().is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_roundtrip_in_order() {
        let ring: MpscRing<u32> = MpscRing::with_capacity(4);
        assert!(ring.is_empty());
        for i in 0..4 {
            ring.try_push(i).unwrap();
        }
        assert_eq!(ring.try_push(99), Err(99), "full ring refuses");
        assert_eq!(ring.len(), 4);
        for i in 0..4 {
            assert_eq!(ring.try_pop(), Some(i));
        }
        assert_eq!(ring.try_pop(), None);
        // Slots recycle across laps.
        ring.try_push(7).unwrap();
        assert_eq!(ring.try_pop(), Some(7));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        let ring: MpscRing<u8> = MpscRing::with_capacity(5);
        for i in 0..8 {
            ring.try_push(i).unwrap();
        }
        assert!(ring.try_push(8).is_err());
    }

    #[test]
    fn concurrent_producers_lose_nothing() {
        const PER_THREAD: u64 = 20_000;
        let ring: Arc<MpscRing<u64>> = Arc::new(MpscRing::with_capacity(256));
        let producers: Vec<_> = (0..4u64)
            .map(|t| {
                let ring = Arc::clone(&ring);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        let mut v = t * PER_THREAD + i;
                        loop {
                            match ring.try_push(v) {
                                Ok(()) => break,
                                Err(back) => {
                                    v = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let mut seen = vec![false; 4 * PER_THREAD as usize];
        let mut popped = 0usize;
        while popped < seen.len() {
            match ring.try_pop() {
                Some(v) => {
                    assert!(!seen[v as usize], "duplicate {v}");
                    seen[v as usize] = true;
                    popped += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        for p in producers {
            p.join().unwrap();
        }
        assert!(ring.try_pop().is_none());
        assert!(seen.iter().all(|&s| s), "lost entries");
    }

    #[test]
    fn drop_releases_queued_values() {
        let ring: MpscRing<Arc<u8>> = MpscRing::with_capacity(4);
        let v = Arc::new(1u8);
        ring.try_push(Arc::clone(&v)).unwrap();
        ring.try_push(Arc::clone(&v)).unwrap();
        assert_eq!(Arc::strong_count(&v), 3);
        drop(ring);
        assert_eq!(Arc::strong_count(&v), 1);
    }
}
