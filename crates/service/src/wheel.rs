//! A hierarchical timer wheel scheduling decrement-at-deadline events.
//!
//! The library controller (`frap_core::admission::Admission`) uses a
//! `BinaryHeap` of expiry instants, popped under a single owner. The
//! concurrent service instead keeps one wheel per shard: insertion and
//! expiry are `O(1)` amortized, and a thread advancing its shard's wheel
//! touches at most `LEVELS × SLOTS` slots regardless of how far the clock
//! jumped while the shard was cold.
//!
//! Exactness contract (matches `StageTracker::advance_to`): after
//! `advance(now, out)`, `out` holds **every** inserted entry with
//! `expiry ≤ now` (deadline inclusive) and no entry with `expiry > now`,
//! sorted by `(expiry, id)` — the same deterministic order in which the
//! library's expiry heap pops, so single-shard runs subtract
//! contributions in bit-identical order.

use frap_core::time::Time;

const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS; // 64 slots per level
const LEVELS: usize = 8; // 64^8 µs ≈ 8.9 years of horizon

/// One scheduled decrement: the instant it is due and the ticket it
/// belongs to.
pub type WheelEntry = (Time, u64);

/// A hierarchical timer wheel over integer-microsecond time.
#[derive(Debug)]
pub struct TimerWheel {
    /// `slots[level * SLOTS + slot]`; level `l` slots are `64^l` µs wide.
    slots: Vec<Vec<WheelEntry>>,
    /// Entries inserted with `expiry ≤ cursor`: due immediately.
    due: Vec<WheelEntry>,
    /// Entries beyond the top level's horizon (practically unreachable).
    overflow: Vec<WheelEntry>,
    cursor: Time,
    len: usize,
}

impl TimerWheel {
    /// An empty wheel with its cursor at `start`.
    pub fn new(start: Time) -> TimerWheel {
        TimerWheel {
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            due: Vec::new(),
            overflow: Vec::new(),
            cursor: start,
            len: 0,
        }
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The wheel's current time.
    pub fn cursor(&self) -> Time {
        self.cursor
    }

    /// Schedules `id` to come due at `expiry`. Entries at or before the
    /// cursor surface on the next [`TimerWheel::advance`] call.
    pub fn insert(&mut self, expiry: Time, id: u64) {
        self.len += 1;
        self.place((expiry, id));
    }

    fn place(&mut self, entry: WheelEntry) {
        let (expiry, _) = entry;
        if expiry <= self.cursor {
            self.due.push(entry);
            return;
        }
        let delta = expiry.as_micros() - self.cursor.as_micros();
        for level in 0..LEVELS {
            // Level `l` holds entries with delta in [64^l, 64^(l+1)).
            if delta < 1u64 << (SLOT_BITS * (level as u32 + 1)) {
                let width_bits = SLOT_BITS * level as u32;
                let slot = ((expiry.as_micros() >> width_bits) & (SLOTS as u64 - 1)) as usize;
                self.slots[level * SLOTS + slot].push(entry);
                return;
            }
        }
        self.overflow.push(entry);
    }

    /// The earliest pending expiry, or `None` if the wheel is empty.
    ///
    /// `O(LEVELS × SLOTS + overflow)` — a full scan, *not* the `O(1)`
    /// insert/advance path. It backs the service's per-shard next-due
    /// hints, which only call it when a drain has consumed the previous
    /// hint, so the scan amortizes across many lock-free reads.
    pub fn earliest(&self) -> Option<Time> {
        let mut best: Option<Time> = None;
        let mut fold = |entries: &[WheelEntry]| {
            for &(expiry, _) in entries {
                best = Some(best.map_or(expiry, |b: Time| b.min(expiry)));
            }
        };
        fold(&self.due);
        for slot in &self.slots {
            fold(slot);
        }
        fold(&self.overflow);
        best
    }

    /// Moves the cursor to `now` and appends every entry with
    /// `expiry ≤ now` to `out`, sorted by `(expiry, id)`. Entries whose
    /// slot is visited but which are not yet due cascade to finer levels.
    ///
    /// # Panics
    ///
    /// Panics if `now` is before the cursor (time went backwards).
    pub fn advance(&mut self, now: Time, out: &mut Vec<WheelEntry>) {
        assert!(now >= self.cursor, "timer wheel cannot rewind");
        if self.len == 0 {
            // Nothing pending: snap the cursor forward without touching
            // any slots (keeps cold shards cheap to catch up).
            self.cursor = now;
            return;
        }
        let start = out.len();
        out.append(&mut self.due);

        let mut cascade: Vec<WheelEntry> = Vec::new();
        let old = self.cursor.as_micros();
        let new = now.as_micros();
        for level in 0..LEVELS {
            let width_bits = SLOT_BITS * level as u32;
            let old_idx = old >> width_bits;
            let new_idx = new >> width_bits;
            if old_idx == new_idx {
                // This level crossed no slot boundary, so no coarser level
                // did either.
                break;
            }
            // Visit every slot boundary crossed, at most one full lap.
            let steps = (new_idx - old_idx).min(SLOTS as u64);
            for s in 1..=steps {
                let slot = ((old_idx + s) & (SLOTS as u64 - 1)) as usize;
                cascade.append(&mut self.slots[level * SLOTS + slot]);
            }
            if new_idx >> SLOT_BITS != old_idx >> SLOT_BITS && level == LEVELS - 1 {
                // The top level wrapped: re-examine the overflow list.
                cascade.append(&mut self.overflow);
            }
        }

        self.cursor = now;
        for entry in cascade {
            if entry.0 <= now {
                out.push(entry);
            } else {
                self.place(entry);
            }
        }
        out.append(&mut self.due);
        self.len -= out.len() - start;
        out[start..].sort_unstable_by_key(|&(expiry, id)| (expiry, id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> Time {
        Time::from_micros(v)
    }

    fn drain(w: &mut TimerWheel, now: Time) -> Vec<u64> {
        let mut out = Vec::new();
        w.advance(now, &mut out);
        out.into_iter().map(|(_, id)| id).collect()
    }

    #[test]
    fn due_at_or_before_now_inclusive() {
        let mut w = TimerWheel::new(Time::ZERO);
        w.insert(us(10), 1);
        w.insert(us(11), 2);
        assert_eq!(drain(&mut w, us(9)), Vec::<u64>::new());
        assert_eq!(drain(&mut w, us(10)), vec![1]);
        assert_eq!(drain(&mut w, us(11)), vec![2]);
        assert!(w.is_empty());
    }

    #[test]
    fn insert_in_the_past_is_due_immediately() {
        let mut w = TimerWheel::new(us(100));
        w.insert(us(50), 7);
        w.insert(us(100), 8);
        assert_eq!(drain(&mut w, us(100)), vec![7, 8]);
    }

    #[test]
    fn output_sorted_by_expiry_then_id() {
        let mut w = TimerWheel::new(Time::ZERO);
        w.insert(us(500), 3);
        w.insert(us(200), 9);
        w.insert(us(200), 4);
        w.insert(us(70_000), 1);
        let mut out = Vec::new();
        w.advance(us(100_000), &mut out);
        assert_eq!(
            out,
            vec![(us(200), 4), (us(200), 9), (us(500), 3), (us(70_000), 1)]
        );
    }

    #[test]
    fn far_future_entries_cascade_down() {
        let mut w = TimerWheel::new(Time::ZERO);
        // Deep level: ~17 minutes out.
        w.insert(us(1_000_000_000), 1);
        assert_eq!(drain(&mut w, us(999_999_999)), Vec::<u64>::new());
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w, us(1_000_000_000)), vec![1]);
    }

    #[test]
    fn big_jumps_do_not_lose_entries() {
        let mut w = TimerWheel::new(Time::ZERO);
        let expiries: Vec<u64> = (0..200).map(|i| 1 + i * 97_003).collect();
        for (i, &e) in expiries.iter().enumerate() {
            w.insert(us(e), i as u64);
        }
        // One giant jump past everything.
        let out = drain(&mut w, us(1 << 40));
        assert_eq!(out.len(), 200);
        assert!(w.is_empty());
    }

    #[test]
    fn incremental_advance_matches_oracle() {
        // Pseudo-random inserts and advances, checked against a sorted list.
        let mut w = TimerWheel::new(Time::ZERO);
        let mut oracle: Vec<WheelEntry> = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rand = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut now = 0u64;
        for id in 0..2_000u64 {
            let expiry = now + 1 + rand() % 5_000_000;
            w.insert(us(expiry), id);
            oracle.push((us(expiry), id));
            if id % 3 == 0 {
                now += rand() % 100_000;
                let mut got = Vec::new();
                w.advance(us(now), &mut got);
                let mut want: Vec<WheelEntry> = oracle
                    .iter()
                    .copied()
                    .filter(|&(e, _)| e <= us(now))
                    .collect();
                want.sort_unstable_by_key(|&(e, id)| (e, id));
                oracle.retain(|&(e, _)| e > us(now));
                assert_eq!(got, want, "mismatch at now={now}");
            }
        }
        let mut got = Vec::new();
        w.advance(us(now + (1 << 33)), &mut got);
        assert_eq!(got.len(), oracle.len());
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "rewind")]
    fn rewinding_panics() {
        let mut w = TimerWheel::new(us(10));
        w.advance(us(5), &mut Vec::new());
    }

    #[test]
    fn scheduled_exactly_at_the_current_tick_pops_without_moving_time() {
        // `expiry == cursor` goes straight to the due list and an advance
        // to the *same* instant (a legal zero-width advance) surfaces it.
        let mut w = TimerWheel::new(us(1_000));
        w.insert(us(1_000), 42);
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w, us(1_000)), vec![42]);
        assert!(w.is_empty());
        assert_eq!(w.cursor(), us(1_000));
    }

    #[test]
    fn exact_level_boundary_deltas_pop_exactly_at_expiry() {
        // A delta of exactly 64^l sits on the first slot of level l (the
        // placement loop's half-open interval [64^l, 64^(l+1))). Each such
        // entry must be absent one tick early and present at its expiry.
        for level in 1..LEVELS as u32 {
            let delta = 1u64 << (SLOT_BITS * level);
            let mut w = TimerWheel::new(Time::ZERO);
            w.insert(us(delta), 7);
            assert_eq!(
                drain(&mut w, us(delta - 1)),
                Vec::<u64>::new(),
                "level {level}: popped a tick early"
            );
            assert_eq!(w.len(), 1, "level {level}: entry lost by cascade");
            assert_eq!(drain(&mut w, us(delta)), vec![7], "level {level}");
            assert!(w.is_empty());
        }
    }

    #[test]
    fn beyond_the_top_level_horizon_goes_to_overflow_and_comes_back() {
        // The top level covers deltas below 64^8 = 2^48 µs; anything
        // farther lands in the overflow list, which is only re-examined
        // when the top level wraps. The entry must survive an advance to
        // just before its expiry and pop exactly at it.
        let horizon = 1u64 << (SLOT_BITS * LEVELS as u32); // 2^48
        let expiry = horizon + 12_345;
        let mut w = TimerWheel::new(Time::ZERO);
        w.insert(us(expiry), 9);
        // Not due far before the horizon (overflow untouched: no wrap yet).
        assert_eq!(drain(&mut w, us(horizon - 1)), Vec::<u64>::new());
        assert_eq!(w.len(), 1);
        // Crossing the top-level wrap re-files the overflow entry.
        assert_eq!(drain(&mut w, us(expiry - 1)), Vec::<u64>::new());
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w, us(expiry)), vec![9]);
        assert!(w.is_empty());
    }

    #[test]
    fn far_future_entry_survives_stepwise_cascades_across_every_level() {
        // Walk the cursor up through each level's width in turn so the
        // entry is cascaded down one level at a time rather than being
        // flushed by a single giant jump.
        let expiry = (1u64 << (SLOT_BITS * 7)) + 99; // top in-wheel level
        let mut w = TimerWheel::new(Time::ZERO);
        w.insert(us(expiry), 3);
        let mut now = 0u64;
        for level in (0..7).rev() {
            now = expiry - (1u64 << (SLOT_BITS * level));
            assert_eq!(drain(&mut w, us(now)), Vec::<u64>::new(), "level {level}");
            assert_eq!(w.len(), 1, "entry lost cascading at level {level}");
        }
        assert!(now < expiry);
        assert_eq!(drain(&mut w, us(expiry)), vec![3]);
        assert!(w.is_empty());
    }

    #[test]
    fn earliest_tracks_the_minimum_across_due_slots_and_overflow() {
        let mut w = TimerWheel::new(Time::ZERO);
        assert_eq!(w.earliest(), None);
        w.insert(us(1u64 << 50), 1); // overflow
        assert_eq!(w.earliest(), Some(us(1u64 << 50)));
        w.insert(us(70_000), 2); // level-2 slot
        assert_eq!(w.earliest(), Some(us(70_000)));
        w.insert(us(500), 3); // level-1 slot
        assert_eq!(w.earliest(), Some(us(500)));
        let mut out = Vec::new();
        w.advance(us(600), &mut out);
        assert_eq!(out, vec![(us(500), 3)]);
        assert_eq!(w.earliest(), Some(us(70_000)));
        w.insert(us(300), 4); // past the cursor: straight to due
        assert_eq!(w.earliest(), Some(us(300)));
        w.advance(us(1u64 << 51), &mut out);
        assert_eq!(w.earliest(), None);
    }

    #[test]
    fn zero_width_advance_with_pending_entries_is_a_no_op() {
        let mut w = TimerWheel::new(us(50));
        w.insert(us(60), 1);
        assert_eq!(drain(&mut w, us(50)), Vec::<u64>::new());
        assert_eq!(w.len(), 1);
        assert_eq!(drain(&mut w, us(60)), vec![1]);
    }
}
