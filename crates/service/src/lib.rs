//! `frap-service`: a concurrent, sharded online admission-control
//! service over the feasible-region test.
//!
//! The library crate (`frap-core`) proves the Section 3 region and runs
//! its Section 4 bookkeeping behind a single-owner, virtual-time
//! [`Admission`](frap_core::admission::Admission) controller. This crate
//! turns that controller into something a real server can call from many
//! threads at wall-clock time:
//!
//! * [`clock`] — the [`Clock`] abstraction: [`MonotonicClock`] for
//!   production, [`ManualClock`] for deterministic tests;
//! * [`wheel`] — a hierarchical timer wheel that schedules the paper's
//!   decrement-at-deadline events in amortized `O(1)` per shard;
//! * [`shard`] — [`ShardedUtilization`], per-stage synthetic-utilization
//!   counters in lock-free fixed-point atomics ([`frap_core::fixed`]),
//!   sharded bookkeeping, and the full charge / decrement / idle-reset
//!   lifecycle;
//! * [`ring`] — the bounded MPSC ring that defers an admitted entry's
//!   structural bookkeeping off the lock-free decision path;
//! * [`metrics`] — admit/reject/shed counters, a nanosecond
//!   decision-latency histogram (reusing
//!   [`frap_core::hist::LatencyHistogram`]), and utilization snapshots;
//! * [`service`] — [`AdmissionService`], the `Send + Sync` handle with
//!   [`try_admit`](AdmissionService::try_admit),
//!   [`try_admit_or_shed`](AdmissionService::try_admit_or_shed), and
//!   RAII [`AdmissionTicket`]s.
//!
//! With one shard and a [`ManualClock`], the service makes decisions
//! bit-identically to the library controller (the oracle tests assert
//! this decision-for-decision); with many shards it trades that exact
//! interleaving for scalability while *never* admitting a task the
//! region test would reject — concurrent decrements only make it
//! conservative. See DESIGN.md ("Service layer") for the sharding
//! scheme and locking proofs, and §16 for the lock-free admit protocol.

// `unsafe` is confined to the pending ring; every other module must stay
// safe code (the ring module opts out locally with a reviewed argument).
#![deny(unsafe_code)]

pub mod clock;
pub mod metrics;
pub mod ring;
pub mod service;
pub mod shard;
pub mod wheel;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use metrics::{CounterSnapshot, MetricsSnapshot, ServiceCounters, UtilizationSeries};
pub use service::{
    AdmissionService, AdmissionServiceBuilder, AdmissionTicket, BatchRequest, ServiceOutcome,
};
pub use shard::ShardedUtilization;
pub use wheel::TimerWheel;
