//! Multi-threaded load generator for [`frap_service::AdmissionService`].
//!
//! Replays `frap-workload` Poisson pipeline streams (one independent
//! stream per thread) against a shared service and reports sustained
//! admission decisions per second, the acceptance ratio, tail decision
//! latency, and periodic utilization snapshots — for **two** regimes,
//! each on a fresh service:
//!
//! * **reject-heavy** — the original cell: 10 ms mean computations at
//!   offered load `load`, every admitted ticket detached so charge lives
//!   until the deadline decrement. Capacity fills within microseconds
//!   and nearly every decision is a rejection, so this measures the
//!   lock-free reject path plus the region test.
//! * **admit-heavy** — 0.1 ms computations with short (resolution 20,
//!   i.e. ~3–9 ms) deadlines, and tickets released immediately (every
//!   4096th detached so the timer wheel still churns). Utilization stays
//!   near the floor, nearly every decision admits, and the measurement
//!   is dominated by the charge / release bookkeeping around the test —
//!   the path the CAS-charged fixed-point admit protocol targets.
//!
//! ```text
//! service-loadgen [threads] [seconds] [stages] [load]
//! ```
//!
//! Defaults: 4 threads, 2 seconds **per regime**, 3 stages, offered
//! load 2.0 (i.e. 2× the per-stage capacity, so the region test is
//! exercised on both sides of the boundary).

use frap_core::admission::ExactContributions;
use frap_core::graph::TaskSpec;
use frap_core::region::FeasibleRegion;
use frap_service::metrics::{MetricsSnapshot, UtilizationSeries};
use frap_service::{AdmissionService, Clock};
use frap_workload::PipelineWorkloadBuilder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn parse_arg<T: std::str::FromStr>(idx: usize, default: T) -> T {
    std::env::args()
        .nth(idx)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// How each worker disposes of an admitted ticket.
#[derive(Clone, Copy, PartialEq)]
enum Disposal {
    /// Detach: charge stays until the deadline decrement (reject-heavy).
    Detach,
    /// Release immediately, detaching every 4096th so the wheel still
    /// sees traffic (admit-heavy). A detached task holds `C` worth of
    /// stage utilization until its deadline regardless of the deadline's
    /// length, so the detach fraction bounds sustainable admit rate at
    /// `4096 × bound / C` — far above what one node can decide.
    MostlyRelease,
}

struct RegimeResult {
    decisions: u64,
    elapsed: f64,
    snap: MetricsSnapshot,
    series: UtilizationSeries,
}

impl RegimeResult {
    fn decisions_per_sec(&self) -> f64 {
        self.decisions as f64 / self.elapsed
    }
}

fn run_regime(
    label: &str,
    stages: usize,
    threads: usize,
    deadline: Duration,
    streams: Vec<Vec<TaskSpec>>,
    disposal: Disposal,
) -> RegimeResult {
    let service = AdmissionService::builder(
        FeasibleRegion::deadline_monotonic(stages),
        ExactContributions,
    )
    .shards(threads.max(1))
    .build();

    let stop = Arc::new(AtomicBool::new(false));
    let started = Instant::now();

    let workers: Vec<_> = streams
        .into_iter()
        .map(|specs| {
            let service = service.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut decisions = 0u64;
                'outer: loop {
                    for spec in &specs {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        if let Some(ticket) = service.try_admit(spec) {
                            match disposal {
                                Disposal::Detach => drop(ticket.detach()),
                                Disposal::MostlyRelease => {
                                    if decisions.is_multiple_of(4096) {
                                        ticket.detach();
                                    } else {
                                        ticket.release();
                                    }
                                }
                            }
                        }
                        decisions += 1;
                    }
                }
                decisions
            })
        })
        .collect();

    // Reporter: sample the utilization vector while the workers run.
    let mut series = UtilizationSeries::new();
    let sample_every = Duration::from_millis(50);
    while started.elapsed() < deadline {
        std::thread::sleep(sample_every.min(deadline - started.elapsed()));
        series.push(service.clock().now(), service.utilizations());
    }
    stop.store(true, Ordering::Relaxed);

    let decisions: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let elapsed = started.elapsed().as_secs_f64();
    let snap = service.snapshot();

    println!();
    println!(
        "[{label}] decisions   {decisions} in {elapsed:.3}s  =>  {:.2}M decisions/sec aggregate",
        decisions as f64 / elapsed / 1e6
    );
    println!(
        "[{label}] outcomes    admitted={} rejected={} released={} expired={} (acceptance {:.1}%)",
        snap.counters.admitted,
        snap.counters.rejected,
        snap.counters.released,
        snap.counters.expired,
        snap.counters.acceptance_ratio() * 100.0
    );
    println!(
        "[{label}] fastpath    cas_retries={} seqlock_fallbacks={}",
        snap.counters.cas_retries, snap.counters.seqlock_fallbacks,
    );
    println!(
        "[{label}] latency     p50={}ns p99={}ns p999={}ns max={}",
        snap.decision_latency_ns(0.50),
        snap.decision_latency_ns(0.99),
        snap.decision_latency_ns(0.999),
        snap.decision_max_display(),
    );
    let peaks: Vec<String> = (0..stages)
        .map(|j| format!("{:.3}", series.peak(j)))
        .collect();
    println!(
        "[{label}] utilization live_tasks={} peak_by_stage=[{}] ({} samples)",
        snap.live_tasks,
        peaks.join(", "),
        series.len()
    );

    service.debug_validate();
    println!("[{label}] invariants  debug_validate passed");

    RegimeResult {
        decisions,
        elapsed,
        snap,
        series,
    }
}

fn main() {
    let threads: usize = parse_arg(1, 4);
    let seconds: f64 = parse_arg(2, 2.0);
    let stages: usize = parse_arg(3, 3);
    let load: f64 = parse_arg(4, 2.0);

    println!(
        "service-loadgen: {threads} thread(s), {seconds:.1}s per regime, \
         {stages}-stage pipeline, offered load {load:.2}"
    );

    // Pre-generate each thread's task stream so the hot loop measures the
    // service, not the generator.
    let specs_per_thread = 2_000usize;
    let deadline = Duration::from_secs_f64(seconds);

    // Reject-heavy: 10 ms mean computation with resolution 10 gives
    // ~150–450 ms deadlines, so detached contributions churn through the
    // timer wheel several times within even a short run.
    let reject_streams: Vec<Vec<TaskSpec>> = (0..threads)
        .map(|t| {
            PipelineWorkloadBuilder::new(stages)
                .mean_computation_ms(10.0)
                .resolution(10.0)
                .load(load)
                .seed(0xC0FFEE ^ (t as u64) << 8)
                .build()
                .specs()
                .take(specs_per_thread)
                .collect()
        })
        .collect();
    let reject = run_regime(
        "reject-heavy",
        stages,
        threads,
        deadline,
        reject_streams,
        Disposal::Detach,
    );

    // Admit-heavy: small computations against short deadlines, released
    // on the spot, so utilization hugs the floor and the charge/rollback/
    // decrement machinery — not the reject read path — is what's timed.
    let admit_streams: Vec<Vec<TaskSpec>> = (0..threads)
        .map(|t| {
            PipelineWorkloadBuilder::new(stages)
                .mean_computation_ms(0.1)
                .resolution(20.0)
                .load(0.25)
                .seed(0xADA ^ (t as u64) << 8)
                .build()
                .specs()
                .take(specs_per_thread)
                .collect()
        })
        .collect();
    let admit = run_regime(
        "admit-heavy",
        stages,
        threads,
        deadline,
        admit_streams,
        Disposal::MostlyRelease,
    );

    // Machine-readable summary for CI artifacts and cross-run comparison
    // (same hand-built JSON convention as `bench_experiments`). The
    // unprefixed decision keys are the reject-heavy regime's, so older
    // baselines compare against the same cell.
    let out = std::env::var("BENCH_SERVICE_OUT").unwrap_or_else(|_| "BENCH_service.json".into());
    let peak_json: Vec<String> = (0..stages)
        .map(|j| format!("{:.6}", reject.series.peak(j)))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"service_loadgen\",\n  \"threads\": {threads},\n  \
         \"seconds\": {seconds},\n  \"stages\": {stages},\n  \"load\": {load},\n  \
         \"decisions\": {},\n  \"decisions_per_sec\": {:.1},\n  \
         \"admitted\": {},\n  \"rejected\": {},\n  \"expired\": {},\n  \
         \"acceptance_ratio\": {:.6},\n  \"live_tasks\": {},\n  \
         \"decision_p50_ns\": {},\n  \"decision_p99_ns\": {},\n  \
         \"decision_p999_ns\": {},\n  \"decision_max_ns\": {},\n  \
         \"decision_max_is_bound\": {},\n  \
         \"utilization_samples\": {},\n  \"peak_utilization_by_stage\": [{}],\n  \
         \"admit_decisions\": {},\n  \"admit_decisions_per_sec\": {:.1},\n  \
         \"admit_acceptance_ratio\": {:.6},\n  \"admit_released\": {},\n  \
         \"admit_expired\": {},\n  \"admit_decision_p50_ns\": {},\n  \
         \"admit_decision_p99_ns\": {},\n  \"admit_decision_max_ns\": {},\n  \
         \"admit_decision_max_is_bound\": {}\n}}\n",
        reject.decisions,
        reject.decisions_per_sec(),
        reject.snap.counters.admitted,
        reject.snap.counters.rejected,
        reject.snap.counters.expired,
        reject.snap.counters.acceptance_ratio(),
        reject.snap.live_tasks,
        reject.snap.decision_latency_ns(0.50),
        reject.snap.decision_latency_ns(0.99),
        reject.snap.decision_latency_ns(0.999),
        reject.snap.decision_max_ns(),
        reject.snap.decision_max_is_bound(),
        reject.series.len(),
        peak_json.join(", "),
        admit.decisions,
        admit.decisions_per_sec(),
        admit.snap.counters.acceptance_ratio(),
        admit.snap.counters.released,
        admit.snap.counters.expired,
        admit.snap.decision_latency_ns(0.50),
        admit.snap.decision_latency_ns(0.99),
        admit.snap.decision_max_ns(),
        admit.snap.decision_max_is_bound(),
    );
    std::fs::write(&out, json).expect("write bench summary");
    println!("wrote          {out}");
}
