//! Multi-threaded load generator for [`frap_service::AdmissionService`].
//!
//! Replays `frap-workload` Poisson pipeline streams (one independent
//! stream per thread) against a single shared service and reports
//! sustained admission decisions per second, the acceptance ratio, tail
//! decision latency, and periodic utilization snapshots.
//!
//! ```text
//! service-loadgen [threads] [seconds] [stages] [load]
//! ```
//!
//! Defaults: 4 threads, 2 seconds, 3 stages, offered load 2.0 (i.e. 2×
//! the per-stage capacity, so the region test is exercised on both
//! sides of the boundary). Every admitted ticket is detached, leaving
//! the paper's decrement-at-deadline rule to reclaim capacity.

use frap_core::admission::ExactContributions;
use frap_core::graph::TaskSpec;
use frap_core::region::FeasibleRegion;
use frap_service::metrics::UtilizationSeries;
use frap_service::{AdmissionService, Clock};
use frap_workload::PipelineWorkloadBuilder;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn parse_arg<T: std::str::FromStr>(idx: usize, default: T) -> T {
    std::env::args()
        .nth(idx)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let threads: usize = parse_arg(1, 4);
    let seconds: f64 = parse_arg(2, 2.0);
    let stages: usize = parse_arg(3, 3);
    let load: f64 = parse_arg(4, 2.0);

    println!(
        "service-loadgen: {threads} thread(s), {seconds:.1}s, \
         {stages}-stage pipeline, offered load {load:.2}"
    );

    let service = AdmissionService::builder(
        FeasibleRegion::deadline_monotonic(stages),
        ExactContributions,
    )
    .shards(threads.max(1))
    .build();

    // Pre-generate each thread's task stream so the hot loop measures the
    // service, not the generator. 10 ms mean computation with resolution
    // 10 gives ~150–450 ms deadlines, so contributions churn through the
    // timer wheel several times within even a short run.
    let specs_per_thread = 2_000usize;
    let streams: Vec<Vec<TaskSpec>> = (0..threads)
        .map(|t| {
            PipelineWorkloadBuilder::new(stages)
                .mean_computation_ms(10.0)
                .resolution(10.0)
                .load(load)
                .seed(0xC0FFEE ^ (t as u64) << 8)
                .build()
                .specs()
                .take(specs_per_thread)
                .collect()
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let deadline = Duration::from_secs_f64(seconds);
    let started = Instant::now();

    let workers: Vec<_> = streams
        .into_iter()
        .map(|specs| {
            let service = service.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut decisions = 0u64;
                'outer: loop {
                    for spec in &specs {
                        if stop.load(Ordering::Relaxed) {
                            break 'outer;
                        }
                        if let Some(ticket) = service.try_admit(spec) {
                            ticket.detach();
                        }
                        decisions += 1;
                    }
                }
                decisions
            })
        })
        .collect();

    // Reporter: sample the utilization vector while the workers run.
    let mut series = UtilizationSeries::new();
    let sample_every = Duration::from_millis(50);
    while started.elapsed() < deadline {
        std::thread::sleep(sample_every.min(deadline - started.elapsed()));
        series.push(service.clock().now(), service.utilizations());
    }
    stop.store(true, Ordering::Relaxed);

    let total: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    let elapsed = started.elapsed().as_secs_f64();
    let snap = service.snapshot();

    println!();
    println!(
        "decisions      {total} in {elapsed:.3}s  =>  {:.2}M decisions/sec aggregate",
        total as f64 / elapsed / 1e6
    );
    println!(
        "outcomes       admitted={} rejected={} expired={} (acceptance {:.1}%)",
        snap.counters.admitted,
        snap.counters.rejected,
        snap.counters.expired,
        snap.counters.acceptance_ratio() * 100.0
    );
    println!(
        "latency        p50={}ns p99={}ns p999={}ns max={}ns",
        snap.decision_latency_ns(0.50),
        snap.decision_latency_ns(0.99),
        snap.decision_latency_ns(0.999),
        snap.decision_max_ns()
    );
    let peaks: Vec<String> = (0..stages)
        .map(|j| format!("{:.3}", series.peak(j)))
        .collect();
    println!(
        "utilization    live_tasks={} peak_by_stage=[{}] ({} samples)",
        snap.live_tasks,
        peaks.join(", "),
        series.len()
    );

    service.debug_validate();
    println!("invariants     debug_validate passed");

    // Machine-readable summary for CI artifacts and cross-run comparison
    // (same hand-built JSON convention as `bench_experiments`).
    let out = std::env::var("BENCH_SERVICE_OUT").unwrap_or_else(|_| "BENCH_service.json".into());
    let peak_json: Vec<String> = (0..stages)
        .map(|j| format!("{:.6}", series.peak(j)))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"service_loadgen\",\n  \"threads\": {threads},\n  \
         \"seconds\": {seconds},\n  \"stages\": {stages},\n  \"load\": {load},\n  \
         \"decisions\": {total},\n  \"decisions_per_sec\": {:.1},\n  \
         \"admitted\": {},\n  \"rejected\": {},\n  \"expired\": {},\n  \
         \"acceptance_ratio\": {:.6},\n  \"live_tasks\": {},\n  \
         \"decision_p50_ns\": {},\n  \"decision_p99_ns\": {},\n  \
         \"decision_p999_ns\": {},\n  \"decision_max_ns\": {},\n  \
         \"utilization_samples\": {},\n  \"peak_utilization_by_stage\": [{}]\n}}\n",
        total as f64 / elapsed,
        snap.counters.admitted,
        snap.counters.rejected,
        snap.counters.expired,
        snap.counters.acceptance_ratio(),
        snap.live_tasks,
        snap.decision_latency_ns(0.50),
        snap.decision_latency_ns(0.99),
        snap.decision_latency_ns(0.999),
        snap.decision_max_ns(),
        series.len(),
        peak_json.join(", "),
    );
    std::fs::write(&out, json).expect("write bench summary");
    println!("wrote          {out}");
}
