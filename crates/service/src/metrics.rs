//! Service observability: decision counters, decision-latency percentiles,
//! and periodic utilization snapshots.
//!
//! The latency histogram reuses [`frap_core::hist::LatencyHistogram`]
//! (moved out of the simulator for exactly this purpose) but records
//! **nanoseconds** rather than microseconds: admission decisions take on
//! the order of 100 ns, far below the workspace's microsecond tick, so
//! the histogram's integer tick is reinterpreted as 1 ns here. The
//! `*_ns` accessors do the unit bookkeeping so callers never touch a
//! mislabeled `TimeDelta`.

use frap_core::hist::LatencyHistogram;
use frap_core::time::{Time, TimeDelta};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotone decision counters, updated lock-free by every worker thread.
#[derive(Debug, Default)]
pub struct ServiceCounters {
    admitted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    released: AtomicU64,
    expired: AtomicU64,
    expired_on_arrival: AtomicU64,
    fast_rejected: AtomicU64,
    seqlock_fallbacks: AtomicU64,
    cas_retries: AtomicU64,
}

impl ServiceCounters {
    pub(crate) fn add_admitted(&self) {
        self.admitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_rejected_n(&self, n: u64) {
        self.rejected.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_shed(&self, n: u64) {
        self.shed.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_released(&self) {
        self.released.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_expired(&self, n: u64) {
        self.expired.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn add_expired_on_arrival(&self) {
        self.expired_on_arrival.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_expired_on_arrival_n(&self, n: u64) {
        self.expired_on_arrival.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts a lock-free fast-path rejection. The decision is *not* also
    /// added to `rejected` here — the fast path pays exactly one atomic
    /// RMW per decision — `snapshot` folds the two together so
    /// [`CounterSnapshot::rejected`] still covers every rejection.
    pub(crate) fn add_fast_rejected(&self) {
        self.fast_rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_seqlock_fallback(&self) {
        self.seqlock_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn add_cas_retry(&self) {
        self.cas_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> CounterSnapshot {
        let fast_rejected = self.fast_rejected.load(Ordering::Relaxed);
        CounterSnapshot {
            admitted: self.admitted.load(Ordering::Relaxed),
            // The locked path and the fast path keep separate tallies so
            // each decision costs one RMW; `rejected` reports their sum.
            rejected: self.rejected.load(Ordering::Relaxed) + fast_rejected,
            shed: self.shed.load(Ordering::Relaxed),
            released: self.released.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            expired_on_arrival: self.expired_on_arrival.load(Ordering::Relaxed),
            fast_rejected,
            seqlock_fallbacks: self.seqlock_fallbacks.load(Ordering::Relaxed),
            cas_retries: self.cas_retries.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`ServiceCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Arrivals admitted (including after shedding).
    pub admitted: u64,
    /// Arrivals rejected.
    pub rejected: u64,
    /// Admitted tasks evicted to make room for more important arrivals.
    pub shed: u64,
    /// Tickets released (dropped or explicitly released) before deadline.
    pub released: u64,
    /// Contributions decremented at their deadline by the timer wheel.
    pub expired: u64,
    /// Arrivals turned away before the admission test because their
    /// deadline budget was already consumed in transit (a front end such
    /// as `frap-gateway` charges these via
    /// [`note_expired_on_arrival`](crate::AdmissionService::note_expired_on_arrival);
    /// they never touch the shards and are not counted as decisions).
    pub expired_on_arrival: u64,
    /// The subset of `rejected` concluded by the lock-free reject fast
    /// path (DESIGN.md §14) without taking a shard mutex or the gate.
    pub fast_rejected: u64,
    /// Fast-path attempts that observed a torn seqlock snapshot (a
    /// concurrent charge was mid-flight). Diagnostic only — the verdict
    /// stays safe either way: a torn read can only conclude a
    /// conservative rejection, and admissions revalidate after charging.
    pub seqlock_fallbacks: u64,
    /// Optimistic CAS-charge attempts that failed post-charge
    /// revalidation, rolled back exactly, and retried. Diagnostic only —
    /// contention cost, never a wrong verdict.
    pub cas_retries: u64,
}

impl CounterSnapshot {
    /// Total admission decisions taken (admit + reject).
    pub fn decisions(&self) -> u64 {
        self.admitted + self.rejected
    }

    /// Fraction of decisions that admitted (1 if no decisions yet).
    pub fn acceptance_ratio(&self) -> f64 {
        if self.decisions() == 0 {
            1.0
        } else {
            self.admitted as f64 / self.decisions() as f64
        }
    }
}

/// Everything the service reports at once: counters, the merged
/// decision-latency histogram, the current utilization vector, and the
/// live-task count.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Decision counters at snapshot time.
    pub counters: CounterSnapshot,
    /// Merged decision-latency histogram; values are **nanoseconds**
    /// (see the module docs). Prefer the `decision_*_ns` accessors.
    pub decision_latency: LatencyHistogram,
    /// Aggregate synthetic utilization per stage at snapshot time.
    pub utilizations: Vec<f64>,
    /// Admitted tasks whose deadlines have not yet passed.
    pub live_tasks: usize,
}

impl MetricsSnapshot {
    /// Decision latency at quantile `q ∈ [0, 1]`, in nanoseconds.
    pub fn decision_latency_ns(&self, q: f64) -> u64 {
        ns_of(self.decision_latency.percentile(q))
    }

    /// Worst observed decision latency, in nanoseconds. When
    /// [`MetricsSnapshot::decision_max_is_bound`] is true this is a
    /// certain **lower** bound (`true max >= this`), not a sample: the
    /// lock-free paths record into a bucket-only atomic histogram, which
    /// knows extremes to bucket resolution, and its saturation bucket
    /// claims no upper bound at all.
    pub fn decision_max_ns(&self) -> u64 {
        ns_of(self.decision_latency.max_lower_bound())
    }

    /// Whether [`MetricsSnapshot::decision_max_ns`] is a bucket bound
    /// rather than an exact sample.
    pub fn decision_max_is_bound(&self) -> bool {
        !self.decision_latency.max_is_exact()
    }

    /// Human-readable max: `"812"` for an exact sample, `">=25165824"`
    /// for a bucket bound.
    pub fn decision_max_display(&self) -> String {
        if self.decision_max_is_bound() {
            format!(">={}", self.decision_max_ns())
        } else {
            format!("{}", self.decision_max_ns())
        }
    }
}

/// Records a decision duration into a nanosecond-valued histogram.
pub(crate) fn record_ns(hist: &mut LatencyHistogram, elapsed: std::time::Duration) {
    // The histogram's tick is reinterpreted as 1 ns (module docs).
    hist.record(TimeDelta::from_micros(elapsed.as_nanos() as u64));
}

/// [`record_ns`] for the lock-free fast path's shared atomic histogram.
pub(crate) fn record_ns_atomic(
    hist: &frap_core::hist::AtomicLatencyHistogram,
    elapsed: std::time::Duration,
) {
    hist.record(TimeDelta::from_micros(elapsed.as_nanos() as u64));
}

fn ns_of(value: TimeDelta) -> u64 {
    value.as_micros()
}

/// A periodic log of utilization vectors, for watching the charge /
/// decrement / idle-reset lifecycle breathe under live traffic. Sampling
/// is driven by the caller (e.g. a load generator's reporter thread).
#[derive(Debug, Clone, Default)]
pub struct UtilizationSeries {
    samples: Vec<(Time, Vec<f64>)>,
}

impl UtilizationSeries {
    /// An empty series.
    pub fn new() -> UtilizationSeries {
        UtilizationSeries::default()
    }

    /// Appends one sample.
    pub fn push(&mut self, at: Time, utilizations: Vec<f64>) {
        self.samples.push((at, utilizations));
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples were taken.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The samples, oldest first.
    pub fn samples(&self) -> &[(Time, Vec<f64>)] {
        &self.samples
    }

    /// The highest utilization the series observed on `stage`.
    pub fn peak(&self, stage: usize) -> f64 {
        self.samples
            .iter()
            .filter_map(|(_, v)| v.get(stage).copied())
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_snapshot() {
        let c = ServiceCounters::default();
        c.add_admitted();
        c.add_admitted();
        c.add_rejected();
        c.add_shed(3);
        c.add_released();
        c.add_expired(2);
        c.add_expired_on_arrival();
        c.add_fast_rejected();
        c.add_seqlock_fallback();
        c.add_cas_retry();
        let s = c.snapshot();
        assert_eq!(s.admitted, 2);
        // One locked rejection plus one fast-path rejection: `rejected`
        // reports the sum, `fast_rejected` the lock-free subset.
        assert_eq!(s.rejected, 2);
        assert_eq!(s.shed, 3);
        assert_eq!(s.released, 1);
        assert_eq!(s.expired, 2);
        assert_eq!(s.expired_on_arrival, 1);
        assert_eq!(s.fast_rejected, 1);
        assert_eq!(s.seqlock_fallbacks, 1);
        assert_eq!(s.cas_retries, 1);
        assert_eq!(s.decisions(), 4);
        assert!((s.acceptance_ratio() - 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn latency_is_recorded_in_nanoseconds() {
        let mut h = LatencyHistogram::new();
        record_ns(&mut h, std::time::Duration::from_nanos(800));
        let snap = MetricsSnapshot {
            counters: CounterSnapshot::default(),
            decision_latency: h,
            utilizations: vec![],
            live_tasks: 0,
        };
        let p99 = snap.decision_latency_ns(0.99);
        assert!((700..=900).contains(&p99), "p99={p99}");
    }

    #[test]
    fn utilization_series_peak() {
        let mut s = UtilizationSeries::new();
        assert!(s.is_empty());
        s.push(Time::ZERO, vec![0.1, 0.5]);
        s.push(Time::from_secs(1), vec![0.3, 0.2]);
        assert_eq!(s.len(), 2);
        assert!((s.peak(0) - 0.3).abs() < 1e-12);
        assert!((s.peak(1) - 0.5).abs() < 1e-12);
        assert_eq!(s.peak(9), 0.0);
    }
}
