//! Charge-conservation stress for the CAS-admit protocol (DESIGN.md
//! §16): the fixed-point counters in [`ShardedUtilization`] must
//! account for every unit exactly under any interleaving of optimistic
//! CAS-charged admits (including rolled-back ones), release/deadline
//! decrements, and idle resets.
//!
//! Three layers:
//!
//! 1. **Proptest, single-threaded** — rollback is bit-identical for
//!    arbitrary contribution vectors on arbitrary pre-charged state,
//!    and any charge/release sequence leaves the counters equal to the
//!    integer ledger sum (`Σ charged − Σ released = live`, exactly —
//!    not within a tolerance).
//! 2. **Threaded shard-level stress** — racing workers run the real
//!    write-section protocol (`begin_write` → `add_units` →
//!    revalidate → commit or exact `sub_units` rollback →
//!    `end_write`) against concurrent `subtract_entry` /
//!    `subtract_stage` reductions; afterwards the totals must equal
//!    the surviving ledger exactly. A lost or doubled unit anywhere —
//!    admit, rollback, decrement, or idle reset — shows up as an
//!    integer mismatch.
//! 3. **Threaded service-level stress** — the public API raced end to
//!    end (admit, release, detach-to-expiry, `mark_departed` +
//!    `on_stage_idle`), closed by `debug_validate`, which locks the
//!    world and asserts totals-vs-entries equality and region
//!    membership, plus the counter balance
//!    `admitted == released + expired + live`.

use frap_core::admission::ExactContributions;
use frap_core::fixed::fp_from_utilization;
use frap_core::graph::TaskSpec;
use frap_core::region::FeasibleRegion;
use frap_core::task::StageId;
use frap_core::time::{Time, TimeDelta};
use frap_service::{AdmissionService, ShardedUtilization};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const STAGES: usize = 3;

fn stage(i: usize) -> StageId {
    StageId::new(i)
}

/// Splitmix64, as in `tests/concurrency.rs`.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// A random merged contribution vector (at most one slot per stage) in
/// raw units.
fn random_contribs(rng: &mut u64) -> Vec<(StageId, u64)> {
    let mut out = Vec::new();
    for j in 0..STAGES {
        if !next(rng).is_multiple_of(4) {
            out.push((stage(j), next(rng) % (1 << 40)));
        }
    }
    if out.is_empty() {
        out.push((
            stage((next(rng) % STAGES as u64) as usize),
            next(rng) % (1 << 40),
        ));
    }
    out
}

fn totals_of(su: &ShardedUtilization) -> Vec<u64> {
    let mut out = Vec::new();
    su.read_fp_into(&mut out);
    out
}

proptest! {
    /// An optimistic charge that fails revalidation must subtract back
    /// to the *bit-identical* pre-charge state, whatever was already
    /// charged and whatever the contribution amounts are (including
    /// values whose `f64` round-trip would not be exact).
    #[test]
    fn rollback_is_bit_identical(
        pre in proptest::collection::vec(0u64..(1 << 50), STAGES),
        amounts in proptest::collection::vec(0.0f64..1.5, 1..=STAGES),
    ) {
        let su = ShardedUtilization::new(&[0.0; STAGES], 2, Time::ZERO);
        let pre_contribs: Vec<(StageId, u64)> = pre
            .iter()
            .enumerate()
            .map(|(j, &u)| (stage(j), u))
            .collect();
        su.begin_write();
        su.add_units(&pre_contribs);
        su.end_write();
        let before = totals_of(&su);

        let contribs: Vec<(StageId, u64)> = amounts
            .iter()
            .enumerate()
            .map(|(j, &a)| (stage(j), fp_from_utilization(a)))
            .collect();
        su.begin_write();
        su.add_units(&contribs);
        su.sub_units(&contribs);
        su.end_write();

        prop_assert_eq!(totals_of(&su), before);
    }

    /// Any single-threaded interleaving of charges and releases leaves
    /// the counters exactly equal to the ledger: Σ charged − Σ released
    /// = live, as integers.
    #[test]
    fn charge_release_ledger_is_exact(
        ops in proptest::collection::vec(0u64..u64::MAX, 1..200),
    ) {
        let su = ShardedUtilization::new(&[0.0; STAGES], 2, Time::ZERO);
        let mut live: Vec<Vec<(StageId, u64)>> = Vec::new();
        let mut ledger = [0u64; STAGES];
        for seed in ops {
            let mut rng = seed;
            let release = next(&mut rng).is_multiple_of(3);
            if release && !live.is_empty() {
                let victim = live.swap_remove((next(&mut rng) % live.len() as u64) as usize);
                for &(s, u) in &victim {
                    ledger[s.index()] -= u;
                }
                su.subtract_entry(&victim);
            } else {
                let contribs = random_contribs(&mut rng);
                su.begin_write();
                su.add_units(&contribs);
                su.end_write();
                for &(s, u) in &contribs {
                    ledger[s.index()] += u;
                }
                live.push(contribs);
            }
        }
        prop_assert_eq!(totals_of(&su), ledger.to_vec());
    }
}

/// Racing CAS-admit write sections (with capacity-driven rollbacks)
/// against concurrent full releases and per-stage idle resets: when the
/// dust settles, the atomic totals must equal the surviving ledger
/// exactly.
#[test]
fn concurrent_cas_admit_decrement_idle_reset_conserves_charge() {
    const THREADS: usize = 4;
    const ITERS: usize = 20_000;
    // Per-stage cap standing in for the region test; overshooting it
    // forces the exact-rollback path, so both commit and rollback race
    // with reductions.
    const CAP: u64 = 200 << 40;

    let su = Arc::new(ShardedUtilization::new(&[0.0; STAGES], 2, Time::ZERO));
    // Ledger of committed-and-not-yet-released entries. The mutex
    // serializes bookkeeping only — the charge traffic it mirrors is all
    // lock-free atomics.
    type Ledger = Arc<Mutex<Vec<Vec<(StageId, u64)>>>>;
    let ledger: Ledger = Arc::new(Mutex::new(Vec::new()));

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let su = Arc::clone(&su);
            let ledger = Arc::clone(&ledger);
            std::thread::spawn(move || {
                let mut rng = 0xC0FFEE ^ (t as u64) << 16;
                let mut read = Vec::new();
                for i in 0..ITERS {
                    match next(&mut rng) % 4 {
                        // CAS-admit: optimistic charge, revalidate
                        // against the cap, commit or roll back exactly.
                        0 | 1 => {
                            let contribs = random_contribs(&mut rng);
                            su.begin_write();
                            su.add_units(&contribs);
                            su.read_fp_into(&mut read);
                            if read.iter().all(|&u| u <= CAP) {
                                ledger.lock().unwrap().push(contribs);
                            } else {
                                su.sub_units(&contribs);
                            }
                            su.end_write();
                        }
                        // Release / deadline decrement: subtract a whole
                        // committed entry.
                        2 => {
                            let victim = {
                                let mut l = ledger.lock().unwrap();
                                if l.is_empty() {
                                    None
                                } else {
                                    let k = (next(&mut rng) % l.len() as u64) as usize;
                                    Some(l.swap_remove(k))
                                }
                            };
                            if let Some(v) = victim {
                                su.subtract_entry(&v);
                            }
                        }
                        // Idle reset: subtract one stage's slice of a
                        // committed entry, zeroing it in the ledger so
                        // the books still balance.
                        _ => {
                            let slice = {
                                let mut l = ledger.lock().unwrap();
                                if l.is_empty() {
                                    None
                                } else {
                                    let k = (next(&mut rng) % l.len() as u64) as usize;
                                    let entry = &mut l[k];
                                    let s = (next(&mut rng) % entry.len() as u64) as usize;
                                    let (st, units) = entry[s];
                                    entry[s].1 = 0;
                                    Some((st, units))
                                }
                            };
                            if let Some((st, units)) = slice {
                                su.subtract_stage(st, units);
                            }
                        }
                    }
                    // Interleave an occasional stable snapshot; its
                    // verdict (stable or torn) is not asserted, only
                    // that it never sees a counter underflow.
                    if i.is_multiple_of(512) {
                        let mut snap = Vec::new();
                        let _ = su.snapshot_fp_into(&mut snap);
                        assert!(
                            snap.iter().all(|&u| u < u64::MAX / 2),
                            "counter underflow visible in snapshot: {snap:?}"
                        );
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let mut expected = [0u64; STAGES];
    for entry in ledger.lock().unwrap().iter() {
        for &(s, u) in entry {
            expected[s.index()] += u;
        }
    }
    assert_eq!(
        totals_of(&su),
        expected.to_vec(),
        "Σ charged − Σ released must equal live exactly"
    );
}

/// The public service API raced end to end: lock-free admits, immediate
/// releases, detached tickets expiring through the wheel, and
/// `mark_departed` + `on_stage_idle` resets — closed by the
/// world-locking validator and an exact counter balance.
#[test]
fn service_cas_admit_full_lifecycle_balances() {
    const THREADS: usize = 4;
    let ms = TimeDelta::from_millis;
    let specs = [
        TaskSpec::pipeline(ms(5), &[ms(1), ms(1), ms(1)]).unwrap(),
        TaskSpec::pipeline(ms(10), &[ms(3), ms(1), ms(2)]).unwrap(),
        TaskSpec::pipeline(ms(20), &[ms(1), ms(6), ms(1)]).unwrap(),
    ];

    let service = AdmissionService::builder(
        FeasibleRegion::deadline_monotonic(STAGES),
        ExactContributions,
    )
    .shards(THREADS)
    .build();

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let service = service.clone();
            let stop = Arc::clone(&stop);
            let specs = specs.clone();
            std::thread::spawn(move || {
                let mut rng = 0xFEED ^ (t as u64) << 24;
                while !stop.load(Ordering::Relaxed) {
                    let spec = &specs[(next(&mut rng) % specs.len() as u64) as usize];
                    if let Some(ticket) = service.try_admit(spec) {
                        match next(&mut rng) % 4 {
                            0 => drop(ticket.detach()),
                            1 => {
                                // Depart a stage, trigger its idle
                                // reset, then release the remainder.
                                let s = stage((next(&mut rng) % STAGES as u64) as usize);
                                ticket.mark_departed(s);
                                service.on_stage_idle(s);
                                ticket.release();
                            }
                            _ => ticket.release(),
                        }
                    }
                    if next(&mut rng).is_multiple_of(1024) {
                        service.maintain();
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(std::time::Duration::from_millis(400));
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    // Totals-vs-entries equality and region membership under all locks.
    service.debug_validate();

    let c = service.counters();
    assert_eq!(
        c.admitted,
        c.released + c.expired + service.live_tasks() as u64,
        "every admitted task must leave the books exactly once: {c:?}"
    );
}
