//! Property tests for the service's data structures: the timer wheel
//! must agree with a sorted-list oracle on arbitrary insert/advance
//! interleavings, inclusive of deadline-equal batches and huge jumps.

use frap_core::time::Time;
use frap_service::wheel::TimerWheel;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wheel_matches_sorted_oracle(
        expiries in proptest::collection::vec(1u64..5_000_000_000, 1..200),
        advances in proptest::collection::vec(1u64..100_000_000, 1..50),
    ) {
        let mut wheel = TimerWheel::new(Time::ZERO);
        let mut oracle: Vec<(Time, u64)> = Vec::new();
        for (id, &e) in expiries.iter().enumerate() {
            wheel.insert(Time::from_micros(e), id as u64);
            oracle.push((Time::from_micros(e), id as u64));
        }
        let mut now = 0u64;
        for &step in &advances {
            now += step;
            let at = Time::from_micros(now);
            let mut got = Vec::new();
            wheel.advance(at, &mut got);
            let mut want: Vec<(Time, u64)> =
                oracle.iter().copied().filter(|&(e, _)| e <= at).collect();
            want.sort_unstable_by_key(|&(e, id)| (e, id));
            oracle.retain(|&(e, _)| e > at);
            prop_assert_eq!(got, want, "divergence at now={}", now);
            prop_assert_eq!(wheel.len(), oracle.len());
        }
        // Everything left must surface on one final huge jump.
        let mut rest = Vec::new();
        wheel.advance(Time::from_micros(now + (1 << 45)), &mut rest);
        prop_assert_eq!(rest.len(), oracle.len());
        prop_assert!(wheel.is_empty());
    }

    #[test]
    fn wheel_len_tracks_inserts_and_drains(
        expiries in proptest::collection::vec(1u64..1_000_000, 1..100),
    ) {
        let mut wheel = TimerWheel::new(Time::ZERO);
        for (id, &e) in expiries.iter().enumerate() {
            wheel.insert(Time::from_micros(e), id as u64);
            prop_assert_eq!(wheel.len(), id + 1);
        }
        let mut out = Vec::new();
        wheel.advance(Time::from_micros(1_000_000), &mut out);
        prop_assert_eq!(out.len(), expiries.len());
        prop_assert!(wheel.is_empty());
    }
}
