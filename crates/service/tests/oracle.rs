//! Oracle tests: with one shard and a [`ManualClock`], the concurrent
//! service must agree **decision for decision** with the single-threaded
//! library controller (`frap_core::admission::Admission`) — same
//! admit/reject sequence, same assigned ids, same shed victims, same
//! counters, and matching utilization vectors.
//!
//! Both sides share the decision kernel
//! (`frap_core::admission::tentative_feasible`) and apply charges in the
//! same order, so single-shard agreement is exact up to float
//! associativity in the decrement path (entries with several
//! contributions on one stage are subtracted term-by-term here and as a
//! merged sum there); utilizations are compared at `1e-9`, far above
//! that ulp-level noise and far below any decision threshold the test
//! workloads approach.

use frap_core::admission::{Admission, AdmitOutcome, ExactContributions, MeanContributions};
use frap_core::graph::TaskSpec;
use frap_core::region::FeasibleRegion;
use frap_core::task::{Importance, StageId};
use frap_core::time::{Time, TimeDelta};
use frap_service::{AdmissionService, AdmissionTicket, ManualClock, ServiceOutcome};
use frap_workload::taskgen::DagWorkload;
use frap_workload::PipelineWorkloadBuilder;
use std::collections::HashMap;
use std::sync::Arc;

fn assert_utilizations_agree<R, M>(library: &mut Admission<R, M>, service_u: &[f64], step: usize)
where
    R: frap_core::region::RegionTest,
    M: frap_core::admission::ContributionModel,
{
    let lib_u = library.state_mut().utilizations();
    assert_eq!(lib_u.len(), service_u.len());
    for (j, (&a, &b)) in lib_u.iter().zip(service_u).enumerate() {
        assert!(
            (a - b).abs() < 1e-9,
            "step {step}: stage {j} utilization diverged: library={a} service={b}"
        );
    }
}

/// Drives both controllers through the same arrival stream with
/// `try_admit`, asserting identical outcomes at every step.
fn run_try_admit_oracle<I: Iterator<Item = (Time, TaskSpec)>>(
    stages: usize,
    arrivals: I,
    mean_model: bool,
) {
    let region = FeasibleRegion::deadline_monotonic(stages);
    let clock = Arc::new(ManualClock::new());

    let means: Vec<TimeDelta> = (0..stages).map(|_| TimeDelta::from_millis(10)).collect();
    if mean_model {
        let mut library = Admission::new(region.clone(), MeanContributions::new(means.clone()));
        let service = AdmissionService::builder(region, MeanContributions::new(means))
            .clock(Arc::clone(&clock))
            .shards(1)
            .build();
        drive_try_admit(&mut library, &service, &clock, arrivals);
    } else {
        let mut library = Admission::new(region.clone(), ExactContributions);
        let service = AdmissionService::builder(region, ExactContributions)
            .clock(Arc::clone(&clock))
            .shards(1)
            .build();
        drive_try_admit(&mut library, &service, &clock, arrivals);
    }
}

fn drive_try_admit<R, M, I>(
    library: &mut Admission<R, M>,
    service: &AdmissionService<R, M, Arc<ManualClock>>,
    clock: &ManualClock,
    arrivals: I,
) where
    R: frap_core::region::RegionTest + Send + Sync + Clone + 'static,
    M: frap_core::admission::ContributionModel + Send + Sync + 'static,
    I: Iterator<Item = (Time, TaskSpec)>,
{
    let mut admitted = Vec::new();
    for (steps, (at, spec)) in arrivals.enumerate() {
        clock.set(at);
        let lib = library.try_admit(at, &spec);
        let svc = service.try_admit(&spec);
        assert_eq!(
            lib.is_some(),
            svc.is_some(),
            "step {steps}: decision diverged for {spec:?}"
        );
        if let (Some(task), Some(ticket)) = (lib, svc) {
            assert_eq!(task.seq(), ticket.id(), "step {steps}: id diverged");
            admitted.push(ticket.detach());
        }
        assert_eq!(library.live_tasks(), service.live_tasks(), "step {steps}");
        assert_utilizations_agree(library, &service.utilizations(), steps);
    }
    let stats = library.stats();
    let counters = service.counters();
    assert_eq!(stats.admitted, counters.admitted);
    assert_eq!(stats.rejected, counters.rejected);
    assert!(stats.admitted > 0, "workload never admitted anything");
    assert!(stats.rejected > 0, "workload never rejected anything");
    service.debug_validate();
}

#[test]
fn pipeline_exact_model_agrees() {
    let arrivals = PipelineWorkloadBuilder::new(3)
        .mean_computation_ms(10.0)
        .resolution(20.0)
        .load(1.5)
        .seed(7)
        .build()
        .until(Time::from_secs(30));
    run_try_admit_oracle(3, arrivals, false);
}

#[test]
fn pipeline_mean_model_agrees() {
    let arrivals = PipelineWorkloadBuilder::new(4)
        .mean_computation_ms(10.0)
        .resolution(15.0)
        .load(2.0)
        .seed(21)
        .build()
        .until(Time::from_secs(20));
    run_try_admit_oracle(4, arrivals, true);
}

#[test]
fn dag_exact_model_agrees() {
    let arrivals = DagWorkload::new(5, 0.008, 12.0, 40.0, 3).until(Time::from_secs(20));
    run_try_admit_oracle(5, arrivals, false);
}

#[test]
fn shedding_oracle_agrees() {
    // Mixed-importance overload: every arrival goes through the shedding
    // path on both sides; shed victim lists must match exactly.
    let region = FeasibleRegion::deadline_monotonic(3);
    let clock = Arc::new(ManualClock::new());
    let mut library = Admission::new(region.clone(), ExactContributions);
    let service = AdmissionService::builder(region, ExactContributions)
        .clock(Arc::clone(&clock))
        .shards(1)
        .build();

    let arrivals = PipelineWorkloadBuilder::new(3)
        .mean_computation_ms(10.0)
        .resolution(25.0)
        .load(3.0)
        .seed(99)
        .build()
        .until(Time::from_secs(20));

    let mut sheddings = 0u64;
    for (steps, (at, spec)) in arrivals.enumerate() {
        // Deterministically vary importance so later arrivals can evict
        // earlier ones.
        let spec = spec.with_importance(Importance::new((steps % 7) as u32));
        clock.set(at);
        let lib = library.try_admit_or_shed(at, &spec);
        let svc = service.try_admit_or_shed(&spec);
        match (&lib, &svc) {
            (AdmitOutcome::Admitted(task), ServiceOutcome::Admitted(ticket)) => {
                assert_eq!(task.seq(), ticket.id(), "step {steps}");
            }
            (
                AdmitOutcome::AdmittedAfterShedding { task, shed },
                ServiceOutcome::AdmittedAfterShedding {
                    ticket,
                    shed: svc_shed,
                },
            ) => {
                assert_eq!(task.seq(), ticket.id(), "step {steps}");
                let lib_shed: Vec<u64> = shed.iter().map(|t| t.seq()).collect();
                assert_eq!(&lib_shed, svc_shed, "step {steps}: shed lists diverged");
                sheddings += 1;
            }
            (AdmitOutcome::Rejected, ServiceOutcome::Rejected) => {}
            other => panic!("step {steps}: outcome diverged: {other:?}"),
        }
        if let Some(ticket) = svc.ticket() {
            ticket.detach();
        }
        assert_eq!(library.live_tasks(), service.live_tasks(), "step {steps}");
        assert_utilizations_agree(&mut library, &service.utilizations(), steps);
    }
    assert!(sheddings > 0, "workload never exercised the shedding path");
    let stats = library.stats();
    let counters = service.counters();
    assert_eq!(stats.admitted, counters.admitted);
    assert_eq!(stats.rejected, counters.rejected);
    assert_eq!(stats.shed, counters.shed);
    service.debug_validate();
}

#[test]
fn idle_reset_oracle_agrees() {
    // Idle resets remove departed contributions on both sides. The
    // library's reset iterates a HashMap (nondeterministic order), so the
    // scenario departs ONE task per stage between resets — order-free.
    let region = FeasibleRegion::deadline_monotonic(2);
    let clock = Arc::new(ManualClock::new());
    let mut library = Admission::new(region.clone(), ExactContributions);
    let service = AdmissionService::builder(region, ExactContributions)
        .clock(Arc::clone(&clock))
        .shards(1)
        .build();

    let ms = TimeDelta::from_millis;
    let spec = TaskSpec::pipeline(ms(500), &[ms(40), ms(40)]).unwrap();

    let mut now = Time::ZERO;
    let mut tickets: HashMap<u64, AdmissionTicket> = HashMap::new();
    for round in 0..50usize {
        now = now.saturating_add(ms(7));
        clock.set(now);
        let lib = library.try_admit(now, &spec);
        let svc = service.try_admit(&spec);
        assert_eq!(lib.is_some(), svc.is_some(), "round {round}");
        if let Some(ticket) = svc {
            tickets.insert(ticket.id(), ticket);
        }

        // Depart the single oldest live ticket from stage 0, then reset.
        if round % 3 == 2 {
            if let Some((&id, _)) = tickets.iter().min_by_key(|(&id, _)| id) {
                let ticket = tickets.remove(&id).unwrap();
                for j in 0..2 {
                    library.on_stage_departure(StageId::new(j), frap_core::task::TaskId::new(id));
                    ticket.mark_departed(StageId::new(j));
                }
                for j in 0..2 {
                    library.on_stage_idle(now, StageId::new(j));
                    service.on_stage_idle(StageId::new(j));
                }
                ticket.detach();
            }
        }
        assert_utilizations_agree(&mut library, &service.utilizations(), round);
    }
    let stats = library.stats();
    let counters = service.counters();
    assert_eq!(stats.admitted, counters.admitted);
    assert_eq!(stats.rejected, counters.rejected);
    assert!(counters.admitted > 0);
    service.debug_validate();
    for (_, t) in tickets {
        t.detach();
    }
}
