//! Differential tests: [`AdmissionService::admit_batch`] must be
//! decision-for-decision equivalent to issuing the same requests one at
//! a time through `try_admit` / `try_admit_or_shed`.
//!
//! Two identically configured services share nothing but a construction
//! recipe and see the same request sequence under the same manual-clock
//! schedule; one resolves it in batches, the other as singles. Every
//! verdict — including which tickets shedding evicted, and the ticket
//! ids themselves (id assignment is deterministic per service) — must
//! match. This is the guarantee the gateway leans on when it folds every
//! `AdmitRequest` drained from one socket read into one batch call.

use frap_core::admission::ExactContributions;
use frap_core::graph::TaskSpec;
use frap_core::region::FeasibleRegion;
use frap_core::task::Importance;
use frap_core::time::TimeDelta;
use frap_service::clock::ManualClock;
use frap_service::{AdmissionService, AdmissionTicket, BatchRequest, ServiceOutcome};
use proptest::prelude::*;
use std::sync::Arc;

type ManualService = AdmissionService<FeasibleRegion, ExactContributions, Arc<ManualClock>>;

fn ms(v: u64) -> TimeDelta {
    TimeDelta::from_millis(v)
}

fn service(stages: usize, shards: usize) -> (ManualService, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new());
    let svc = AdmissionService::builder(
        FeasibleRegion::deadline_monotonic(stages),
        ExactContributions,
    )
    .clock(Arc::clone(&clock))
    .shards(shards)
    .build();
    (svc, clock)
}

fn task(deadline_ms: u64, per_stage_ms: &[u64], importance: u8) -> TaskSpec {
    let comps: Vec<TimeDelta> = per_stage_ms.iter().map(|&c| ms(c)).collect();
    let mut spec = TaskSpec::pipeline(ms(deadline_ms), &comps).unwrap();
    spec.importance = Importance::new(importance as u32);
    spec
}

/// A comparable summary of one decision.
#[derive(Debug, PartialEq, Eq)]
enum Decision {
    Admitted { ticket_id: u64 },
    AdmittedAfterShedding { ticket_id: u64, shed: Vec<u64> },
    Rejected,
}

/// Summarizes an outcome, parking any ticket in `live` so its capacity
/// stays charged for the rest of the run (mirroring a client that holds
/// its admissions open).
fn digest(outcome: ServiceOutcome, live: &mut Vec<AdmissionTicket>) -> Decision {
    match outcome {
        ServiceOutcome::Admitted(t) => {
            let id = t.id();
            live.push(t);
            Decision::Admitted { ticket_id: id }
        }
        ServiceOutcome::AdmittedAfterShedding { ticket, shed } => {
            let id = ticket.id();
            live.push(ticket);
            Decision::AdmittedAfterShedding {
                ticket_id: id,
                shed,
            }
        }
        ServiceOutcome::Rejected => Decision::Rejected,
    }
}

/// Resolves `reqs` on `svc` one decision at a time — the reference path.
fn run_singles(
    svc: &ManualService,
    reqs: &[(TaskSpec, bool)],
    live: &mut Vec<AdmissionTicket>,
) -> Vec<Decision> {
    reqs.iter()
        .map(|(spec, allow_shed)| {
            let outcome = if *allow_shed {
                svc.try_admit_or_shed(spec)
            } else {
                match svc.try_admit(spec) {
                    Some(t) => ServiceOutcome::Admitted(t),
                    None => ServiceOutcome::Rejected,
                }
            };
            digest(outcome, live)
        })
        .collect()
}

/// Resolves `reqs` on `svc` in one `admit_batch` call.
fn run_batch(
    svc: &ManualService,
    reqs: &[(TaskSpec, bool)],
    live: &mut Vec<AdmissionTicket>,
) -> Vec<Decision> {
    let requests: Vec<BatchRequest<'_>> = reqs
        .iter()
        .map(|(spec, allow_shed)| BatchRequest {
            spec,
            allow_shed: *allow_shed,
            shard: None,
        })
        .collect();
    svc.admit_batch(&requests)
        .into_iter()
        .map(|o| digest(o, live))
        .collect()
}

/// Asserts both services agree on every decision and on their counters.
fn assert_equivalent(reqs: &[(TaskSpec, bool)], stages: usize, shards: usize) {
    let (batched, _cb) = service(stages, shards);
    let (singles, _cs) = service(stages, shards);
    let mut live_b = Vec::new();
    let mut live_s = Vec::new();
    let got = run_batch(&batched, reqs, &mut live_b);
    let want = run_singles(&singles, reqs, &mut live_s);
    assert_eq!(got, want);
    let (cb, cs) = (batched.counters(), singles.counters());
    assert_eq!(cb.admitted, cs.admitted);
    assert_eq!(cb.rejected, cs.rejected);
    assert_eq!(cb.shed, cs.shed);
    assert_eq!(batched.live_tasks(), singles.live_tasks());
    batched.debug_validate();
    singles.debug_validate();
    for t in live_b.into_iter().chain(live_s) {
        t.detach();
    }
}

#[test]
fn saturating_run_matches_singles() {
    // 0.15/stage against the 2-stage bound (~0.382): admits 2, rejects on.
    let reqs: Vec<(TaskSpec, bool)> = (0..12).map(|_| (task(200, &[30, 30], 2), false)).collect();
    assert_equivalent(&reqs, 2, 1);
}

#[test]
fn mixed_shapes_match_singles_across_shards() {
    let reqs: Vec<(TaskSpec, bool)> = (0..24)
        .map(|i| {
            (
                task(100 + 40 * (i % 5), &[5 + 3 * (i % 4), 8, 4 + (i % 7)], 3),
                false,
            )
        })
        .collect();
    for shards in [1, 2, 4] {
        assert_equivalent(&reqs, 3, shards);
    }
}

#[test]
fn shedding_requests_break_runs_identically() {
    // Low-importance filler first, then high-importance shedders that
    // must evict it, interleaved with plain requests that see the
    // post-shed state.
    let mut reqs: Vec<(TaskSpec, bool)> = Vec::new();
    for _ in 0..6 {
        reqs.push((task(200, &[25, 25], 1), false));
    }
    for i in 0..6 {
        reqs.push((task(200, &[25, 25], 5), i % 2 == 0));
    }
    reqs.push((task(400, &[5, 5], 3), false));
    assert_equivalent(&reqs, 2, 1);
    assert_equivalent(&reqs, 2, 2);
}

#[test]
fn draining_service_rejects_batches_like_singles() {
    let reqs: Vec<(TaskSpec, bool)> = (0..8)
        .map(|i| (task(150, &[10, 10], 2), i % 3 == 0))
        .collect();
    let (batched, _cb) = service(2, 2);
    let (singles, _cs) = service(2, 2);
    batched.drain();
    singles.drain();
    let mut live_b = Vec::new();
    let mut live_s = Vec::new();
    let got = run_batch(&batched, &reqs, &mut live_b);
    let want = run_singles(&singles, &reqs, &mut live_s);
    assert!(got.iter().all(|d| *d == Decision::Rejected));
    assert_eq!(got, want);
    assert_eq!(batched.counters().rejected, singles.counters().rejected);
    assert_eq!(batched.counters().rejected, reqs.len() as u64);
}

#[test]
fn expiry_drains_once_per_run_without_changing_decisions() {
    // Fill to the brim, advance past every deadline, then offer a batch:
    // the batch path drains expiries once for the whole run, the singles
    // path once per decision — decisions must match anyway.
    let fill: Vec<(TaskSpec, bool)> = (0..10).map(|_| (task(100, &[30, 30], 2), false)).collect();
    let probe: Vec<(TaskSpec, bool)> = (0..6).map(|_| (task(100, &[30, 30], 2), false)).collect();

    let (batched, clock_b) = service(2, 1);
    let (singles, clock_s) = service(2, 1);
    let mut live_b = Vec::new();
    let mut live_s = Vec::new();
    // Detach the fill so its capacity stays charged until the deadline
    // decrement rather than releasing on drop.
    for t in run_batch(&batched, &fill, &mut live_b)
        .into_iter()
        .zip(live_b.drain(..))
        .map(|(_, t)| t)
    {
        t.detach();
    }
    for t in run_singles(&singles, &fill, &mut live_s)
        .into_iter()
        .zip(live_s.drain(..))
        .map(|(_, t)| t)
    {
        t.detach();
    }

    clock_b.advance(ms(150));
    clock_s.advance(ms(150));

    let got = run_batch(&batched, &probe, &mut live_b);
    let want = run_singles(&singles, &probe, &mut live_s);
    assert_eq!(got, want);
    assert!(
        got.iter().any(|d| matches!(d, Decision::Admitted { .. })),
        "expiry must have freed capacity: {got:?}"
    );
    batched.debug_validate();
    singles.debug_validate();
    for t in live_b.into_iter().chain(live_s) {
        t.detach();
    }
}

/// A [`Clock`] wrapper counting every read, for pinning how many clock
/// reads a code path performs.
#[derive(Debug, Default)]
struct CountingClock {
    inner: ManualClock,
    reads: std::sync::atomic::AtomicU64,
}

impl CountingClock {
    fn reads(&self) -> u64 {
        self.reads.load(std::sync::atomic::Ordering::SeqCst)
    }
}

impl frap_service::clock::Clock for CountingClock {
    fn now(&self) -> frap_core::time::Time {
        self.reads.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        self.inner.now()
    }
}

#[test]
fn one_clock_read_per_batch() {
    // The regression this pins: `admit_batch_into` used to read the clock
    // once per contiguous non-shedding run; it must now read exactly once
    // per batch, no matter how the batch's decisions fall, plus one read
    // per shedding request (those take every shard lock and re-read).
    let clock = Arc::new(CountingClock::default());
    let svc = AdmissionService::builder(FeasibleRegion::deadline_monotonic(2), ExactContributions)
        .clock(Arc::clone(&clock))
        .shards(2)
        .build();

    // Construction reads once (the timer wheels' start); baseline it.
    let base = clock.reads();

    // Empty batches read nothing.
    assert!(svc.admit_batch(&[]).is_empty());
    assert_eq!(clock.reads(), base);

    // A plain batch mixing admits and rejects: exactly one read.
    let spec = task(200, &[30, 30], 2);
    let reqs: Vec<BatchRequest<'_>> = (0..10).map(|_| BatchRequest::new(&spec)).collect();
    let outcomes = svc.admit_batch(&reqs);
    assert!(outcomes.iter().any(|o| o.is_admitted()));
    assert!(outcomes.iter().any(|o| !o.is_admitted()));
    assert_eq!(
        clock.reads() - base,
        1,
        "a non-shedding batch is one clock read"
    );

    // Sheds break runs but the plain runs still share the batch's read:
    // [plain, shed, plain, shed] = 1 (batch) + 2 (sheds).
    let before = clock.reads();
    let mixed = [
        BatchRequest::new(&spec),
        BatchRequest {
            spec: &spec,
            allow_shed: true,
            shard: None,
        },
        BatchRequest::new(&spec),
        BatchRequest {
            spec: &spec,
            allow_shed: true,
            shard: None,
        },
    ];
    for o in svc.admit_batch(&mixed) {
        if let Some(t) = o.ticket() {
            t.detach();
        }
    }
    assert_eq!(clock.reads() - before, 3);
    svc.debug_validate();
    for o in outcomes {
        if let Some(t) = o.ticket() {
            t.detach();
        }
    }
}

#[test]
fn shard_targeted_batches_decide_like_untargeted_ones() {
    // Shard routing moves only an admission's bookkeeping home, never the
    // (global) decision: a round-robin-targeted batch must match an
    // untargeted twin verdict-for-verdict and id-for-id, and the targeted
    // entries must still expire on deadline from their adopted shards.
    let shards = 4;
    let (targeted, clock_t) = service(2, shards);
    let (plain, clock_p) = service(2, shards);
    let specs: Vec<TaskSpec> = (0..16).map(|i| task(100, &[10 + (i % 5), 8], 2)).collect();
    let spread: Vec<BatchRequest<'_>> = specs
        .iter()
        .enumerate()
        // Deliberately unsorted shard pattern, including out-of-range
        // indices that reduce modulo the shard count.
        .map(|(i, s)| BatchRequest::new(s).on_shard((i * 3 + 1) % (shards + 2)))
        .collect();
    let home: Vec<BatchRequest<'_>> = specs.iter().map(BatchRequest::new).collect();

    let got = targeted.admit_batch(&spread);
    let want = plain.admit_batch(&home);
    assert_eq!(got.len(), want.len());
    let mut admitted = 0;
    for (g, w) in got.iter().zip(&want) {
        assert_eq!(g.is_admitted(), w.is_admitted());
        admitted += g.is_admitted() as usize;
    }
    assert!(admitted > 0);
    targeted.debug_validate();

    // Detach everything, expire it, and confirm the targeted shards'
    // wheels decrement exactly like the home shard's would.
    for o in got.into_iter().chain(want) {
        if let Some(t) = o.ticket() {
            t.detach();
        }
    }
    clock_t.advance(ms(200));
    clock_p.advance(ms(200));
    assert_eq!(targeted.maintain(), plain.maintain());
    assert_eq!(targeted.live_tasks(), 0);
    assert_eq!(targeted.counters().expired, admitted as u64);
    targeted.debug_validate();
}

#[test]
fn fast_path_twin_matches_locked_twin() {
    // The lock-free reject fast path must be decision-for-decision
    // invisible: a service with it disabled replays the same sequence to
    // identical verdicts, ids, and counters (minus the fast_rejected
    // accounting itself, which only the fast twin accrues).
    let clock_f = Arc::new(ManualClock::new());
    let clock_l = Arc::new(ManualClock::new());
    let build = |clock: &Arc<ManualClock>, fast: bool| {
        AdmissionService::builder(FeasibleRegion::deadline_monotonic(2), ExactContributions)
            .clock(Arc::clone(clock))
            .shards(2)
            .fast_path(fast)
            .build()
    };
    let fast_svc = build(&clock_f, true);
    let locked_svc = build(&clock_l, false);

    let reqs: Vec<(TaskSpec, bool)> = (0..40)
        .map(|i| {
            (
                task(120, &[20 + (i % 9), 15], (i % 4) as u8 + 1),
                i % 11 == 7,
            )
        })
        .collect();
    let mut live_f = Vec::new();
    let mut live_l = Vec::new();
    for (i, chunk) in reqs.chunks(7).enumerate() {
        let got = run_singles(&fast_svc, chunk, &mut live_f);
        let want = run_singles(&locked_svc, chunk, &mut live_l);
        assert_eq!(got, want, "divergence in chunk {i}");
        if i % 2 == 1 {
            clock_f.advance(ms(60));
            clock_l.advance(ms(60));
        }
    }
    let (cf, cl) = (fast_svc.counters(), locked_svc.counters());
    assert_eq!(cf.admitted, cl.admitted);
    assert_eq!(cf.rejected, cl.rejected);
    assert_eq!(cf.shed, cl.shed);
    assert_eq!(cf.expired, cl.expired);
    assert!(cf.fast_rejected > 0, "fast path never engaged");
    assert_eq!(
        cl.fast_rejected, 0,
        "locked twin must not use the fast path"
    );
    // Histogram counts still equal decision counts on both twins.
    assert_eq!(fast_svc.snapshot().decision_latency.count(), cf.decisions());
    assert_eq!(
        locked_svc.snapshot().decision_latency.count(),
        cl.decisions()
    );
    fast_svc.debug_validate();
    locked_svc.debug_validate();
    for t in live_f.into_iter().chain(live_l) {
        t.detach();
    }
}

/// One generated arrival.
#[derive(Debug, Clone)]
struct Arrival {
    deadline_ms: u64,
    stage_ms: Vec<u64>,
    importance: u8,
    allow_shed: bool,
}

fn arrival(stages: usize) -> impl Strategy<Value = Arrival> {
    (
        40u64..400,
        proptest::collection::vec(1u64..40, stages..=stages),
        0u8..8,
        0u8..10,
    )
        .prop_map(|(deadline_ms, stage_ms, importance, shed_roll)| Arrival {
            deadline_ms,
            stage_ms,
            importance,
            // ~30% of arrivals may shed, enough to exercise run breaks.
            allow_shed: shed_roll < 3,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary request sequences, chunked into batches with clock
    /// advances in between, decide identically to singles under the
    /// same clock schedule.
    #[test]
    fn random_sequences_are_batch_equivalent(
        arrivals in proptest::collection::vec(arrival(3), 1..60),
        chunk in 1usize..12,
        advances_ms in proptest::collection::vec(0u64..120, 8),
        shards in 1usize..3,
    ) {
        let reqs: Vec<(TaskSpec, bool)> = arrivals
            .iter()
            .map(|a| (task(a.deadline_ms, &a.stage_ms, a.importance), a.allow_shed))
            .collect();
        let (batched, clock_b) = service(3, shards);
        let (singles, clock_s) = service(3, shards);
        let mut live_b = Vec::new();
        let mut live_s = Vec::new();
        for (i, chunk_reqs) in reqs.chunks(chunk).enumerate() {
            let got = run_batch(&batched, chunk_reqs, &mut live_b);
            let want = run_singles(&singles, chunk_reqs, &mut live_s);
            prop_assert_eq!(got, want, "divergence in chunk {}", i);
            let step = ms(advances_ms[i % advances_ms.len()]);
            clock_b.advance(step);
            clock_s.advance(step);
        }
        let (cb, cs) = (batched.counters(), singles.counters());
        prop_assert_eq!(cb.admitted, cs.admitted);
        prop_assert_eq!(cb.rejected, cs.rejected);
        prop_assert_eq!(cb.shed, cs.shed);
        prop_assert_eq!(batched.live_tasks(), singles.live_tasks());
        batched.debug_validate();
        singles.debug_validate();
        for t in live_b.into_iter().chain(live_s) {
            t.detach();
        }
    }
}
