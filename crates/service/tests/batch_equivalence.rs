//! Differential tests: [`AdmissionService::admit_batch`] must be
//! decision-for-decision equivalent to issuing the same requests one at
//! a time through `try_admit` / `try_admit_or_shed`.
//!
//! Two identically configured services share nothing but a construction
//! recipe and see the same request sequence under the same manual-clock
//! schedule; one resolves it in batches, the other as singles. Every
//! verdict — including which tickets shedding evicted, and the ticket
//! ids themselves (id assignment is deterministic per service) — must
//! match. This is the guarantee the gateway leans on when it folds every
//! `AdmitRequest` drained from one socket read into one batch call.

use frap_core::admission::ExactContributions;
use frap_core::graph::TaskSpec;
use frap_core::region::FeasibleRegion;
use frap_core::task::Importance;
use frap_core::time::TimeDelta;
use frap_service::clock::ManualClock;
use frap_service::{AdmissionService, AdmissionTicket, BatchRequest, ServiceOutcome};
use proptest::prelude::*;
use std::sync::Arc;

type ManualService = AdmissionService<FeasibleRegion, ExactContributions, Arc<ManualClock>>;

fn ms(v: u64) -> TimeDelta {
    TimeDelta::from_millis(v)
}

fn service(stages: usize, shards: usize) -> (ManualService, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new());
    let svc = AdmissionService::builder(
        FeasibleRegion::deadline_monotonic(stages),
        ExactContributions,
    )
    .clock(Arc::clone(&clock))
    .shards(shards)
    .build();
    (svc, clock)
}

fn task(deadline_ms: u64, per_stage_ms: &[u64], importance: u8) -> TaskSpec {
    let comps: Vec<TimeDelta> = per_stage_ms.iter().map(|&c| ms(c)).collect();
    let mut spec = TaskSpec::pipeline(ms(deadline_ms), &comps).unwrap();
    spec.importance = Importance::new(importance as u32);
    spec
}

/// A comparable summary of one decision.
#[derive(Debug, PartialEq, Eq)]
enum Decision {
    Admitted { ticket_id: u64 },
    AdmittedAfterShedding { ticket_id: u64, shed: Vec<u64> },
    Rejected,
}

/// Summarizes an outcome, parking any ticket in `live` so its capacity
/// stays charged for the rest of the run (mirroring a client that holds
/// its admissions open).
fn digest(outcome: ServiceOutcome, live: &mut Vec<AdmissionTicket>) -> Decision {
    match outcome {
        ServiceOutcome::Admitted(t) => {
            let id = t.id();
            live.push(t);
            Decision::Admitted { ticket_id: id }
        }
        ServiceOutcome::AdmittedAfterShedding { ticket, shed } => {
            let id = ticket.id();
            live.push(ticket);
            Decision::AdmittedAfterShedding {
                ticket_id: id,
                shed,
            }
        }
        ServiceOutcome::Rejected => Decision::Rejected,
    }
}

/// Resolves `reqs` on `svc` one decision at a time — the reference path.
fn run_singles(
    svc: &ManualService,
    reqs: &[(TaskSpec, bool)],
    live: &mut Vec<AdmissionTicket>,
) -> Vec<Decision> {
    reqs.iter()
        .map(|(spec, allow_shed)| {
            let outcome = if *allow_shed {
                svc.try_admit_or_shed(spec)
            } else {
                match svc.try_admit(spec) {
                    Some(t) => ServiceOutcome::Admitted(t),
                    None => ServiceOutcome::Rejected,
                }
            };
            digest(outcome, live)
        })
        .collect()
}

/// Resolves `reqs` on `svc` in one `admit_batch` call.
fn run_batch(
    svc: &ManualService,
    reqs: &[(TaskSpec, bool)],
    live: &mut Vec<AdmissionTicket>,
) -> Vec<Decision> {
    let requests: Vec<BatchRequest<'_>> = reqs
        .iter()
        .map(|(spec, allow_shed)| BatchRequest {
            spec,
            allow_shed: *allow_shed,
        })
        .collect();
    svc.admit_batch(&requests)
        .into_iter()
        .map(|o| digest(o, live))
        .collect()
}

/// Asserts both services agree on every decision and on their counters.
fn assert_equivalent(reqs: &[(TaskSpec, bool)], stages: usize, shards: usize) {
    let (batched, _cb) = service(stages, shards);
    let (singles, _cs) = service(stages, shards);
    let mut live_b = Vec::new();
    let mut live_s = Vec::new();
    let got = run_batch(&batched, reqs, &mut live_b);
    let want = run_singles(&singles, reqs, &mut live_s);
    assert_eq!(got, want);
    let (cb, cs) = (batched.counters(), singles.counters());
    assert_eq!(cb.admitted, cs.admitted);
    assert_eq!(cb.rejected, cs.rejected);
    assert_eq!(cb.shed, cs.shed);
    assert_eq!(batched.live_tasks(), singles.live_tasks());
    batched.debug_validate();
    singles.debug_validate();
    for t in live_b.into_iter().chain(live_s) {
        t.detach();
    }
}

#[test]
fn saturating_run_matches_singles() {
    // 0.15/stage against the 2-stage bound (~0.382): admits 2, rejects on.
    let reqs: Vec<(TaskSpec, bool)> = (0..12).map(|_| (task(200, &[30, 30], 2), false)).collect();
    assert_equivalent(&reqs, 2, 1);
}

#[test]
fn mixed_shapes_match_singles_across_shards() {
    let reqs: Vec<(TaskSpec, bool)> = (0..24)
        .map(|i| {
            (
                task(100 + 40 * (i % 5), &[5 + 3 * (i % 4), 8, 4 + (i % 7)], 3),
                false,
            )
        })
        .collect();
    for shards in [1, 2, 4] {
        assert_equivalent(&reqs, 3, shards);
    }
}

#[test]
fn shedding_requests_break_runs_identically() {
    // Low-importance filler first, then high-importance shedders that
    // must evict it, interleaved with plain requests that see the
    // post-shed state.
    let mut reqs: Vec<(TaskSpec, bool)> = Vec::new();
    for _ in 0..6 {
        reqs.push((task(200, &[25, 25], 1), false));
    }
    for i in 0..6 {
        reqs.push((task(200, &[25, 25], 5), i % 2 == 0));
    }
    reqs.push((task(400, &[5, 5], 3), false));
    assert_equivalent(&reqs, 2, 1);
    assert_equivalent(&reqs, 2, 2);
}

#[test]
fn draining_service_rejects_batches_like_singles() {
    let reqs: Vec<(TaskSpec, bool)> = (0..8)
        .map(|i| (task(150, &[10, 10], 2), i % 3 == 0))
        .collect();
    let (batched, _cb) = service(2, 2);
    let (singles, _cs) = service(2, 2);
    batched.drain();
    singles.drain();
    let mut live_b = Vec::new();
    let mut live_s = Vec::new();
    let got = run_batch(&batched, &reqs, &mut live_b);
    let want = run_singles(&singles, &reqs, &mut live_s);
    assert!(got.iter().all(|d| *d == Decision::Rejected));
    assert_eq!(got, want);
    assert_eq!(batched.counters().rejected, singles.counters().rejected);
    assert_eq!(batched.counters().rejected, reqs.len() as u64);
}

#[test]
fn expiry_drains_once_per_run_without_changing_decisions() {
    // Fill to the brim, advance past every deadline, then offer a batch:
    // the batch path drains expiries once for the whole run, the singles
    // path once per decision — decisions must match anyway.
    let fill: Vec<(TaskSpec, bool)> = (0..10).map(|_| (task(100, &[30, 30], 2), false)).collect();
    let probe: Vec<(TaskSpec, bool)> = (0..6).map(|_| (task(100, &[30, 30], 2), false)).collect();

    let (batched, clock_b) = service(2, 1);
    let (singles, clock_s) = service(2, 1);
    let mut live_b = Vec::new();
    let mut live_s = Vec::new();
    // Detach the fill so its capacity stays charged until the deadline
    // decrement rather than releasing on drop.
    for t in run_batch(&batched, &fill, &mut live_b)
        .into_iter()
        .zip(live_b.drain(..))
        .map(|(_, t)| t)
    {
        t.detach();
    }
    for t in run_singles(&singles, &fill, &mut live_s)
        .into_iter()
        .zip(live_s.drain(..))
        .map(|(_, t)| t)
    {
        t.detach();
    }

    clock_b.advance(ms(150));
    clock_s.advance(ms(150));

    let got = run_batch(&batched, &probe, &mut live_b);
    let want = run_singles(&singles, &probe, &mut live_s);
    assert_eq!(got, want);
    assert!(
        got.iter().any(|d| matches!(d, Decision::Admitted { .. })),
        "expiry must have freed capacity: {got:?}"
    );
    batched.debug_validate();
    singles.debug_validate();
    for t in live_b.into_iter().chain(live_s) {
        t.detach();
    }
}

/// One generated arrival.
#[derive(Debug, Clone)]
struct Arrival {
    deadline_ms: u64,
    stage_ms: Vec<u64>,
    importance: u8,
    allow_shed: bool,
}

fn arrival(stages: usize) -> impl Strategy<Value = Arrival> {
    (
        40u64..400,
        proptest::collection::vec(1u64..40, stages..=stages),
        0u8..8,
        0u8..10,
    )
        .prop_map(|(deadline_ms, stage_ms, importance, shed_roll)| Arrival {
            deadline_ms,
            stage_ms,
            importance,
            // ~30% of arrivals may shed, enough to exercise run breaks.
            allow_shed: shed_roll < 3,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary request sequences, chunked into batches with clock
    /// advances in between, decide identically to singles under the
    /// same clock schedule.
    #[test]
    fn random_sequences_are_batch_equivalent(
        arrivals in proptest::collection::vec(arrival(3), 1..60),
        chunk in 1usize..12,
        advances_ms in proptest::collection::vec(0u64..120, 8),
        shards in 1usize..3,
    ) {
        let reqs: Vec<(TaskSpec, bool)> = arrivals
            .iter()
            .map(|a| (task(a.deadline_ms, &a.stage_ms, a.importance), a.allow_shed))
            .collect();
        let (batched, clock_b) = service(3, shards);
        let (singles, clock_s) = service(3, shards);
        let mut live_b = Vec::new();
        let mut live_s = Vec::new();
        for (i, chunk_reqs) in reqs.chunks(chunk).enumerate() {
            let got = run_batch(&batched, chunk_reqs, &mut live_b);
            let want = run_singles(&singles, chunk_reqs, &mut live_s);
            prop_assert_eq!(got, want, "divergence in chunk {}", i);
            let step = ms(advances_ms[i % advances_ms.len()]);
            clock_b.advance(step);
            clock_s.advance(step);
        }
        let (cb, cs) = (batched.counters(), singles.counters());
        prop_assert_eq!(cb.admitted, cs.admitted);
        prop_assert_eq!(cb.rejected, cs.rejected);
        prop_assert_eq!(cb.shed, cs.shed);
        prop_assert_eq!(batched.live_tasks(), singles.live_tasks());
        batched.debug_validate();
        singles.debug_validate();
        for t in live_b.into_iter().chain(live_s) {
            t.detach();
        }
    }
}
