//! Concurrency tests: many threads hammering one service.
//!
//! The load-bearing invariants (checked by
//! `AdmissionService::debug_validate`, which locks the world):
//!
//! 1. the aggregate synthetic utilization never leaves the feasible
//!    region — admissions are serialized by the gate and concurrent
//!    reductions only lower the vector, so this holds at *every*
//!    instant, including mid-run;
//! 2. the lock-free per-stage totals equal the sum over live entries
//!    (no lost or doubled charge);
//! 3. every admitted task leaves the books exactly once — release,
//!    deadline expiry, or shed — never twice (the double-release /
//!    expiry race), which the final counter balance
//!    `admitted == released + expired + shed + live` certifies.
//!
//! Run under the race detectors when touching the lock-free paths (see
//! DESIGN.md, "Service layer"): `RUSTFLAGS="-Z sanitizer=thread" cargo
//! +nightly test -p frap-service --target x86_64-unknown-linux-gnu`, or
//! `cargo +nightly miri test -p frap-service concurrency` (shrink the
//! iteration counts first; Miri is ~1000× slower).

use frap_core::admission::ExactContributions;
use frap_core::graph::TaskSpec;
use frap_core::region::FeasibleRegion;
use frap_core::task::Importance;
use frap_core::time::TimeDelta;
use frap_service::{AdmissionService, ServiceOutcome};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const STAGES: usize = 3;

fn ms(v: u64) -> TimeDelta {
    TimeDelta::from_millis(v)
}

fn specs() -> Vec<TaskSpec> {
    // A few shapes around the region boundary, with very short deadlines
    // so the timer wheel churns during the test.
    vec![
        TaskSpec::pipeline(ms(5), &[ms(1), ms(1), ms(1)]).unwrap(),
        TaskSpec::pipeline(ms(10), &[ms(3), ms(1), ms(2)]).unwrap(),
        TaskSpec::pipeline(ms(20), &[ms(1), ms(6), ms(1)]).unwrap(),
        TaskSpec::pipeline(ms(8), &[ms(2), ms(2), ms(2)])
            .unwrap()
            .with_importance(Importance::new(3)),
    ]
}

/// Splitmix64: cheap deterministic per-thread randomness.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[test]
fn hammered_service_never_leaves_the_region() {
    let threads = 8usize;
    let iters = 30_000usize;
    let service = AdmissionService::builder(
        FeasibleRegion::deadline_monotonic(STAGES),
        ExactContributions,
    )
    .shards(4)
    .build();

    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let service = service.clone();
            let specs = specs();
            std::thread::spawn(move || {
                let mut rng = 0xdeadbeef ^ (t as u64);
                let mut held = Vec::new();
                for i in 0..iters {
                    let spec = &specs[(next(&mut rng) % specs.len() as u64) as usize];
                    match next(&mut rng) % 10 {
                        // Mostly the fast path.
                        0..=6 => {
                            if let Some(ticket) = service.try_admit(spec) {
                                held.push(ticket);
                            }
                        }
                        // Occasionally the global shedding path.
                        7 => {
                            let urgent = spec
                                .clone()
                                .with_importance(Importance::new(5 + (i % 3) as u32));
                            if let ServiceOutcome::AdmittedAfterShedding { ticket, .. }
                            | ServiceOutcome::Admitted(ticket) =
                                service.try_admit_or_shed(&urgent)
                            {
                                held.push(ticket);
                            }
                        }
                        // Release early (explicitly or by drop), racing the
                        // deadline decrement for short-lived tickets...
                        8 => {
                            if !held.is_empty() {
                                let k = (next(&mut rng) as usize) % held.len();
                                let ticket = held.swap_remove(k);
                                if next(&mut rng).is_multiple_of(2) {
                                    ticket.release();
                                } // ...else drop releases it
                            }
                        }
                        // ...or hand the ticket to the deadline rule.
                        _ => {
                            if !held.is_empty() {
                                let k = (next(&mut rng) as usize) % held.len();
                                held.swap_remove(k).detach();
                            }
                        }
                    }
                }
                // Hand every still-held ticket to the deadline rule.
                let drained = held.len();
                for ticket in held {
                    ticket.detach();
                }
                drained
            })
        })
        .collect();

    // Validate the cross-shard invariants *while* the workers run: the
    // aggregate must be inside the region at every instant.
    let mut validations = 0u32;
    while !stop.load(Ordering::Relaxed) {
        service.debug_validate();
        validations += 1;
        if workers.iter().all(|w| w.is_finished()) {
            stop.store(true, Ordering::Relaxed);
        }
        std::thread::yield_now();
    }
    let drained: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(validations > 0);

    // Let every remaining deadline fire, then balance the books: each
    // admitted task must have left exactly one way (or still be live).
    service.debug_validate();
    let snap = service.snapshot();
    let c = snap.counters;
    assert_eq!(
        c.admitted,
        c.released + c.expired + c.shed + snap.live_tasks as u64,
        "exactly-once removal bookkeeping broke: {c:?} live={}",
        snap.live_tasks
    );
    assert!(
        c.admitted > 0 && c.rejected > 0,
        "both decision kinds exercised"
    );
    assert_eq!(c.admitted + c.rejected, snap.decision_latency.count());

    std::thread::sleep(std::time::Duration::from_millis(25));
    let expired = service.maintain();
    assert!(expired as usize <= c.admitted as usize && drained <= c.admitted as usize);
    service.debug_validate();
    assert_eq!(service.live_tasks(), 0, "all deadlines have passed");
    let u = service.utilizations();
    // Only a sub-ulp residue of the drained charges may remain (the next
    // admission's gate pass would pin it to exactly zero).
    assert!(
        u.iter().all(|&x| x < 1e-9),
        "drained service reads ~zero: {u:?}"
    );
}

/// The lock-free reject path (DESIGN.md §14) under fire: rejector threads
/// hammer `try_admit` with a spec that is infeasible *even on an empty
/// system* (three stages at u = 0.5 each, Σ f(0.5) = 2.25 > 1), so any
/// admit is a genuine spurious-admit bug — no oracle replay needed to
/// classify it. Meanwhile churn threads admit, release, and detach
/// feasible work (mutating the seqlock-protected utilizations and the
/// timer wheels) and a batch thread interleaves poison and feasible
/// requests through `admit_batch`'s fast prefix. Afterwards the counters
/// must balance exactly as a serial replay would: one decision per
/// attempt, one histogram sample per decision, and exactly-once removal.
#[test]
fn lock_free_rejects_race_admissions_without_spurious_verdicts() {
    const REJECTORS: usize = 3;
    const CHURNERS: usize = 3;
    const ITERS: usize = 20_000;

    let service = AdmissionService::builder(
        FeasibleRegion::deadline_monotonic(STAGES),
        ExactContributions,
    )
    .shards(4)
    .build();

    // Infeasible on an empty system: the charge hammer below can only
    // push utilizations higher, so every decision on this spec — fast
    // path, locked path, or batch prefix — must be a rejection.
    let poison = TaskSpec::pipeline(ms(10), &[ms(5), ms(5), ms(5)]).unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();

    for t in 0..REJECTORS {
        let service = service.clone();
        let poison = poison.clone();
        workers.push(std::thread::spawn(move || {
            for i in 0..ITERS {
                assert!(
                    service.try_admit(&poison).is_none(),
                    "spurious admit of an always-infeasible spec \
                     (rejector {t}, iteration {i})"
                );
            }
            ITERS // admission attempts made
        }));
    }

    for t in 0..CHURNERS {
        let service = service.clone();
        let specs = specs();
        workers.push(std::thread::spawn(move || {
            let mut rng = 0xc0ffee ^ (t as u64);
            let mut held = Vec::new();
            let mut attempts = 0usize;
            for _ in 0..ITERS {
                match next(&mut rng) % 8 {
                    0..=4 => {
                        let spec = &specs[(next(&mut rng) % specs.len() as u64) as usize];
                        attempts += 1;
                        if let Some(ticket) = service.try_admit(spec) {
                            held.push(ticket);
                        }
                    }
                    5 => {
                        if !held.is_empty() {
                            let k = (next(&mut rng) as usize) % held.len();
                            held.swap_remove(k).release();
                        }
                    }
                    _ => {
                        if !held.is_empty() {
                            let k = (next(&mut rng) as usize) % held.len();
                            held.swap_remove(k).detach();
                        }
                    }
                }
            }
            for ticket in held {
                ticket.detach();
            }
            attempts
        }));
    }

    // One thread drives the batch fast prefix against the same churn.
    {
        let service = service.clone();
        let poison = poison.clone();
        let specs = specs();
        workers.push(std::thread::spawn(move || {
            use frap_service::BatchRequest;
            let mut rng = 0xbadc0de_u64;
            let mut attempts = 0usize;
            for _ in 0..ITERS / 8 {
                let requests: Vec<BatchRequest<'_>> = (0..8)
                    .map(|i| {
                        if next(&mut rng).is_multiple_of(2) {
                            BatchRequest::new(&poison).on_shard(i)
                        } else {
                            BatchRequest::new(&specs[i % specs.len()])
                        }
                    })
                    .collect();
                let poisoned: Vec<bool> = requests
                    .iter()
                    .map(|r| std::ptr::eq(r.spec, &poison))
                    .collect();
                attempts += requests.len();
                for (outcome, was_poison) in
                    service.admit_batch(&requests).into_iter().zip(poisoned)
                {
                    if was_poison {
                        assert!(
                            !outcome.is_admitted(),
                            "spurious batch admit of an always-infeasible spec"
                        );
                    } else if let ServiceOutcome::Admitted(ticket) = outcome {
                        ticket.detach();
                    }
                }
            }
            attempts
        }));
    }

    // Validate the region + ledger invariants while the race runs.
    let mut validations = 0u32;
    while !stop.load(Ordering::Relaxed) {
        service.debug_validate();
        validations += 1;
        if workers.iter().all(|w| w.is_finished()) {
            stop.store(true, Ordering::Relaxed);
        }
        std::thread::yield_now();
    }
    let attempts: usize = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert!(validations > 0);

    service.debug_validate();
    let snap = service.snapshot();
    let c = snap.counters;

    // Exactly one decision per attempt, and one latency sample per
    // decision — the fast path's shared atomic histogram included.
    assert_eq!(
        c.decisions(),
        attempts as u64,
        "decision per attempt: {c:?}"
    );
    assert_eq!(c.decisions(), snap.decision_latency.count());
    assert_eq!(c.shed, 0, "no shedding requested");

    // The fast path actually engaged under contention, and it only ever
    // concluded rejections (it is a strict subset of `rejected`).
    assert!(c.fast_rejected > 0, "lock-free path never engaged: {c:?}");
    assert!(c.fast_rejected <= c.rejected);
    // Torn snapshots may or may not occur on this hardware; when they do,
    // the seqlock fallback is the only legal response (counted, and the
    // per-iteration asserts above prove no verdict went wrong either way).
    assert!(c.seqlock_fallbacks <= c.decisions());

    // Exactly-once removal held despite the race.
    assert_eq!(
        c.admitted,
        c.released + c.expired + c.shed + snap.live_tasks as u64,
        "exactly-once removal bookkeeping broke: {c:?} live={}",
        snap.live_tasks
    );
    assert!(c.admitted > 0, "churners admitted work: {c:?}");
    assert!(
        c.rejected >= (REJECTORS * ITERS) as u64,
        "every poison attempt rejected: {c:?}"
    );

    // Let the remaining deadlines fire and re-balance the books.
    std::thread::sleep(std::time::Duration::from_millis(25));
    service.maintain();
    service.debug_validate();
    assert_eq!(service.live_tasks(), 0, "all deadlines have passed");
}

#[test]
fn concurrent_idle_resets_stay_consistent() {
    use frap_core::task::StageId;

    let service = AdmissionService::builder(
        FeasibleRegion::deadline_monotonic(STAGES),
        ExactContributions,
    )
    .shards(2)
    .build();

    let workers: Vec<_> = (0..4usize)
        .map(|t| {
            let service = service.clone();
            let specs = specs();
            std::thread::spawn(move || {
                let mut rng = 0xfeed ^ (t as u64);
                for _ in 0..5_000 {
                    let spec = &specs[(next(&mut rng) % specs.len() as u64) as usize];
                    if let Some(ticket) = service.try_admit(spec) {
                        // Depart a random prefix of stages, then detach.
                        let upto = (next(&mut rng) as usize) % (STAGES + 1);
                        for j in 0..upto {
                            ticket.mark_departed(StageId::new(j));
                        }
                        ticket.detach();
                    }
                    if next(&mut rng).is_multiple_of(16) {
                        let j = (next(&mut rng) as usize) % STAGES;
                        service.on_stage_idle(StageId::new(j));
                    }
                }
            })
        })
        .collect();

    for _ in 0..200 {
        service.debug_validate();
        std::thread::yield_now();
    }
    for w in workers {
        w.join().unwrap();
    }
    service.debug_validate();
}
