//! Property tests for the holistic response-time analysis baseline.

use frap_core::rta::{HolisticAnalysis, PeriodicTask};
use frap_core::time::TimeDelta;
use proptest::prelude::*;

fn ms(v: u64) -> TimeDelta {
    TimeDelta::from_millis(v)
}

/// A small random periodic task set over 2 stages with implicit deadlines.
fn task_set() -> impl Strategy<Value = Vec<(u64, u64, u64)>> {
    // (period_ms, c0_ms, c1_ms) with per-task utilization ≤ ~60 %.
    proptest::collection::vec((20u64..200, 1u64..20, 1u64..20), 1..6)
}

fn build(tasks: &[(u64, u64, u64)], jitter_ms: u64) -> HolisticAnalysis {
    let mut rta = HolisticAnalysis::new(2);
    for &(p, c0, c1) in tasks {
        rta.add(
            PeriodicTask::deadline_monotonic(ms(p), ms(p), vec![ms(c0), ms(c1)])
                .with_jitter(ms(jitter_ms.min(p - 1))),
        );
    }
    rta
}

proptest! {
    /// Responses are at least the task's own computation and (when the
    /// set is schedulable) at most its deadline.
    #[test]
    fn responses_bracketed(tasks in task_set()) {
        let result = build(&tasks, 0).analyze();
        for (i, &(p, c0, c1)) in tasks.iter().enumerate() {
            let r = &result.tasks[i];
            prop_assert!(r.total >= ms(c0 + c1), "response below own work");
            if result.schedulable {
                prop_assert!(r.total <= ms(p));
            }
        }
    }

    /// Adding one more task never decreases anyone's response time
    /// (interference is monotone).
    #[test]
    fn adding_a_task_is_monotone(tasks in task_set(), extra in (20u64..200, 1u64..20, 1u64..20)) {
        let before = build(&tasks, 0).analyze();
        let mut with_extra = tasks.clone();
        with_extra.push(extra);
        let after = build(&with_extra, 0).analyze();
        if !before.converged || !after.converged {
            return Ok(());
        }
        for i in 0..tasks.len() {
            prop_assert!(
                after.tasks[i].total >= before.tasks[i].total,
                "task {i}: {} < {}",
                after.tasks[i].total,
                before.tasks[i].total
            );
        }
    }

    /// Increasing release jitter never decreases any response time.
    #[test]
    fn jitter_is_monotone(tasks in task_set(), j in 1u64..19) {
        let calm = build(&tasks, 0).analyze();
        let jittery = build(&tasks, j).analyze();
        if !calm.converged || !jittery.converged {
            return Ok(());
        }
        for i in 0..tasks.len() {
            prop_assert!(jittery.tasks[i].total >= calm.tasks[i].total);
        }
    }

    /// A stage utilization above 1 is always reported unschedulable.
    #[test]
    fn overload_is_detected(extra_tasks in 2u64..6) {
        // n identical tasks each using 60% of stage 0.
        let tasks: Vec<(u64, u64, u64)> =
            (0..extra_tasks).map(|_| (100, 60, 1)).collect();
        let result = build(&tasks, 0).analyze();
        prop_assert!(!result.schedulable, "{} tasks at 60% each", extra_tasks);
    }
}
