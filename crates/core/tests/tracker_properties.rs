//! Property tests for [`StageTracker`]'s heap/departure-list expiry
//! machinery: under arbitrary operation sequences the incrementally
//! maintained value must match the `recompute()` oracle (the exact sum
//! over the surviving entry map), and the live set must behave as the
//! decrement-at-deadline / reset-on-idle rules dictate — including
//! simultaneous expiries, re-adds that extend deadlines, sheds racing
//! lazy heap entries, and departures invalidated before the next reset.

use frap_core::synthetic::StageTracker;
use frap_core::task::TaskId;
use frap_core::time::{Time, TimeDelta};
use proptest::prelude::*;

/// One scripted operation, decoded from `(kind, task, amount_milli,
/// time_ms)`. Task ids come from a small pool so adds, sheds, departures,
/// and expiries collide often; expiry offsets are multiples of 10 ms from
/// a small pool of instants so *simultaneous* expiry of several tasks is
/// the common case, not the exception.
fn apply(tracker: &mut StageTracker, clock: &mut Time, op: (u8, u64, u64, u64)) -> String {
    let (kind, task, amount_milli, time_ms) = op;
    match kind {
        // Charge: expiries are absolute deadlines, always in the future.
        0 | 1 => {
            let amount = amount_milli as f64 / 1_000.0;
            let expiry = *clock + TimeDelta::from_millis(10 * (1 + time_ms % 8));
            tracker.add(TaskId::new(task), amount, expiry);
            format!("add({task}, {amount}, {expiry:?})")
        }
        2 => {
            tracker.shed(TaskId::new(task));
            format!("shed({task})")
        }
        3 => {
            tracker.mark_departed(TaskId::new(task));
            format!("mark_departed({task})")
        }
        4 => {
            tracker.reset_idle();
            "reset_idle".to_string()
        }
        // Decrement-at-deadline with a monotone clock.
        _ => {
            let now = Time::from_millis(time_ms).max(*clock);
            *clock = now;
            tracker.advance_to(now);
            format!("advance_to({now:?})")
        }
    }
}

proptest! {
    #[test]
    fn incremental_value_matches_recompute_oracle(
        ops in proptest::collection::vec(
            (0u8..6, 0u64..12, 0u64..500, 0u64..100),
            1..80,
        )
    ) {
        let mut tracker = StageTracker::new(0.25);
        let mut clock = Time::ZERO;
        for &op in &ops {
            let desc = apply(&mut tracker, &mut clock, op);
            // The incrementally maintained sum must match the exact
            // oracle up to float accumulation error.
            let incremental = tracker.value();
            let mut oracle = tracker.clone();
            oracle.recompute();
            prop_assert!(
                (incremental - oracle.value()).abs() < 1e-9,
                "after {desc}: incremental {incremental} vs oracle {}",
                oracle.value()
            );
            prop_assert!(incremental >= tracker.reserved() - 1e-12);
            prop_assert!(tracker.peak() >= incremental - 1e-12);
        }
        // Drain everything by expiring every deadline. The tracker must
        // land exactly on its reservation floor — no float residue.
        tracker.advance_to(Time::from_secs(3_600));
        prop_assert_eq!(tracker.live_tasks(), 0);
        prop_assert_eq!(tracker.value(), tracker.reserved());
    }

    /// All tasks share one expiry instant: a single `advance_to` must
    /// remove every one of them in one pass (simultaneous expiries).
    #[test]
    fn simultaneous_expiries_all_removed(
        n in 1usize..32,
        amount_milli in 1u64..100,
        expiry_ms in 1u64..50,
    ) {
        let mut tracker = StageTracker::new(0.0);
        for i in 0..n {
            tracker.add(
                TaskId::new(i as u64),
                amount_milli as f64 / 1_000.0,
                Time::from_millis(expiry_ms),
            );
        }
        prop_assert_eq!(tracker.live_tasks(), n);
        let removed = tracker.advance_to(Time::from_millis(expiry_ms));
        prop_assert_eq!(removed, n);
        prop_assert_eq!(tracker.live_tasks(), 0);
        prop_assert_eq!(tracker.value(), 0.0);
    }

    /// Departure flags survive arbitrary interleavings: after a reset, no
    /// departed task remains and no merely-live task was dropped.
    #[test]
    fn reset_idle_removes_exactly_departed(
        present in proptest::collection::vec(proptest::bool::ANY, 32),
        departed in proptest::collection::vec(proptest::bool::ANY, 32),
    ) {
        let mut tracker = StageTracker::new(0.0);
        for (t, &p) in present.iter().enumerate() {
            if p {
                tracker.add(TaskId::new(t as u64), 0.01, Time::from_secs(100));
            }
        }
        for (t, &d) in departed.iter().enumerate() {
            if d {
                // Departures of absent tasks must be no-ops.
                tracker.mark_departed(TaskId::new(t as u64));
            }
        }
        let removed = tracker.reset_idle();
        let expected = present
            .iter()
            .zip(&departed)
            .filter(|&(&p, &d)| p && d)
            .count();
        prop_assert_eq!(removed, expected);
        for (t, (&p, &d)) in present.iter().zip(&departed).enumerate() {
            prop_assert_eq!(tracker.contains(TaskId::new(t as u64)), p && !d);
        }
        // A second reset is a no-op: the departure list was drained.
        prop_assert_eq!(tracker.reset_idle(), 0);
    }
}
