//! Differential battery: the vectorized [`RegionKernel`] must agree with
//! the exact scalar region test **bit-for-bit on the verdict** — admit
//! exactly when `Σ f(U_j) ≤ budget` holds in `f64` — on every vector,
//! including vectors constructed within a few ulps of the region boundary
//! and of `f`'s pole at `U → 1`, where an approximate fast path is most
//! likely to lie.
//!
//! Three layers:
//!
//! * a deterministic bulk sweep (> 10⁵ cases, seeded splitmix64) across
//!   1–1024 stages and several utilization regimes;
//! * adversarial constructions: solve the last stage so the exact sum
//!   lands on the budget, then walk it ulp-by-ulp across the boundary;
//!   plus pole-adjacent stages straddling the fast path's eligibility cap;
//! * proptest shrinkers over random vectors, for minimized
//!   counterexamples if a regression ever lands.

use frap_core::delay::{stage_delay_factor, stage_delay_factor_inverse};
use frap_core::kernel::{FastVerdict, RegionKernel, FAST_MAX_UTILIZATION};
use frap_core::region::{FeasibleRegion, RegionTest};
use proptest::prelude::*;

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// The scalar oracle, spelled with the same operation order as
/// `FeasibleRegion::value` / `RegionKernel::exact_value`.
fn oracle_value(utils: &[f64]) -> f64 {
    utils.iter().map(|&u| stage_delay_factor(u)).sum()
}

/// Asserts every kernel surface against the oracle for one case and
/// returns 1 (so call sites can tally cases).
fn check(kernel: &RegionKernel, utils: &[f64]) -> u64 {
    let value = oracle_value(utils);
    let margin = kernel.budget() - value;
    let want = value <= kernel.budget();
    assert_eq!(
        want,
        margin >= 0.0,
        "margin sign disagrees with the verdict: value={value:e} budget={:e}",
        kernel.budget()
    );
    let got = kernel.feasible(utils);
    assert_eq!(
        got,
        want,
        "verdict diverged: budget={:e} value={value:e} utils={utils:?}",
        kernel.budget()
    );
    // Definitive fast verdicts must never contradict the oracle even
    // before the fallback is consulted.
    match kernel.classify(utils) {
        FastVerdict::Feasible => assert!(want, "fast Feasible lied: {utils:?}"),
        FastVerdict::Infeasible => assert!(!want, "fast Infeasible lied: {utils:?}"),
        FastVerdict::NearBoundary | FastVerdict::Ineligible => {}
    }
    assert_eq!(kernel.exact_feasible(utils), want);
    1
}

/// Nudges `x` by `ulps` representation steps (negative = toward zero).
fn nudge(x: f64, ulps: i64) -> f64 {
    assert!(x > 0.0 && x.is_finite());
    f64::from_bits((x.to_bits() as i64 + ulps) as u64)
}

#[test]
fn bulk_sweep_matches_exact_scalar_on_1e5_cases() {
    let mut state = 0xF3A5_1D2E_C0FF_EE00u64;
    let mut cases = 0u64;

    // Sizes skew small (realistic pipelines) with periodic wide vectors
    // to cover full lanes, remainders, and the 1024-stage extreme.
    let size_of = |i: u64, state: &mut u64| -> usize {
        match i % 50 {
            49 => 1024,
            47 | 48 => 256,
            44..=46 => 64,
            40..=43 => 17 + (splitmix64(state) % 16) as usize,
            _ => 1 + (splitmix64(state) % 16) as usize,
        }
    };

    for i in 0..120_000u64 {
        let n = size_of(i, &mut state);
        // Rotate through utilization regimes: comfortably inside,
        // straddling, decisively outside, and pole-heavy.
        let mut utils: Vec<f64> = match i % 4 {
            0 => (0..n).map(|_| unit(&mut state) * 0.4 / n as f64).collect(),
            1 => (0..n).map(|_| unit(&mut state) * 0.999).collect(),
            2 => (0..n).map(|_| 0.2 + unit(&mut state) * 0.79).collect(),
            _ => (0..n)
                .map(|_| {
                    if splitmix64(&mut state).is_multiple_of(7) {
                        // Hug the eligibility cap and the pole.
                        FAST_MAX_UTILIZATION - 1e-3 + unit(&mut state) * 2e-3
                    } else {
                        unit(&mut state) * 0.9
                    }
                })
                .collect(),
        };
        // A sprinkle of exactly-saturated stages (f = ∞).
        if i % 97 == 0 && !utils.is_empty() {
            let j = (splitmix64(&mut state) as usize) % utils.len();
            utils[j] = 1.0;
        }

        // The paper's unit budget plus random budgets on both sides of
        // whatever sum the vector produces.
        let budgets = [
            1.0,
            unit(&mut state) * 2.0,
            unit(&mut state) * 17.0 * n as f64,
        ];
        for b in budgets {
            let kernel = RegionKernel::new(n, b);
            cases += check(&kernel, &utils);
        }
    }
    assert!(cases >= 100_000, "only {cases} cases generated");
}

#[test]
fn boundary_adjacent_vectors_cross_the_budget_ulp_by_ulp() {
    // Solve the last stage so the exact f64 sum lands on the budget, then
    // walk that stage across the boundary one representation step at a
    // time. These are the worst inputs an approximate kernel can face;
    // every one must take the exact path's verdict.
    let mut state = 0xB0A7_CAFE_5EED_0001u64;
    let mut cases = 0u64;
    let mut near_boundary_seen = 0u64;

    for i in 0..4_000u64 {
        let n = 1 + (i as usize % 12);
        let budget = if i % 3 == 0 {
            1.0
        } else {
            0.25 + unit(&mut state) * 2.0
        };
        let kernel = RegionKernel::new(n, budget);

        // Random prefix consuming at most ~70% of the budget.
        let mut utils: Vec<f64> = (0..n - 1)
            .map(|_| {
                let x = unit(&mut state) * 0.7 * budget / n as f64;
                stage_delay_factor_inverse(x)
            })
            .collect();
        let prefix: f64 = oracle_value(&utils);
        let target = budget - prefix;
        if target <= 0.0 {
            continue;
        }
        let last = stage_delay_factor_inverse(target);
        if !last.is_finite() || last <= 0.0 || last >= 1.0 {
            continue;
        }
        utils.push(last);

        for ulps in -4i64..=4 {
            let mut v = utils.clone();
            let idx = v.len() - 1;
            v[idx] = nudge(last, ulps);
            cases += check(&kernel, &v);
            if kernel.classify(&v) == FastVerdict::NearBoundary {
                near_boundary_seen += 1;
            }
        }
    }
    assert!(cases >= 10_000, "only {cases} boundary cases generated");
    // The construction must actually exercise the guard band (otherwise
    // this test silently stopped testing the fallback seam).
    assert!(
        near_boundary_seen > cases / 2,
        "boundary construction stopped landing in the guard band \
         ({near_boundary_seen}/{cases})"
    );
}

#[test]
fn pole_adjacent_vectors_take_the_exact_path_verdict() {
    // Values within ulps of f's pole at u = 1 and of the eligibility cap.
    let specials = [
        nudge(1.0, -3),
        nudge(1.0, -2),
        nudge(1.0, -1),
        1.0,
        nudge(1.0, 1),
        nudge(FAST_MAX_UTILIZATION, -2),
        nudge(FAST_MAX_UTILIZATION, -1),
        FAST_MAX_UTILIZATION,
        nudge(FAST_MAX_UTILIZATION, 1),
        nudge(FAST_MAX_UTILIZATION, 2),
        1.0 - 1e-12,
        1.0 - 1e-9,
        1.0 - 1e-7,
        0.999,
    ];
    let mut cases = 0u64;
    for &a in &specials {
        for &b in &specials {
            for budget in [0.5, 1.0, 40.0] {
                let kernel = RegionKernel::new(3, budget);
                cases += check(&kernel, &[a, 0.1, b]);
            }
        }
        let kernel = RegionKernel::new(1, 1.0);
        cases += check(&kernel, &[a]);
    }
    assert!(cases > 500);
}

#[test]
fn feasible_region_trait_path_matches_contains() {
    // The service consumes the kernel through `RegionTest::feasible` on
    // `FeasibleRegion`; that routing must equal the validating `contains`.
    let mut state = 0x51CA_FE00_DEAD_BEEFu64;
    for n in [1usize, 2, 3, 8, 16, 64] {
        let region = FeasibleRegion::deadline_monotonic(n);
        let kernel = region.kernel();
        assert_eq!(kernel.stages(), n);
        assert_eq!(kernel.budget(), region.budget());
        for _ in 0..2_000 {
            let utils: Vec<f64> = (0..n).map(|_| unit(&mut state) * 1.02).collect();
            let want = region.contains(&utils).unwrap();
            assert_eq!(region.feasible(&utils), want, "n={n} utils={utils:?}");
            assert_eq!(kernel.feasible(&utils), want);
        }
    }
    // Blocking factors shrink the budget; the cached kernel must follow.
    let region = FeasibleRegion::deadline_monotonic(2)
        .with_blocking(vec![0.1, 0.2])
        .unwrap();
    assert_eq!(region.kernel().budget(), region.budget());
    for _ in 0..2_000 {
        let utils: Vec<f64> = (0..2).map(|_| unit(&mut state) * 1.02).collect();
        assert_eq!(region.feasible(&utils), region.contains(&utils).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn kernel_matches_oracle_on_random_vectors(
        utils in proptest::collection::vec(0.0..1.05f64, 1..200),
        budget in 0.0..4.0f64,
    ) {
        let kernel = RegionKernel::new(utils.len(), budget);
        let want = oracle_value(&utils) <= budget;
        prop_assert_eq!(kernel.feasible(&utils), want);
        match kernel.classify(&utils) {
            FastVerdict::Feasible => prop_assert!(want),
            FastVerdict::Infeasible => prop_assert!(!want),
            _ => {}
        }
    }

    #[test]
    fn kernel_matches_oracle_on_wide_vectors(
        utils in proptest::collection::vec(0.0..0.999f64, 512..1024),
    ) {
        let kernel = RegionKernel::new(utils.len(), 1.0);
        prop_assert_eq!(kernel.feasible(&utils), oracle_value(&utils) <= 1.0);
    }

    #[test]
    fn region_trait_matches_contains(
        utils in proptest::collection::vec(0.0..1.05f64, 1..64),
    ) {
        let region = FeasibleRegion::deadline_monotonic(utils.len());
        prop_assert_eq!(region.feasible(&utils), region.contains(&utils).unwrap());
    }
}
