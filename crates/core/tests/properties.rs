//! Property-based tests for the analytical core.

use frap_core::admission::{Admission, ExactContributions};
use frap_core::alpha::{alpha_for_assignment, Alpha};
use frap_core::delay::{
    stage_delay_factor, stage_delay_factor_derivative, stage_delay_factor_inverse,
    symmetric_stage_bound, UNIPROCESSOR_BOUND,
};
use frap_core::graph::{TaskGraph, TaskSpec};
use frap_core::region::{FeasibleRegion, RegionTest};
use frap_core::synthetic::StageTracker;
use frap_core::task::{Priority, StageId, SubtaskSpec, TaskId};
use frap_core::time::{Time, TimeDelta};
use proptest::prelude::*;

fn utilization() -> impl Strategy<Value = f64> {
    0.0..0.999f64
}

proptest! {
    #[test]
    fn delay_factor_nonnegative_and_increasing(u1 in utilization(), u2 in utilization()) {
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let f_lo = stage_delay_factor(lo);
        let f_hi = stage_delay_factor(hi);
        prop_assert!(f_lo >= 0.0);
        prop_assert!(f_lo <= f_hi);
    }

    #[test]
    fn delay_factor_inverse_roundtrips(u in utilization()) {
        let x = stage_delay_factor(u);
        let back = stage_delay_factor_inverse(x);
        prop_assert!((back - u).abs() < 1e-8, "u={u} back={back}");
    }

    #[test]
    fn delay_factor_convex(u in 0.001..0.99f64, v in 0.001..0.99f64) {
        // Midpoint convexity: f((u+v)/2) ≤ (f(u)+f(v))/2.
        let mid = stage_delay_factor(0.5 * (u + v));
        let avg = 0.5 * (stage_delay_factor(u) + stage_delay_factor(v));
        prop_assert!(mid <= avg + 1e-12);
    }

    #[test]
    fn delay_factor_below_identity_then_above(u in utilization()) {
        // f(u) ≥ u/... sanity: f(u) ≥ u(1-u/2) and f crosses 1 at the bound.
        prop_assert!(stage_delay_factor(u) >= u * (1.0 - 0.5 * u) - 1e-15);
        if u < UNIPROCESSOR_BOUND {
            prop_assert!(stage_delay_factor(u) < 1.0);
        }
        if u > UNIPROCESSOR_BOUND + 1e-12 {
            prop_assert!(stage_delay_factor(u) > 1.0);
        }
    }

    #[test]
    fn derivative_is_positive(u in utilization()) {
        prop_assert!(stage_delay_factor_derivative(u) >= 1.0);
    }

    #[test]
    fn symmetric_bound_lies_on_surface(n in 1usize..12, budget in 0.01..1.0f64) {
        let u = symmetric_stage_bound(n, budget);
        let total = n as f64 * stage_delay_factor(u);
        prop_assert!((total - budget).abs() < 1e-8);
    }

    #[test]
    fn region_monotone_in_each_coordinate(
        us in proptest::collection::vec(utilization(), 1..6),
        bump in 0.0..0.2f64,
        idx in 0usize..6,
    ) {
        let region = FeasibleRegion::deadline_monotonic(us.len());
        let mut bigger = us.clone();
        let i = idx % us.len();
        bigger[i] = (bigger[i] + bump).min(0.9999);
        prop_assert!(region.value(&us).unwrap() <= region.value(&bigger).unwrap() + 1e-12);
        // Monotone feasibility: feasible at the bigger point implies
        // feasible at the smaller point.
        if region.feasible(&bigger) {
            prop_assert!(region.feasible(&us));
        }
    }

    #[test]
    fn alpha_never_exceeds_one_and_matches_brute_force(
        pairs in proptest::collection::vec((1u64..1_000, 1u64..1_000_000), 0..24)
    ) {
        let tasks: Vec<(Priority, TimeDelta)> = pairs
            .iter()
            .map(|&(p, d)| (Priority::new(p), TimeDelta::from_micros(d)))
            .collect();
        let fast = alpha_for_assignment(&tasks).value();
        prop_assert!(fast > 0.0 && fast <= 1.0);

        let mut brute = 1.0f64;
        for (i, hi) in tasks.iter().enumerate() {
            for (j, lo) in tasks.iter().enumerate() {
                if i != j && hi.0 >= lo.0 {
                    brute = brute.min(lo.1.ratio(hi.1));
                }
            }
        }
        brute = brute.clamp(f64::MIN_POSITIVE, 1.0);
        prop_assert!((fast - brute).abs() < 1e-12, "fast={fast} brute={brute}");
    }

    #[test]
    fn tracker_value_equals_sum_of_live_contributions(
        ops in proptest::collection::vec((0u64..40, 1u64..100, 1u64..1_000), 1..200)
    ) {
        // Interleave adds, expiries, departures and resets; value() must
        // always equal the recomputed sum.
        let mut tr = StageTracker::new(0.0);
        let mut clock = Time::ZERO;
        for (i, &(task, amount, dt)) in ops.iter().enumerate() {
            match i % 4 {
                0 | 1 => {
                    let expiry = clock + TimeDelta::from_micros(dt);
                    tr.add(TaskId::new(task), amount as f64 / 1000.0, expiry);
                }
                2 => {
                    clock += TimeDelta::from_micros(dt / 2);
                    tr.advance_to(clock);
                }
                _ => {
                    tr.mark_departed(TaskId::new(task));
                    tr.reset_idle();
                }
            }
            let reported = tr.value();
            let mut check = tr.clone();
            check.recompute();
            prop_assert!((reported - check.value()).abs() < 1e-9);
            prop_assert!(reported >= -1e-12);
        }
    }

    #[test]
    fn chain_graph_region_equals_pipeline_region(
        us in proptest::collection::vec(utilization(), 1..6)
    ) {
        let n = us.len();
        let subtasks: Vec<SubtaskSpec> = (0..n)
            .map(|j| SubtaskSpec::new(StageId::new(j), TimeDelta::from_millis(1)))
            .collect();
        let g = TaskGraph::chain(subtasks).unwrap();
        let r = FeasibleRegion::deadline_monotonic(n);
        let gv = r.graph_value(&g, &us).unwrap();
        let pv = r.value(&us).unwrap();
        prop_assert!((gv - pv).abs() < 1e-9);
    }

    #[test]
    fn dag_longest_path_dominates_every_chain_subpath(
        delays in proptest::collection::vec(0.0..10.0f64, 4..5usize)
    ) {
        let ms1 = TimeDelta::from_millis(1);
        let g = TaskGraph::fork_join(
            SubtaskSpec::new(StageId::new(0), ms1),
            vec![
                SubtaskSpec::new(StageId::new(1), ms1),
                SubtaskSpec::new(StageId::new(2), ms1),
            ],
            SubtaskSpec::new(StageId::new(3), ms1),
        )
        .unwrap();
        let lp = g.longest_path(&delays);
        let via1 = delays[0] + delays[1] + delays[3];
        let via2 = delays[0] + delays[2] + delays[3];
        prop_assert!((lp - via1.max(via2)).abs() < 1e-12);
    }

    #[test]
    fn admission_never_leaves_region(
        arrivals in proptest::collection::vec((1u64..60, 1u64..60, 50u64..400), 1..120)
    ) {
        // Whatever the arrival pattern, the invariant holds: after every
        // decision, the live utilization vector is inside the region.
        let region = FeasibleRegion::deadline_monotonic(2);
        let mut ac = Admission::new(region.clone(), ExactContributions);
        let mut now = Time::ZERO;
        for &(c1, c2, d) in &arrivals {
            now += TimeDelta::from_millis(1);
            let spec = TaskSpec::pipeline(
                TimeDelta::from_millis(d),
                &[TimeDelta::from_millis(c1), TimeDelta::from_millis(c2)],
            )
            .unwrap();
            let _ = ac.try_admit(now, &spec);
            let utils = ac.state_mut().utilizations().to_vec();
            prop_assert!(region.feasible(&utils), "outside region: {utils:?}");
        }
    }

    #[test]
    fn alpha_validation_is_total(v in proptest::num::f64::ANY) {
        // Alpha::new never panics; it either validates or errors.
        let r = Alpha::new(v);
        if let Ok(a) = r {
            prop_assert!(a.value() > 0.0 && a.value() <= 1.0);
        }
    }
}

/// Enumerates all source→sink paths of a small DAG and returns the max
/// path sum — the brute-force reference for `TaskGraph::longest_path`.
fn brute_force_longest(g: &TaskGraph, delays: &[f64]) -> f64 {
    fn dfs(g: &TaskGraph, node: usize, delays: &[f64]) -> f64 {
        let below = g
            .succs(node)
            .iter()
            .map(|&s| dfs(g, s, delays))
            .fold(0.0f64, f64::max);
        delays[node] + below
    }
    g.sources()
        .into_iter()
        .map(|s| dfs(g, s, delays))
        .fold(0.0f64, f64::max)
}

proptest! {
    /// Random small layered DAGs: the DP longest path equals the
    /// brute-force enumeration over all paths.
    #[test]
    fn longest_path_matches_brute_force(
        layer_sizes in proptest::collection::vec(1usize..4, 1..4),
        edge_bits in proptest::collection::vec(proptest::bool::ANY, 64),
        delays_raw in proptest::collection::vec(0.0..10.0f64, 16),
    ) {
        // Build a layered DAG: every node may link to nodes in the next
        // layer, gated by edge_bits; guarantee at least one edge per
        // adjacent pair so the graph stays connected enough.
        let mut b = TaskGraph::builder();
        let mut layers: Vec<Vec<usize>> = Vec::new();
        let mut node_count = 0;
        for &size in &layer_sizes {
            let mut layer = Vec::new();
            for _ in 0..size {
                layer.push(b.add(SubtaskSpec::new(
                    StageId::new(node_count % 4),
                    TimeDelta::from_millis(1),
                )));
                node_count += 1;
            }
            layers.push(layer);
        }
        let mut bit = 0;
        for w in layers.windows(2) {
            for &from in &w[0] {
                let mut linked = false;
                for &to in &w[1] {
                    if edge_bits[bit % edge_bits.len()] {
                        b.edge(from, to);
                        linked = true;
                    }
                    bit += 1;
                }
                if !linked {
                    b.edge(from, w[1][0]);
                }
            }
        }
        let g = b.build().expect("layered DAGs are acyclic");
        let delays: Vec<f64> = (0..g.len()).map(|i| delays_raw[i % delays_raw.len()]).collect();
        let dp = g.longest_path(&delays);
        let brute = brute_force_longest(&g, &delays);
        prop_assert!((dp - brute).abs() < 1e-9, "dp={dp} brute={brute} graph={g}");

        // The critical path is a real path achieving the optimum.
        let path = g.critical_path(&delays);
        let path_sum: f64 = path.iter().map(|&i| delays[i]).sum();
        prop_assert!((path_sum - dp).abs() < 1e-9);
        for w in path.windows(2) {
            prop_assert!(g.succs(w[0]).contains(&w[1]), "path must follow edges");
        }
    }
}

proptest! {
    /// Headroom is exact: adding the reported headroom at any stage lands
    /// on the surface, and headroom shrinks as other stages load up.
    #[test]
    fn stage_headroom_is_exact_and_monotone(
        us in proptest::collection::vec(0.0..0.5f64, 2..5),
        idx in 0usize..5,
        extra in 0.01..0.3f64,
    ) {
        use frap_core::capacity::stage_headroom;
        let n = us.len();
        let region = FeasibleRegion::deadline_monotonic(n);
        let j = idx % n;
        if !region.feasible(&us) {
            return Ok(());
        }
        let h = stage_headroom(&region, &us, StageId::new(j)).unwrap();
        let mut at = us.clone();
        at[j] += h;
        let v = region.value(&at).unwrap();
        prop_assert!((v - region.budget()).abs() < 1e-6, "v={v}");

        // Loading another stage can only shrink stage j's headroom.
        let other = (j + 1) % n;
        if n > 1 {
            let mut heavier = us.clone();
            heavier[other] = (heavier[other] + extra).min(0.95);
            if region.feasible(&heavier) {
                let h2 = stage_headroom(&region, &heavier, StageId::new(j)).unwrap();
                prop_assert!(h2 <= h + 1e-9, "h2={h2} h={h}");
            }
        }
    }

    /// Weighted allocation always lands on (or within float-eps of) the
    /// surface and preserves weight ratios among uncapped stages.
    #[test]
    fn weighted_allocation_on_surface(
        weights in proptest::collection::vec(0.1..10.0f64, 1..5),
    ) {
        use frap_core::capacity::weighted_allocation;
        let region = FeasibleRegion::deadline_monotonic(weights.len());
        let alloc = weighted_allocation(&region, &weights).unwrap();
        let v = region.value(&alloc).unwrap();
        prop_assert!(v <= region.budget() + 1e-6);
        prop_assert!((v - region.budget()).abs() < 1e-4, "v={v}");
        for (i, (&a, &w)) in alloc.iter().zip(&weights).enumerate() {
            let (a0, w0) = (alloc[0], weights[0]);
            let lhs = a * w0;
            let rhs = a0 * w;
            prop_assert!(
                (lhs - rhs).abs() < 1e-4 * (lhs.abs() + rhs.abs() + 1.0),
                "ratio broken at {i}"
            );
        }
    }
}
