//! Holistic response-time analysis (RTA) for *periodic* pipeline task
//! sets — the classical offline baseline the paper's introduction
//! contrasts with its aperiodic end-to-end approach.
//!
//! Traditional tools analyze resource pipelines by per-stage fixed-point
//! response-time equations with *jitter propagation* (Tindell & Clark's
//! holistic analysis): a task's worst-case response at stage `j`,
//!
//! ```text
//! R_ij = C_ij + Σ_{k ∈ hp(i)} ⌈ (R_ij + J_kj) / T_k ⌉ · C_kj
//! ```
//!
//! feeds the release jitter downstream
//! (`J_{i,j+1} = J_{i,1} + Σ_{l ≤ j} (R_il − C_il)`), and the whole system
//! iterates to a fixed point. The end-to-end response is `Σ_j R_ij`.
//!
//! This is exactly the machinery the paper argues against for open
//! systems: it needs periods, grows pessimistic as jitter approaches the
//! period, and must be recomputed offline whenever the task set changes —
//! whereas the feasible-region test is O(N) per arrival and needs no
//! periodicity at all. Implementing it here lets the experiments compare
//! both on the same workloads.

use crate::task::Priority;
use crate::time::TimeDelta;

/// A periodic task traversing every stage of a pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeriodicTask {
    /// Minimum inter-arrival time `T_i`.
    pub period: TimeDelta,
    /// Relative end-to-end deadline `D_i`.
    pub deadline: TimeDelta,
    /// Release jitter at the first stage `J_i1`.
    pub release_jitter: TimeDelta,
    /// Per-stage worst-case computation times `C_ij` (one per stage;
    /// zero entries mean the stage is skipped).
    pub computations: Vec<TimeDelta>,
    /// Fixed priority (constant across stages, as in the paper's model).
    pub priority: Priority,
}

impl PeriodicTask {
    /// A deadline-monotonic periodic task (priority key = deadline).
    pub fn deadline_monotonic(
        period: TimeDelta,
        deadline: TimeDelta,
        computations: Vec<TimeDelta>,
    ) -> PeriodicTask {
        PeriodicTask {
            period,
            deadline,
            release_jitter: TimeDelta::ZERO,
            computations,
            priority: Priority::new(deadline.as_micros()),
        }
    }

    /// Sets the release jitter (builder style).
    pub fn with_jitter(mut self, jitter: TimeDelta) -> PeriodicTask {
        self.release_jitter = jitter;
        self
    }
}

/// Per-task analysis outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskResponse {
    /// Worst-case response time at each stage.
    pub per_stage: Vec<TimeDelta>,
    /// Worst-case end-to-end response (`Σ_j R_ij`).
    pub total: TimeDelta,
    /// Whether `total ≤ D_i`.
    pub schedulable: bool,
}

/// The whole-set analysis outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisResult {
    /// Per-task responses, in input order.
    pub tasks: Vec<TaskResponse>,
    /// Whether every task met its deadline.
    pub schedulable: bool,
    /// Whether the fixed-point iteration converged (false means some
    /// response diverged past its deadline bound and the set was declared
    /// unschedulable without a finite response value).
    pub converged: bool,
}

/// Holistic response-time analysis over a fixed periodic task set.
///
/// # Examples
///
/// ```
/// use frap_core::rta::{HolisticAnalysis, PeriodicTask};
/// use frap_core::time::TimeDelta;
///
/// let ms = TimeDelta::from_millis;
/// let mut rta = HolisticAnalysis::new(2);
/// rta.add(PeriodicTask::deadline_monotonic(ms(10), ms(10), vec![ms(2), ms(1)]));
/// rta.add(PeriodicTask::deadline_monotonic(ms(50), ms(50), vec![ms(5), ms(10)]));
/// let result = rta.analyze();
/// assert!(result.schedulable);
/// // The urgent task is uncontended: its response is its own computation.
/// assert_eq!(result.tasks[0].total, ms(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct HolisticAnalysis {
    stages: usize,
    tasks: Vec<PeriodicTask>,
}

impl HolisticAnalysis {
    /// An analysis over a `stages`-stage pipeline.
    pub fn new(stages: usize) -> HolisticAnalysis {
        HolisticAnalysis {
            stages,
            tasks: Vec::new(),
        }
    }

    /// Adds a task.
    ///
    /// # Panics
    ///
    /// Panics if the task's computation vector length differs from the
    /// stage count, or its period is zero.
    pub fn add(&mut self, task: PeriodicTask) -> &mut Self {
        assert_eq!(
            task.computations.len(),
            self.stages,
            "one computation time per stage"
        );
        assert!(!task.period.is_zero(), "period must be positive");
        self.tasks.push(task);
        self
    }

    /// Number of tasks in the set.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Runs the holistic fixed-point iteration.
    ///
    /// Responses are capped: if a stage response exceeds the task's
    /// deadline (a sufficient condition for unschedulability under this
    /// analysis), iteration stops growing that task and the set is
    /// reported unschedulable with `converged = false`.
    pub fn analyze(&self) -> AnalysisResult {
        let n = self.tasks.len();
        if n == 0 {
            return AnalysisResult {
                tasks: Vec::new(),
                schedulable: true,
                converged: true,
            };
        }

        // Stage-entry jitters J_ij; start with release jitter everywhere.
        let mut jitter: Vec<Vec<TimeDelta>> = self
            .tasks
            .iter()
            .map(|t| vec![t.release_jitter; self.stages])
            .collect();
        let mut response: Vec<Vec<TimeDelta>> =
            self.tasks.iter().map(|t| t.computations.clone()).collect();
        let mut diverged = false;

        // Outer iteration: jitters feed responses feed jitters; both are
        // monotonically non-decreasing, so this converges or diverges.
        for _round in 0..256 {
            let mut changed = false;
            #[allow(clippy::needless_range_loop)]
            for j in 0..self.stages {
                for i in 0..n {
                    let new_r = self.stage_response(i, j, &jitter);
                    let capped = match new_r {
                        Some(r) => r,
                        None => {
                            diverged = true;
                            // Pin to a value past the deadline so the task
                            // reports unschedulable.
                            self.tasks[i].deadline + TimeDelta::from_micros(1)
                        }
                    };
                    if capped != response[i][j] {
                        response[i][j] = capped;
                        changed = true;
                    }
                }
            }
            // Propagate jitters: J_{i,j+1} = J_i1 + Σ_{l≤j} (R_il − C_il).
            for i in 0..n {
                let mut acc = self.tasks[i].release_jitter;
                for j in 0..self.stages.saturating_sub(1) {
                    acc += response[i][j].saturating_sub(self.tasks[i].computations[j]);
                    if jitter[i][j + 1] != acc {
                        jitter[i][j + 1] = acc;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        let tasks: Vec<TaskResponse> = (0..n)
            .map(|i| {
                let total: TimeDelta = response[i].iter().copied().sum();
                TaskResponse {
                    per_stage: response[i].clone(),
                    total,
                    schedulable: total <= self.tasks[i].deadline,
                }
            })
            .collect();
        let schedulable = !diverged && tasks.iter().all(|t| t.schedulable);
        AnalysisResult {
            tasks,
            schedulable,
            converged: !diverged,
        }
    }

    /// Fixed-point `R_ij = C_ij + Σ_hp ⌈(R_ij + J_kj)/T_k⌉ C_kj`, or
    /// `None` if it exceeds the task's deadline (divergence cap).
    fn stage_response(&self, i: usize, j: usize, jitter: &[Vec<TimeDelta>]) -> Option<TimeDelta> {
        let me = &self.tasks[i];
        let c = me.computations[j];
        if c.is_zero() {
            return Some(TimeDelta::ZERO);
        }
        let mut w = c;
        for _ in 0..1_000 {
            let mut interference = TimeDelta::ZERO;
            for (k, other) in self.tasks.iter().enumerate() {
                if k == i || other.priority < me.priority {
                    continue; // strictly lower priority: no interference
                }
                if other.computations[j].is_zero() {
                    continue;
                }
                // ⌈(w + J_kj) / T_k⌉ releases of task k inside the window.
                let window = w + jitter[k][j];
                let releases = window.as_micros().div_ceil(other.period.as_micros()).max(1);
                interference += other.computations[j] * releases;
            }
            let next = c + interference;
            if next > me.deadline {
                return None;
            }
            if next == w {
                return Some(w);
            }
            w = next;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    #[test]
    fn empty_set_is_schedulable() {
        let result = HolisticAnalysis::new(2).analyze();
        assert!(result.schedulable);
        assert!(result.converged);
        assert!(result.tasks.is_empty());
    }

    #[test]
    fn single_task_response_is_its_computation() {
        let mut rta = HolisticAnalysis::new(3);
        rta.add(PeriodicTask::deadline_monotonic(
            ms(100),
            ms(100),
            vec![ms(5), ms(10), ms(5)],
        ));
        let r = rta.analyze();
        assert!(r.schedulable);
        assert_eq!(r.tasks[0].total, ms(20));
        assert_eq!(r.tasks[0].per_stage, vec![ms(5), ms(10), ms(5)]);
    }

    #[test]
    fn classic_single_stage_interference() {
        // Textbook example: T1 (T=D=10, C=3), T2 (T=D=20, C=6) on one CPU.
        // R1 = 3; R2 = 6 + ⌈R2/10⌉·3 with fixed point R2 = 9.
        let mut rta = HolisticAnalysis::new(1);
        rta.add(PeriodicTask::deadline_monotonic(
            ms(10),
            ms(10),
            vec![ms(3)],
        ));
        rta.add(PeriodicTask::deadline_monotonic(
            ms(20),
            ms(20),
            vec![ms(6)],
        ));
        let r = rta.analyze();
        assert!(r.schedulable);
        assert_eq!(r.tasks[0].total, ms(3));
        assert_eq!(r.tasks[1].total, ms(9));
        // A heavier low-priority task crosses into the second release.
        let mut rta2 = HolisticAnalysis::new(1);
        rta2.add(PeriodicTask::deadline_monotonic(
            ms(10),
            ms(10),
            vec![ms(3)],
        ));
        rta2.add(PeriodicTask::deadline_monotonic(
            ms(20),
            ms(20),
            vec![ms(8)],
        ));
        let r2 = rta2.analyze();
        // R = 8 + ⌈R/10⌉·3: w=11 → 2 releases → 14; w=14 → 14. Fixed.
        assert_eq!(r2.tasks[1].total, ms(14));
    }

    #[test]
    fn overloaded_stage_is_unschedulable() {
        let mut rta = HolisticAnalysis::new(1);
        rta.add(PeriodicTask::deadline_monotonic(
            ms(10),
            ms(10),
            vec![ms(6)],
        ));
        rta.add(PeriodicTask::deadline_monotonic(
            ms(10),
            ms(10),
            vec![ms(6)],
        ));
        let r = rta.analyze();
        assert!(!r.schedulable);
    }

    #[test]
    fn jitter_increases_interference() {
        // The low-priority task sees more interference when the
        // high-priority task has release jitter.
        let build = |jitter: TimeDelta| {
            let mut rta = HolisticAnalysis::new(1);
            rta.add(
                PeriodicTask::deadline_monotonic(ms(10), ms(10), vec![ms(3)]).with_jitter(jitter),
            );
            rta.add(PeriodicTask::deadline_monotonic(
                ms(30),
                ms(30),
                vec![ms(6)],
            ));
            rta.analyze()
        };
        let no_jitter = build(TimeDelta::ZERO);
        let jittery = build(ms(9));
        assert!(no_jitter.schedulable);
        assert!(
            jittery.tasks[1].total > no_jitter.tasks[1].total,
            "{} vs {}",
            jittery.tasks[1].total,
            no_jitter.tasks[1].total
        );
    }

    #[test]
    fn pipeline_jitter_propagates_downstream() {
        // A high-priority task whose stage-0 response varies creates
        // downstream jitter that hits the low-priority task at stage 1.
        let mut rta = HolisticAnalysis::new(2);
        // Urgent but slowed at stage 0 by nothing (highest priority).
        rta.add(PeriodicTask::deadline_monotonic(
            ms(20),
            ms(20),
            vec![ms(4), ms(4)],
        ));
        rta.add(PeriodicTask::deadline_monotonic(
            ms(100),
            ms(100),
            vec![ms(10), ms(10)],
        ));
        let r = rta.analyze();
        assert!(r.schedulable);
        // Low-priority stage-0 response: 10 + ⌈w/20⌉·4 → 14.
        assert_eq!(r.tasks[1].per_stage[0], ms(14));
        // End-to-end includes stage-1 interference as well.
        assert!(r.tasks[1].total >= ms(28));
    }

    #[test]
    fn zero_computation_stage_is_skipped() {
        let mut rta = HolisticAnalysis::new(2);
        rta.add(PeriodicTask::deadline_monotonic(
            ms(10),
            ms(10),
            vec![ms(2), TimeDelta::ZERO],
        ));
        rta.add(PeriodicTask::deadline_monotonic(
            ms(40),
            ms(40),
            vec![TimeDelta::ZERO, ms(5)],
        ));
        let r = rta.analyze();
        assert!(r.schedulable);
        assert_eq!(r.tasks[0].per_stage[1], TimeDelta::ZERO);
        // No shared stage → no interference.
        assert_eq!(r.tasks[1].total, ms(5));
    }

    #[test]
    fn near_full_jitter_breaks_the_analysis_but_not_the_region() {
        // The paper's motivating case: jitter ≈ period makes holistic RTA
        // declare the set unschedulable, while the aperiodic region can
        // still certify the same demand.
        let mut rta = HolisticAnalysis::new(2);
        for _ in 0..6 {
            rta.add(
                PeriodicTask::deadline_monotonic(ms(100), ms(100), vec![ms(8), ms(8)])
                    .with_jitter(ms(95)),
            );
        }
        let r = rta.analyze();
        assert!(
            !r.schedulable,
            "full jitter doubles worst-case interference"
        );

        // Aperiodic view: each instance contributes C/D = 0.08 per stage;
        // six concurrent instances → U_j = 0.48 per stage… Σf = 1.33 > 1,
        // so the region would *also* throttle six-at-once. But at the real
        // sustainable level (streams admitted as they arrive), admission
        // control guarantees whatever it accepts — no offline analysis
        // needed. The comparison experiment lives in the test suite.
        use crate::region::FeasibleRegion;
        let region = FeasibleRegion::deadline_monotonic(2);
        assert!(region.contains(&[0.32, 0.32]).unwrap(), "four fit");
    }

    #[test]
    #[should_panic(expected = "one computation time per stage")]
    fn wrong_arity_panics() {
        HolisticAnalysis::new(2).add(PeriodicTask::deadline_monotonic(
            ms(10),
            ms(10),
            vec![ms(1)],
        ));
    }

    #[test]
    #[should_panic(expected = "period")]
    fn zero_period_panics() {
        HolisticAnalysis::new(1).add(PeriodicTask::deadline_monotonic(
            TimeDelta::ZERO,
            ms(10),
            vec![ms(1)],
        ));
    }
}
