//! A compact log-bucketed latency histogram (HdrHistogram-style, two
//! mantissa bits ⇒ ≤ 12.5 % relative bucket width), used for response-time
//! percentiles without storing per-task outcomes.

use crate::time::TimeDelta;

const SUB_BITS: u32 = 2;
const SUB: usize = 1 << SUB_BITS; // 4 sub-buckets per octave
const OCTAVES: usize = 64;
const BUCKETS: usize = OCTAVES * SUB;

/// A histogram over [`TimeDelta`] values with bounded relative error.
///
/// # Examples
///
/// ```
/// use frap_core::hist::LatencyHistogram;
/// use frap_core::time::TimeDelta;
///
/// let mut h = LatencyHistogram::new();
/// for ms in 1..=100u64 {
///     h.record(TimeDelta::from_millis(ms));
/// }
/// assert_eq!(h.count(), 100);
/// let p50 = h.percentile(0.50);
/// // Within one bucket (≤ ~15%) of the true median of 50 ms.
/// assert!(p50 >= TimeDelta::from_millis(44) && p50 <= TimeDelta::from_millis(58));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    counts: Vec<u64>,
    total: u64,
    max: TimeDelta,
    min: TimeDelta,
    /// A certain lower bound on the largest recorded value. Equals `max`
    /// while every sample was recorded exactly; after merging bucket-only
    /// sources it can sit one bucket below `max`.
    max_lb: TimeDelta,
    /// Whether `max` is the exact largest sample (vs. a bucket or
    /// saturation bound inherited from an [`AtomicLatencyHistogram`]).
    max_exact: bool,
    /// Samples known only as `>= SATURATION_BOUND` (the atomic
    /// histogram's overflow bucket).
    saturated: u64,
}

/// Values at or above this bound (in the histogram's own unit) land in
/// [`AtomicLatencyHistogram`]'s explicit overflow bucket and are reported
/// only as `>= SATURATION_BOUND` — no upper bound is claimed for them.
pub const SATURATION_BOUND: u64 = 1 << 35;

fn bucket_of(micros: u64) -> usize {
    if micros < SUB as u64 {
        // Values 0..3 land in the first buckets exactly.
        return micros as usize;
    }
    let octave = 63 - micros.leading_zeros();
    let sub = ((micros >> (octave - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    (octave as usize) * SUB + sub
}

fn bucket_upper_bound(idx: usize) -> u64 {
    if idx < SUB {
        return idx as u64;
    }
    let octave = (idx / SUB) as u32;
    let sub = (idx % SUB) as u64;
    // Upper edge of the sub-bucket.
    (1u64 << octave) + (sub + 1) * (1u64 << (octave - SUB_BITS)) - 1
}

fn bucket_lower_bound(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        bucket_upper_bound(idx - 1) + 1
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            counts: vec![0; BUCKETS],
            total: 0,
            max: TimeDelta::ZERO,
            min: TimeDelta::MAX,
            max_lb: TimeDelta::ZERO,
            max_exact: true,
            saturated: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: TimeDelta) {
        self.counts[bucket_of(value.as_micros())] += 1;
        self.total += 1;
        self.max_lb = self.max_lb.max(value);
        if value >= self.max {
            // A sample at or above the previous max (exact or bound)
            // makes the max exact again.
            self.max = value;
            self.max_exact = true;
        }
        self.min = self.min.min(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The largest recorded value. Exact while every sample came through
    /// [`LatencyHistogram::record`]; after merging an
    /// [`AtomicLatencyHistogram`] it may be a bucket upper bound (see
    /// [`LatencyHistogram::max_is_exact`]), and with saturated samples it
    /// is only the saturation bound — the true max can exceed it.
    pub fn max(&self) -> TimeDelta {
        if self.is_empty() {
            TimeDelta::ZERO
        } else {
            self.max
        }
    }

    /// Whether [`LatencyHistogram::max`] is an exact sample rather than a
    /// bucket / saturation bound inherited from a bucket-only source.
    pub fn max_is_exact(&self) -> bool {
        self.max_exact
    }

    /// A certain lower bound on the largest recorded value: the honest
    /// `>= bound` figure to report when [`LatencyHistogram::max_is_exact`]
    /// is false (it equals [`LatencyHistogram::max`] when exact).
    pub fn max_lower_bound(&self) -> TimeDelta {
        if self.is_empty() {
            TimeDelta::ZERO
        } else {
            self.max_lb
        }
    }

    /// Samples recorded only as `>= SATURATION_BOUND` via an atomic
    /// source's overflow bucket.
    pub fn saturated(&self) -> u64 {
        self.saturated
    }

    /// The smallest recorded value (exact).
    pub fn min(&self) -> TimeDelta {
        if self.is_empty() {
            TimeDelta::ZERO
        } else {
            self.min
        }
    }

    /// The value at quantile `q ∈ [0, 1]` (bucket upper bound, so the
    /// estimate errs ≤ 12.5 % high). Returns zero for an empty histogram.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]` or NaN.
    pub fn percentile(&self, q: f64) -> TimeDelta {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return TimeDelta::ZERO;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp to the observed extremes for exactness at the tails.
                let ub = TimeDelta::from_micros(bucket_upper_bound(idx));
                return ub.min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.saturated += other.saturated;
        if other.total > 0 {
            if other.max > self.max {
                self.max = other.max;
                self.max_exact = other.max_exact;
            }
            self.max_lb = self.max_lb.max(other.max_lb);
            self.min = self.min.min(other.min);
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

/// A [`LatencyHistogram`] recordable from many threads without a lock.
///
/// Same buckets and bounded relative error; `record` is a **single**
/// relaxed atomic increment, so lock-free decision paths can keep latency
/// accounting without re-introducing the mutex they just avoided (or a
/// tail of min/max RMWs per sample). The price: min and max are only
/// known to bucket resolution (≤ 12.5 % wide) rather than exactly, and
/// [`AtomicLatencyHistogram::count`] sums the buckets instead of reading
/// one counter. Snapshot into the plain histogram with
/// [`AtomicLatencyHistogram::merge_into`].
#[derive(Debug)]
pub struct AtomicLatencyHistogram {
    counts: Vec<std::sync::atomic::AtomicU64>,
    /// Explicit saturation bucket: samples `>= SATURATION_BOUND`, for
    /// which only that lower bound is claimed. Kept out of the log
    /// buckets so reporting can say `>= bound` instead of inventing an
    /// in-range value for a wildly out-of-range sample.
    overflow: std::sync::atomic::AtomicU64,
}

impl AtomicLatencyHistogram {
    /// An empty histogram.
    pub fn new() -> AtomicLatencyHistogram {
        AtomicLatencyHistogram {
            counts: (0..BUCKETS).map(|_| Default::default()).collect(),
            overflow: Default::default(),
        }
    }

    /// Records one value (one relaxed `fetch_add`).
    pub fn record(&self, value: TimeDelta) {
        use std::sync::atomic::Ordering::Relaxed;
        let v = value.as_micros();
        if v >= SATURATION_BOUND {
            self.overflow.fetch_add(1, Relaxed);
        } else {
            self.counts[bucket_of(v)].fetch_add(1, Relaxed);
        }
    }

    /// Samples that landed in the explicit saturation bucket.
    pub fn saturated(&self) -> u64 {
        self.overflow.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Number of recorded values, the saturation bucket included (sums
    /// the buckets; intended for snapshot/reporting paths, not per-sample
    /// hot loops).
    pub fn count(&self) -> u64 {
        use std::sync::atomic::Ordering::Relaxed;
        self.counts.iter().map(|c| c.load(Relaxed)).sum::<u64>() + self.saturated()
    }

    /// Adds this histogram's cumulative contents into `out`, like
    /// [`LatencyHistogram::merge`] (it does not drain; callers building a
    /// point-in-time snapshot should merge into a fresh histogram).
    /// Values recorded concurrently may or may not be included.
    ///
    /// `out`'s min/max are widened to the *bucket bounds* of the lowest
    /// and highest non-empty buckets — within the histogram's ≤ 12.5 %
    /// relative error, but not exact the way `LatencyHistogram::record`'s
    /// own extremes are. `out` remembers that: its `max_is_exact` flips
    /// off whenever the merged bound dominates, and `max_lower_bound`
    /// carries the honest `>= bound` figure (the highest non-empty
    /// bucket's lower edge, or `SATURATION_BOUND` once the overflow
    /// bucket is populated).
    pub fn merge_into(&self, out: &mut LatencyHistogram) {
        use std::sync::atomic::Ordering::Relaxed;
        let mut total = 0u64;
        let mut lowest = None;
        let mut highest = None;
        for (bucket, count) in self.counts.iter().enumerate() {
            let c = count.load(Relaxed);
            if c > 0 {
                out.counts[bucket] += c;
                total += c;
                lowest.get_or_insert(bucket);
                highest = Some(bucket);
            }
        }
        if total > 0 {
            out.total += total;
            let (lo, hi) = (lowest.expect("non-empty"), highest.expect("non-empty"));
            let ub = TimeDelta::from_micros(bucket_upper_bound(hi));
            if ub > out.max {
                out.max = ub;
                out.max_exact = false;
            }
            out.max_lb = out
                .max_lb
                .max(TimeDelta::from_micros(bucket_lower_bound(hi)));
            out.min = out.min.min(TimeDelta::from_micros(bucket_lower_bound(lo)));
        }
        let saturated = self.saturated();
        if saturated > 0 {
            let bound = TimeDelta::from_micros(SATURATION_BOUND);
            out.total += saturated;
            out.saturated += saturated;
            out.min = out.min.min(bound);
            out.max_lb = out.max_lb.max(bound);
            if bound >= out.max {
                // No upper bound is known for saturated samples; `max`
                // degrades to the saturation bound itself.
                out.max = bound;
                out.max_exact = false;
            }
        }
    }
}

impl Default for AtomicLatencyHistogram {
    fn default() -> Self {
        AtomicLatencyHistogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> TimeDelta {
        TimeDelta::from_micros(v)
    }

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), TimeDelta::ZERO);
        assert_eq!(h.max(), TimeDelta::ZERO);
        assert_eq!(h.min(), TimeDelta::ZERO);
    }

    #[test]
    fn exact_for_tiny_values() {
        let mut h = LatencyHistogram::new();
        h.record(us(0));
        h.record(us(1));
        h.record(us(2));
        assert_eq!(h.count(), 3);
        assert_eq!(h.percentile(0.0), us(0));
        assert_eq!(h.percentile(1.0), us(2));
    }

    #[test]
    fn percentiles_within_bucket_error() {
        let mut h = LatencyHistogram::new();
        for v in 1..=10_000u64 {
            h.record(us(v));
        }
        for &(q, truth) in &[(0.5, 5_000u64), (0.9, 9_000), (0.99, 9_900)] {
            let est = h.percentile(q).as_micros();
            let err = (est as f64 - truth as f64).abs() / truth as f64;
            assert!(err < 0.13, "q={q} est={est} truth={truth} err={err}");
        }
    }

    #[test]
    fn max_and_min_are_exact() {
        let mut h = LatencyHistogram::new();
        h.record(us(123_457));
        h.record(us(7));
        assert_eq!(h.max(), us(123_457));
        assert_eq!(h.min(), us(7));
        assert_eq!(h.percentile(1.0), us(123_457));
    }

    #[test]
    fn monotone_in_quantile() {
        let mut h = LatencyHistogram::new();
        let mut x = 1u64;
        for _ in 0..50 {
            h.record(us(x));
            x = x.wrapping_mul(48271) % 1_000_000 + 1;
        }
        let mut prev = TimeDelta::ZERO;
        for i in 0..=20 {
            let p = h.percentile(i as f64 / 20.0);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(us(10));
        b.record(us(1_000));
        b.record(us(2_000));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), us(2_000));
        assert_eq!(a.min(), us(10));
    }

    #[test]
    fn bucket_roundtrip_is_monotone_and_tight() {
        let mut values: Vec<u64> = Vec::new();
        for exp in 0..50u32 {
            for sub in [0u64, 1, 2, 3] {
                values.push((1u64 << exp) + sub * (1u64 << exp.saturating_sub(2)));
            }
        }
        values.sort_unstable();
        values.dedup();
        let mut prev_idx = 0;
        for v in values {
            let idx = bucket_of(v);
            assert!(idx >= prev_idx, "bucketing must be monotone at v={v}");
            prev_idx = idx;
            let ub = bucket_upper_bound(idx);
            assert!(ub >= v, "upper bound {ub} must cover value {v}");
            assert!(
                (ub as f64) <= v as f64 * 1.26 + 4.0,
                "bucket too wide: v={v} ub={ub}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn bad_quantile_panics() {
        LatencyHistogram::new().percentile(1.5);
    }

    #[test]
    fn atomic_histogram_matches_the_locked_one() {
        let atomic = AtomicLatencyHistogram::new();
        let mut plain = LatencyHistogram::new();
        let mut x = 1u64;
        for _ in 0..5_000 {
            x = x.wrapping_mul(48271) % 2_000_000 + 1;
            atomic.record(us(x));
            plain.record(us(x));
        }
        let mut merged = LatencyHistogram::new();
        atomic.merge_into(&mut merged);
        assert_eq!(merged.count(), plain.count());
        assert_eq!(atomic.count(), plain.count());
        // Extremes are bucket-resolution (≤ 12.5 % wide), bracketing the
        // exact ones the locked histogram tracks per sample.
        assert!(merged.max() >= plain.max());
        assert!(merged.max().as_micros() as f64 <= plain.max().as_micros() as f64 * 1.26 + 4.0);
        assert!(merged.min() <= plain.min());
        assert!(merged.min().as_micros() as f64 >= plain.min().as_micros() as f64 / 1.26 - 4.0);
        for q in [0.1, 0.5, 0.9, 0.99] {
            // Same buckets, so mid-range percentiles agree except where
            // the locked histogram clamps to its exact extremes.
            let (m, p) = (merged.percentile(q), plain.percentile(q));
            assert!(m >= p, "q={q}");
            assert!(
                m.as_micros() as f64 <= p.as_micros() as f64 * 1.26 + 4.0,
                "q={q}"
            );
        }
        // Merging into a non-empty histogram accumulates.
        atomic.merge_into(&mut merged);
        assert_eq!(merged.count(), 2 * plain.count());
    }

    #[test]
    fn empty_atomic_merge_is_a_no_op() {
        let atomic = AtomicLatencyHistogram::new();
        let mut out = LatencyHistogram::new();
        out.record(us(5));
        atomic.merge_into(&mut out);
        assert_eq!(out.count(), 1);
        assert_eq!(out.min(), us(5));
    }

    #[test]
    fn merged_max_is_flagged_as_a_bound() {
        let mut plain = LatencyHistogram::new();
        plain.record(us(100));
        assert!(plain.max_is_exact());
        assert_eq!(plain.max_lower_bound(), us(100));

        // An atomic source with a larger sample: the merged max comes
        // from a bucket, so it must be flagged and bracketed.
        let atomic = AtomicLatencyHistogram::new();
        atomic.record(us(1_000_000));
        atomic.merge_into(&mut plain);
        assert!(!plain.max_is_exact());
        assert!(plain.max_lower_bound() <= us(1_000_000));
        assert!(plain.max() >= us(1_000_000));
        assert!(plain.max_lower_bound() <= plain.max());

        // A later exact sample at/above the bound restores exactness.
        plain.record(plain.max());
        assert!(plain.max_is_exact());
    }

    #[test]
    fn merged_max_stays_exact_when_the_exact_side_dominates() {
        let mut plain = LatencyHistogram::new();
        plain.record(us(5_000_000));
        let atomic = AtomicLatencyHistogram::new();
        atomic.record(us(10));
        atomic.merge_into(&mut plain);
        assert!(plain.max_is_exact());
        assert_eq!(plain.max(), us(5_000_000));
        assert_eq!(plain.max_lower_bound(), us(5_000_000));
    }

    #[test]
    fn saturation_bucket_reports_a_lower_bound_only() {
        let atomic = AtomicLatencyHistogram::new();
        atomic.record(us(SATURATION_BOUND));
        atomic.record(us(u64::MAX));
        atomic.record(us(7));
        assert_eq!(atomic.saturated(), 2);
        assert_eq!(atomic.count(), 3);

        let mut out = LatencyHistogram::new();
        atomic.merge_into(&mut out);
        assert_eq!(out.count(), 3);
        assert_eq!(out.saturated(), 2);
        assert!(!out.max_is_exact());
        assert_eq!(out.max(), us(SATURATION_BOUND));
        assert_eq!(out.max_lower_bound(), us(SATURATION_BOUND));
        // The saturated tail surfaces at the bound in the percentiles.
        assert_eq!(out.percentile(1.0), us(SATURATION_BOUND));

        // Plain merge carries the saturation accounting along.
        let mut sum = LatencyHistogram::new();
        sum.merge(&out);
        assert_eq!(sum.saturated(), 2);
        assert!(!sum.max_is_exact());
    }

    #[test]
    fn atomic_histogram_is_thread_safe() {
        let atomic = std::sync::Arc::new(AtomicLatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&atomic);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(us(t * 1_000 + i % 97));
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        let mut out = LatencyHistogram::new();
        atomic.merge_into(&mut out);
        assert_eq!(out.count(), 40_000);
        assert_eq!(out.min(), us(0), "bucket 0 is exact");
        let max = out.max().as_micros();
        assert!(
            (3_096..=3_584).contains(&max),
            "bucket-resolution max: {max}"
        );
    }
}
