//! Discrete simulation time.
//!
//! All of FRAP uses an integer microsecond clock. Integer time makes the
//! discrete-event simulator deterministic (no floating-point drift in event
//! ordering) while one-microsecond resolution is far finer than any quantity
//! in the paper's evaluation (computation times are milliseconds, deadlines
//! are hundreds of milliseconds to seconds).
//!
//! Two newtypes are provided:
//!
//! * [`Time`] — an absolute instant on the simulation clock.
//! * [`TimeDelta`] — a non-negative span between instants (a computation
//!   time, a relative deadline, a stage delay, …).
//!
//! # Examples
//!
//! ```
//! use frap_core::time::{Time, TimeDelta};
//!
//! let arrival = Time::ZERO + TimeDelta::from_millis(3);
//! let deadline = arrival + TimeDelta::from_secs(1);
//! assert_eq!(deadline - arrival, TimeDelta::from_secs(1));
//! assert_eq!(deadline.as_micros(), 1_003_000);
//! ```

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in integer microseconds.
///
/// `Time` is totally ordered and starts at [`Time::ZERO`]. Subtracting two
/// instants yields a [`TimeDelta`]; adding a delta yields a later instant.
///
/// # Examples
///
/// ```
/// use frap_core::time::{Time, TimeDelta};
/// let t = Time::from_secs(2);
/// assert!(t > Time::ZERO);
/// assert_eq!(t + TimeDelta::from_millis(500), Time::from_micros(2_500_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A non-negative span of simulation time, in integer microseconds.
///
/// Used for computation times, relative deadlines, periods, stage delays and
/// every other duration-valued quantity in FRAP.
///
/// # Examples
///
/// ```
/// use frap_core::time::TimeDelta;
/// let c = TimeDelta::from_millis(10);
/// assert_eq!(c * 3, TimeDelta::from_millis(30));
/// assert_eq!(c.as_secs_f64(), 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(u64);

impl Time {
    /// The origin of the simulation clock.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant `micros` microseconds after the origin.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        Time(micros)
    }

    /// Creates an instant `millis` milliseconds after the origin.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        Time(millis * 1_000)
    }

    /// Creates an instant `secs` seconds after the origin.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        Time(secs * 1_000_000)
    }

    /// Microseconds since the origin.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the origin, as a float (for reporting only).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span from `earlier` to `self`, or `None` if `earlier`
    /// is actually later.
    #[inline]
    pub fn checked_since(self, earlier: Time) -> Option<TimeDelta> {
        self.0.checked_sub(earlier.0).map(TimeDelta)
    }

    /// Returns the span from `earlier` to `self`, saturating at zero.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(earlier.0))
    }

    /// Adds a delta, saturating at [`Time::MAX`].
    #[inline]
    pub fn saturating_add(self, delta: TimeDelta) -> Time {
        Time(self.0.saturating_add(delta.0))
    }
}

impl TimeDelta {
    /// The empty span.
    pub const ZERO: TimeDelta = TimeDelta(0);
    /// The largest representable span.
    pub const MAX: TimeDelta = TimeDelta(u64::MAX);

    /// Creates a span of `micros` microseconds.
    #[inline]
    pub const fn from_micros(micros: u64) -> Self {
        TimeDelta(micros)
    }

    /// Creates a span of `millis` milliseconds.
    #[inline]
    pub const fn from_millis(millis: u64) -> Self {
        TimeDelta(millis * 1_000)
    }

    /// Creates a span of `secs` seconds.
    #[inline]
    pub const fn from_secs(secs: u64) -> Self {
        TimeDelta(secs * 1_000_000)
    }

    /// Creates a span from a float number of seconds, rounding to the
    /// nearest microsecond. Negative or non-finite inputs become zero.
    #[inline]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return TimeDelta::ZERO;
        }
        TimeDelta((secs * 1e6).round() as u64)
    }

    /// The span in whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The span in seconds, as a float (for ratios and reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether this is the empty span.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The ratio `self / other` as a float.
    ///
    /// This is how synthetic-utilization contributions `C_ij / D_i` are
    /// computed. Returns `f64::INFINITY` when `other` is zero and `self`
    /// is not, and `0.0` when both are zero.
    #[inline]
    pub fn ratio(self, other: TimeDelta) -> f64 {
        if other.0 == 0 {
            if self.0 == 0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            self.0 as f64 / other.0 as f64
        }
    }

    /// Subtraction saturating at zero.
    #[inline]
    pub fn saturating_sub(self, other: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.saturating_sub(other.0))
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, other: TimeDelta) -> Option<TimeDelta> {
        self.0.checked_sub(other.0).map(TimeDelta)
    }

    /// Scales the span by a non-negative float, rounding to the nearest
    /// microsecond. Negative or non-finite factors yield zero.
    #[inline]
    pub fn mul_f64(self, factor: f64) -> TimeDelta {
        if !factor.is_finite() || factor <= 0.0 {
            return TimeDelta::ZERO;
        }
        TimeDelta((self.0 as f64 * factor).round() as u64)
    }

    /// The larger of two spans.
    #[inline]
    pub fn max(self, other: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.max(other.0))
    }

    /// The smaller of two spans.
    #[inline]
    pub fn min(self, other: TimeDelta) -> TimeDelta {
        TimeDelta(self.0.min(other.0))
    }
}

impl Add<TimeDelta> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: TimeDelta) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<TimeDelta> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub<TimeDelta> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = TimeDelta;
    /// The span from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    #[inline]
    fn sub(self, rhs: Time) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TimeDelta {
    #[inline]
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn mul(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 * rhs)
    }
}

impl Div<u64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn div(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 / rhs)
    }
}

impl Sum for TimeDelta {
    fn sum<I: Iterator<Item = TimeDelta>>(iter: I) -> TimeDelta {
        iter.fold(TimeDelta::ZERO, Add::add)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Time::from_secs(1), Time::from_millis(1_000));
        assert_eq!(Time::from_millis(1), Time::from_micros(1_000));
        assert_eq!(TimeDelta::from_secs(2), TimeDelta::from_micros(2_000_000));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = Time::from_millis(5);
        let d = TimeDelta::from_millis(7);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn ratio_computes_utilization_contribution() {
        let c = TimeDelta::from_millis(10);
        let d = TimeDelta::from_secs(1);
        assert!((c.ratio(d) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(TimeDelta::ZERO.ratio(TimeDelta::ZERO), 0.0);
        assert_eq!(
            TimeDelta::from_micros(1).ratio(TimeDelta::ZERO),
            f64::INFINITY
        );
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(
            TimeDelta::from_secs_f64(0.0000015),
            TimeDelta::from_micros(2)
        );
        assert_eq!(TimeDelta::from_secs_f64(-3.0), TimeDelta::ZERO);
        assert_eq!(TimeDelta::from_secs_f64(f64::NAN), TimeDelta::ZERO);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            Time::ZERO.saturating_since(Time::from_secs(1)),
            TimeDelta::ZERO
        );
        assert_eq!(Time::MAX.saturating_add(TimeDelta::from_secs(1)), Time::MAX);
        assert_eq!(
            TimeDelta::from_micros(3).saturating_sub(TimeDelta::from_micros(5)),
            TimeDelta::ZERO
        );
    }

    #[test]
    fn checked_since() {
        let a = Time::from_millis(1);
        let b = Time::from_millis(2);
        assert_eq!(b.checked_since(a), Some(TimeDelta::from_millis(1)));
        assert_eq!(a.checked_since(b), None);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = TimeDelta::from_micros(10);
        assert_eq!(d.mul_f64(1.5), TimeDelta::from_micros(15));
        assert_eq!(d.mul_f64(-1.0), TimeDelta::ZERO);
        assert_eq!(d.mul_f64(f64::INFINITY), TimeDelta::ZERO);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Time::ZERO).is_empty());
        assert!(!format!("{}", TimeDelta::from_micros(5)).is_empty());
        assert!(format!("{}", TimeDelta::from_millis(5)).contains("ms"));
        assert!(format!("{}", TimeDelta::from_secs(5)).contains('s'));
    }

    #[test]
    fn sum_of_deltas() {
        let total: TimeDelta = [1u64, 2, 3]
            .iter()
            .map(|&m| TimeDelta::from_millis(m))
            .sum();
        assert_eq!(total, TimeDelta::from_millis(6));
    }
}
