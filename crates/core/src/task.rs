//! The aperiodic task model of the paper (Section 2).
//!
//! A *task* arrives at some instant, must leave the system within a relative
//! end-to-end deadline `D_i`, and consists of *subtasks* — one unit of work
//! per visit to a *stage* (an independent resource such as a CPU). Subtasks
//! may contain *critical sections* protected by per-stage locks, which is
//! the paper's "non-independent tasks" extension (Section 3.2).
//!
//! Types here are passive data: they describe work, while
//! [`crate::graph::TaskGraph`] describes the precedence structure and
//! `frap-sim` executes it.

use crate::time::TimeDelta;
use std::fmt;

/// Identifies one pipeline stage / independent resource (CPU).
///
/// Stages are dense indices `0..N` into an `N`-stage
/// [`crate::region::FeasibleRegion`] / [`crate::synthetic::SyntheticState`].
///
/// # Examples
///
/// ```
/// use frap_core::task::StageId;
/// let s = StageId::new(2);
/// assert_eq!(s.index(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StageId(usize);

impl StageId {
    /// Creates a stage identifier from its dense index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        StageId(index)
    }

    /// The dense index of this stage.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for StageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stage{}", self.0)
    }
}

/// Identifies a lock (shared resource protected by the priority ceiling
/// protocol) local to one stage.
///
/// Lock indices are dense per stage: lock `k` of stage `j` is unrelated to
/// lock `k` of stage `j'`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LockId(usize);

impl LockId {
    /// Creates a lock identifier from its dense per-stage index.
    #[inline]
    pub const fn new(index: usize) -> Self {
        LockId(index)
    }

    /// The dense per-stage index of this lock.
    #[inline]
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lock{}", self.0)
    }
}

/// Identifies one task instance in the system.
///
/// Issued densely in arrival order by the simulator / admission layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TaskId(u64);

impl TaskId {
    /// Creates a task identifier from its dense sequence number.
    #[inline]
    pub const fn new(seq: u64) -> Self {
        TaskId(seq)
    }

    /// The dense sequence number of this task.
    #[inline]
    pub const fn seq(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

/// A scheduling priority that is *fixed* across all pipeline stages
/// (the paper's definition of a fixed-priority policy for aperiodic tasks).
///
/// Smaller key = more urgent. Under deadline-monotonic assignment the key
/// is the relative end-to-end deadline in microseconds, so ordering by
/// `Priority` orders by urgency. Ties are broken by [`TaskId`] in the
/// simulator, which keeps scheduling deterministic.
///
/// # Examples
///
/// ```
/// use frap_core::task::Priority;
/// assert!(Priority::new(10) > Priority::new(20)); // smaller key is higher priority
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Priority(u64);

impl Priority {
    /// The most urgent expressible priority.
    pub const HIGHEST: Priority = Priority(0);
    /// The least urgent expressible priority.
    pub const LOWEST: Priority = Priority(u64::MAX);

    /// Creates a priority from its key (smaller key = more urgent).
    #[inline]
    pub const fn new(key: u64) -> Self {
        Priority(key)
    }

    /// The raw key (smaller = more urgent).
    #[inline]
    pub const fn key(self) -> u64 {
        self.0
    }
}

impl PartialOrd for Priority {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Priority {
    /// Orders by urgency: `Priority::new(1) > Priority::new(2)`.
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.cmp(&self.0)
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prio({})", self.0)
    }
}

/// Semantic importance used by the load-shedding architecture of Section 5:
/// at overload, admitted work is shed in *reverse* order of importance.
///
/// Higher value = more important. Importance is deliberately decoupled from
/// [`Priority`]: the paper's point is that scheduling priority can follow an
/// optimal policy (deadline-monotonic) while overload decisions follow
/// mission semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Importance(u32);

impl Importance {
    /// Lowest importance — shed first.
    pub const LOWEST: Importance = Importance(0);
    /// Highest importance — shed last (mission-critical).
    pub const CRITICAL: Importance = Importance(u32::MAX);

    /// Creates an importance level (higher = more important).
    #[inline]
    pub const fn new(level: u32) -> Self {
        Importance(level)
    }

    /// The raw level (higher = more important).
    #[inline]
    pub const fn level(self) -> u32 {
        self.0
    }
}

impl fmt::Display for Importance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "imp({})", self.0)
    }
}

/// One contiguous slice of a subtask's execution, optionally inside a
/// critical section.
///
/// A subtask executes its segments in order; a segment with `lock =
/// Some(l)` runs while holding lock `l` of its stage under the priority
/// ceiling protocol.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Segment {
    /// Pure execution time of this segment.
    pub duration: TimeDelta,
    /// Lock held while executing this segment, if any.
    pub lock: Option<LockId>,
}

impl Segment {
    /// A lock-free segment of the given duration.
    #[inline]
    pub const fn compute(duration: TimeDelta) -> Self {
        Segment {
            duration,
            lock: None,
        }
    }

    /// A critical-section segment of the given duration holding `lock`.
    #[inline]
    pub const fn critical(duration: TimeDelta, lock: LockId) -> Self {
        Segment {
            duration,
            lock: Some(lock),
        }
    }
}

/// One unit of work on one stage: the paper's subtask `T_ij` with
/// computation time `C_ij` (here the sum of its segment durations).
///
/// # Examples
///
/// ```
/// use frap_core::task::{Segment, StageId, SubtaskSpec};
/// use frap_core::time::TimeDelta;
///
/// // A 10 ms subtask on stage 1 with a 2 ms critical section in the middle.
/// let sub = SubtaskSpec::with_segments(
///     StageId::new(1),
///     vec![
///         Segment::compute(TimeDelta::from_millis(4)),
///         Segment::critical(TimeDelta::from_millis(2), frap_core::task::LockId::new(0)),
///         Segment::compute(TimeDelta::from_millis(4)),
///     ],
/// );
/// assert_eq!(sub.computation(), TimeDelta::from_millis(10));
/// assert_eq!(sub.max_critical_section(), TimeDelta::from_millis(2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SubtaskSpec {
    /// The stage (independent resource) this subtask executes on.
    pub stage: StageId,
    /// Ordered execution segments; must be non-empty for a runnable subtask.
    pub segments: Vec<Segment>,
}

impl SubtaskSpec {
    /// A plain (lock-free) subtask on `stage` with computation time `c`.
    pub fn new(stage: StageId, c: TimeDelta) -> Self {
        SubtaskSpec {
            stage,
            segments: vec![Segment::compute(c)],
        }
    }

    /// A subtask built from explicit segments (for critical sections).
    pub fn with_segments(stage: StageId, segments: Vec<Segment>) -> Self {
        SubtaskSpec { stage, segments }
    }

    /// Total computation time `C_ij` (sum of segment durations).
    pub fn computation(&self) -> TimeDelta {
        self.segments.iter().map(|s| s.duration).sum()
    }

    /// The longest single critical-section segment, or zero if none.
    pub fn max_critical_section(&self) -> TimeDelta {
        self.segments
            .iter()
            .filter(|s| s.lock.is_some())
            .map(|s| s.duration)
            .fold(TimeDelta::ZERO, TimeDelta::max)
    }

    /// Whether any segment holds a lock.
    pub fn has_critical_section(&self) -> bool {
        self.segments.iter().any(|s| s.lock.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priority_orders_by_urgency() {
        let urgent = Priority::new(100);
        let lax = Priority::new(1_000);
        assert!(urgent > lax);
        assert_eq!(urgent.max(lax), urgent);
        assert!(Priority::HIGHEST > Priority::LOWEST);
    }

    #[test]
    fn importance_orders_naturally() {
        assert!(Importance::CRITICAL > Importance::new(3));
        assert!(Importance::new(3) > Importance::LOWEST);
    }

    #[test]
    fn subtask_computation_sums_segments() {
        let sub = SubtaskSpec::with_segments(
            StageId::new(0),
            vec![
                Segment::compute(TimeDelta::from_millis(1)),
                Segment::critical(TimeDelta::from_millis(2), LockId::new(0)),
                Segment::compute(TimeDelta::from_millis(3)),
            ],
        );
        assert_eq!(sub.computation(), TimeDelta::from_millis(6));
        assert!(sub.has_critical_section());
        assert_eq!(sub.max_critical_section(), TimeDelta::from_millis(2));
    }

    #[test]
    fn plain_subtask_has_no_critical_section() {
        let sub = SubtaskSpec::new(StageId::new(0), TimeDelta::from_millis(5));
        assert!(!sub.has_critical_section());
        assert_eq!(sub.max_critical_section(), TimeDelta::ZERO);
        assert_eq!(sub.computation(), TimeDelta::from_millis(5));
    }

    #[test]
    fn ids_roundtrip() {
        assert_eq!(StageId::new(7).index(), 7);
        assert_eq!(LockId::new(3).index(), 3);
        assert_eq!(TaskId::new(42).seq(), 42);
        assert_eq!(Priority::new(9).key(), 9);
        assert_eq!(Importance::new(5).level(), 5);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(format!("{}", TaskId::new(1)), "T1");
        assert_eq!(format!("{}", StageId::new(2)), "stage2");
        assert!(!format!("{}", Priority::new(3)).is_empty());
        assert!(!format!("{}", LockId::new(0)).is_empty());
        assert!(!format!("{}", Importance::new(1)).is_empty());
    }
}
