//! Task graphs: precedence-constrained sets of subtasks (Section 3.3).
//!
//! The paper's basic model is a *pipeline* — a single chain of subtasks, one
//! per stage. Its Theorem 2 generalizes the feasible region to arbitrary
//! directed acyclic graphs, where the end-to-end delay is the longest path
//! through per-subtask stage delays (sums along chains, `max` across
//! parallel branches, e.g. `L1 + max(L2, L3) + L4` for Figure 3).
//!
//! [`TaskGraph`] stores the DAG in validated, topologically sorted form and
//! provides the longest-path evaluation both for analysis (delay-bound
//! expressions over utilizations) and for the simulator (subtask release on
//! predecessor completion).

use crate::error::GraphError;
use crate::task::{Importance, StageId, SubtaskSpec};
use crate::time::TimeDelta;
use std::collections::BTreeMap;

/// A validated directed acyclic graph of subtasks.
///
/// Construct with [`TaskGraph::chain`] (a pipeline), [`TaskGraph::fork_join`]
/// (Figure 3-style branch/rejoin), or [`TaskGraph::builder`] for arbitrary
/// shapes. Construction validates that the graph is non-empty, edges are in
/// range, and the precedence relation is acyclic.
///
/// The structure is immutable once built, so clones share one refcounted
/// allocation: cloning a [`TaskSpec`] (which workload generators do once
/// per arrival) costs an `Arc` bump instead of a deep copy of four
/// vectors. `Arc` rather than `Rc` keeps specs `Send` for the concurrent
/// admission service.
///
/// # Examples
///
/// ```
/// use frap_core::graph::TaskGraph;
/// use frap_core::task::{StageId, SubtaskSpec};
/// use frap_core::time::TimeDelta;
///
/// // The 4-subtask graph of the paper's Figure 3: 1 -> {2, 3} -> 4.
/// let ms = TimeDelta::from_millis;
/// let mut b = TaskGraph::builder();
/// let t1 = b.add(SubtaskSpec::new(StageId::new(0), ms(1)));
/// let t2 = b.add(SubtaskSpec::new(StageId::new(1), ms(2)));
/// let t3 = b.add(SubtaskSpec::new(StageId::new(2), ms(3)));
/// let t4 = b.add(SubtaskSpec::new(StageId::new(3), ms(4)));
/// b.edge(t1, t2).edge(t1, t3).edge(t2, t4).edge(t3, t4);
/// let g = b.build()?;
///
/// // End-to-end delay expression: L1 + max(L2, L3) + L4.
/// assert_eq!(g.longest_path(&[1.0, 2.0, 3.0, 4.0]), 1.0 + 3.0 + 4.0);
/// # Ok::<(), frap_core::error::GraphError>(())
/// ```
#[derive(Clone)]
pub struct TaskGraph {
    inner: std::sync::Arc<GraphInner>,
}

#[derive(Debug, PartialEq)]
struct GraphInner {
    subtasks: Vec<SubtaskSpec>,
    preds: Vec<Vec<usize>>,
    succs: Vec<Vec<usize>>,
    topo: Vec<usize>,
    /// Per-stage demand `C_ij` summed over subtasks, ascending by stage —
    /// precomputed once so the admission hot path (contributions per
    /// arrival) is a plain walk instead of a merge + sort per request.
    stage_demand: Vec<(StageId, TimeDelta)>,
}

/// Merges per-subtask computation into per-stage totals, ascending by
/// stage. Summed in `TimeDelta` (integer microseconds), exactly as the
/// on-demand merge used to.
fn merged_stage_demand(subtasks: &[SubtaskSpec]) -> Vec<(StageId, TimeDelta)> {
    let mut v: Vec<(StageId, TimeDelta)> = Vec::new();
    for s in subtasks {
        match v.iter_mut().find(|(stage, _)| *stage == s.stage) {
            Some(slot) => slot.1 += s.computation(),
            None => v.push((s.stage, s.computation())),
        }
    }
    v.sort_unstable_by_key(|&(stage, _)| stage);
    v
}

impl PartialEq for TaskGraph {
    fn eq(&self, other: &TaskGraph) -> bool {
        std::sync::Arc::ptr_eq(&self.inner, &other.inner) || *self.inner == *other.inner
    }
}

impl std::fmt::Debug for TaskGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskGraph")
            .field("subtasks", &self.inner.subtasks)
            .field("preds", &self.inner.preds)
            .field("succs", &self.inner.succs)
            .field("topo", &self.inner.topo)
            .finish()
    }
}

impl TaskGraph {
    /// Starts building an arbitrary task graph.
    pub fn builder() -> TaskGraphBuilder {
        TaskGraphBuilder {
            subtasks: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// A pipeline: subtasks executed strictly in order.
    ///
    /// A chain's precedence structure is known up front, so this skips the
    /// general builder (edge list, deduplication, Kahn's algorithm) —
    /// workload generators construct one graph per arrival, making this
    /// the hottest graph constructor by far.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] when `subtasks` is empty and
    /// [`GraphError::EmptySubtask`] when a subtask has no segments.
    pub fn chain(subtasks: Vec<SubtaskSpec>) -> Result<TaskGraph, GraphError> {
        let n = subtasks.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        for (i, s) in subtasks.iter().enumerate() {
            if s.segments.is_empty() {
                return Err(GraphError::EmptySubtask { index: i });
            }
        }
        let preds = (0..n).map(|i| if i == 0 { Vec::new() } else { vec![i - 1] });
        let succs = (0..n).map(|i| if i + 1 < n { vec![i + 1] } else { Vec::new() });
        let stage_demand = merged_stage_demand(&subtasks);
        Ok(TaskGraph {
            inner: std::sync::Arc::new(GraphInner {
                subtasks,
                preds: preds.collect(),
                succs: succs.collect(),
                topo: (0..n).collect(),
                stage_demand,
            }),
        })
    }

    /// A fork-join graph: `head` then all of `branches` in parallel, then
    /// `tail` (the shape of the paper's Figure 3 when `branches.len() == 2`).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::EmptySubtask`] when a subtask has no segments.
    pub fn fork_join(
        head: SubtaskSpec,
        branches: Vec<SubtaskSpec>,
        tail: SubtaskSpec,
    ) -> Result<TaskGraph, GraphError> {
        let mut b = TaskGraph::builder();
        let h = b.add(head);
        let t_ids: Vec<usize> = branches.into_iter().map(|s| b.add(s)).collect();
        let t = b.add(tail);
        if t_ids.is_empty() {
            b.edge(h, t);
        }
        for id in t_ids {
            b.edge(h, id);
            b.edge(id, t);
        }
        b.build()
    }

    /// Number of subtasks.
    pub fn len(&self) -> usize {
        self.inner.subtasks.len()
    }

    /// Whether the graph has no subtasks (never true for a built graph;
    /// provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.inner.subtasks.is_empty()
    }

    /// The subtask at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn subtask(&self, index: usize) -> &SubtaskSpec {
        &self.inner.subtasks[index]
    }

    /// Iterates over all subtasks in insertion order.
    pub fn subtasks(&self) -> impl Iterator<Item = &SubtaskSpec> {
        self.inner.subtasks.iter()
    }

    /// Predecessors of subtask `index`.
    pub fn preds(&self, index: usize) -> &[usize] {
        &self.inner.preds[index]
    }

    /// Successors of subtask `index`.
    pub fn succs(&self, index: usize) -> &[usize] {
        &self.inner.succs[index]
    }

    /// Subtask indices with no predecessors (released at task arrival).
    pub fn sources(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.inner.preds[i].is_empty())
            .collect()
    }

    /// Subtask indices with no successors (task departs when all finish).
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.inner.succs[i].is_empty())
            .collect()
    }

    /// A topological order of subtask indices.
    pub fn topological_order(&self) -> &[usize] {
        &self.inner.topo
    }

    /// Whether the graph is a single chain (a pipeline).
    pub fn is_chain(&self) -> bool {
        self.sources().len() == 1
            && (0..self.len())
                .all(|i| self.inner.succs[i].len() <= 1 && self.inner.preds[i].len() <= 1)
    }

    /// The distinct stages used by this graph, in ascending order.
    pub fn stages_used(&self) -> Vec<StageId> {
        let mut v: Vec<StageId> = self.inner.subtasks.iter().map(|s| s.stage).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total computation time demanded from each stage (`C_ij` summed over
    /// all subtasks of this task on stage `j`).
    pub fn stage_demand(&self) -> BTreeMap<StageId, TimeDelta> {
        self.inner.stage_demand.iter().copied().collect()
    }

    /// [`TaskGraph::stage_demand`] without building a map: the per-stage
    /// totals, ascending by stage, as precomputed at construction.
    pub fn stage_demands(&self) -> &[(StageId, TimeDelta)] {
        &self.inner.stage_demand
    }

    /// Total computation time over all subtasks.
    pub fn total_computation(&self) -> TimeDelta {
        self.inner.subtasks.iter().map(|s| s.computation()).sum()
    }

    /// Evaluates the end-to-end delay expression `d(L_1, …, L_M)` — the
    /// longest path through the DAG — for the given per-subtask delays.
    ///
    /// This is the paper's `d(·)` of Theorem 2: delays add along precedence
    /// chains and combine by `max` across parallel branches.
    ///
    /// # Panics
    ///
    /// Panics if `delays.len() != self.len()`.
    pub fn longest_path(&self, delays: &[f64]) -> f64 {
        assert_eq!(
            delays.len(),
            self.len(),
            "one delay per subtask is required"
        );
        let mut finish = vec![0.0f64; self.len()];
        for &i in &self.inner.topo {
            let start = self.inner.preds[i]
                .iter()
                .map(|&p| finish[p])
                .fold(0.0f64, f64::max);
            finish[i] = start + delays[i];
        }
        finish.iter().copied().fold(0.0, f64::max)
    }

    /// Returns a copy of the graph with every subtask's stage rewritten by
    /// `f` — the tool for *partitioned* multi-server stages: a logical
    /// stage backed by `m` replicas becomes `m` physical stages, and each
    /// task is bound to one replica at admission time (the analysis then
    /// applies per replica exactly as for any other stage).
    pub fn remap_stages(&self, f: impl Fn(StageId) -> StageId) -> TaskGraph {
        let mut inner = GraphInner {
            subtasks: self.inner.subtasks.clone(),
            preds: self.inner.preds.clone(),
            succs: self.inner.succs.clone(),
            topo: self.inner.topo.clone(),
            stage_demand: Vec::new(),
        };
        for sub in &mut inner.subtasks {
            sub.stage = f(sub.stage);
        }
        inner.stage_demand = merged_stage_demand(&inner.subtasks);
        TaskGraph {
            inner: std::sync::Arc::new(inner),
        }
    }

    /// Like [`TaskGraph::longest_path`] but returns the subtask indices of
    /// one critical (longest) path, from a source to a sink.
    ///
    /// # Panics
    ///
    /// Panics if `delays.len() != self.len()`.
    pub fn critical_path(&self, delays: &[f64]) -> Vec<usize> {
        assert_eq!(delays.len(), self.len());
        let mut finish = vec![0.0f64; self.len()];
        let mut via: Vec<Option<usize>> = vec![None; self.len()];
        for &i in &self.inner.topo {
            let mut start = 0.0;
            for &p in &self.inner.preds[i] {
                if finish[p] > start {
                    start = finish[p];
                    via[i] = Some(p);
                }
            }
            finish[i] = start + delays[i];
        }
        let mut end = 0;
        for i in 0..self.len() {
            if finish[i] > finish[end] {
                end = i;
            }
        }
        let mut path = vec![end];
        while let Some(p) = via[*path.last().expect("path is non-empty")] {
            path.push(p);
        }
        path.reverse();
        path
    }
}

impl std::fmt::Display for TaskGraph {
    /// Renders the precedence structure compactly, e.g. a chain as
    /// `s0 -> s1 -> s2` and a fork-join as `s0 -> {s1 || s2} -> s3`
    /// (general DAGs fall back to an explicit edge list).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_chain() {
            let mut first = true;
            let mut cur = self.sources()[0];
            loop {
                if !first {
                    write!(f, " -> ")?;
                }
                write!(f, "s{}", self.subtask(cur).stage.index())?;
                first = false;
                match self.succs(cur).first() {
                    Some(&next) => cur = next,
                    None => return Ok(()),
                }
            }
        }
        // Fork-join shape: one source, one sink, all middles independent.
        let sources = self.sources();
        let sinks = self.sinks();
        if sources.len() == 1 && sinks.len() == 1 && self.len() > 2 {
            let (head, tail) = (sources[0], sinks[0]);
            let middles: Vec<usize> = (0..self.len())
                .filter(|&i| i != head && i != tail)
                .collect();
            let is_fork_join = middles
                .iter()
                .all(|&m| self.preds(m) == [head] && self.succs(m) == [tail])
                && self.succs(head).len() == middles.len()
                && self.preds(tail).len() == middles.len();
            if is_fork_join {
                write!(f, "s{} -> {{", self.subtask(head).stage.index())?;
                for (i, &m) in middles.iter().enumerate() {
                    if i > 0 {
                        write!(f, " || ")?;
                    }
                    write!(f, "s{}", self.subtask(m).stage.index())?;
                }
                return write!(f, "}} -> s{}", self.subtask(tail).stage.index());
            }
        }
        // General DAG: explicit edges.
        write!(f, "dag[{} nodes:", self.len())?;
        for i in 0..self.len() {
            for &s in self.succs(i) {
                write!(f, " {}->{}", i, s)?;
            }
        }
        write!(f, "]")
    }
}

/// Incremental builder for [`TaskGraph`]; see [`TaskGraph::builder`].
#[derive(Debug, Clone, Default)]
pub struct TaskGraphBuilder {
    subtasks: Vec<SubtaskSpec>,
    edges: Vec<(usize, usize)>,
}

impl TaskGraphBuilder {
    /// Adds a subtask and returns its index.
    pub fn add(&mut self, subtask: SubtaskSpec) -> usize {
        self.subtasks.push(subtask);
        self.subtasks.len() - 1
    }

    /// Adds a precedence edge: `from` must finish before `to` is released.
    pub fn edge(&mut self, from: usize, to: usize) -> &mut Self {
        self.edges.push((from, to));
        self
    }

    /// Validates and builds the graph.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph is empty, an edge is out of range or a
    /// self-loop, a subtask has no segments, or the relation is cyclic.
    pub fn build(&mut self) -> Result<TaskGraph, GraphError> {
        let n = self.subtasks.len();
        if n == 0 {
            return Err(GraphError::Empty);
        }
        for (i, s) in self.subtasks.iter().enumerate() {
            if s.segments.is_empty() {
                return Err(GraphError::EmptySubtask { index: i });
            }
        }
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(from, to) in &self.edges {
            if from >= n {
                return Err(GraphError::NodeOutOfRange {
                    index: from,
                    len: n,
                });
            }
            if to >= n {
                return Err(GraphError::NodeOutOfRange { index: to, len: n });
            }
            if from == to {
                return Err(GraphError::SelfLoop { index: from });
            }
            // Duplicate edges are harmless but would skew in-degree counting;
            // deduplicate here.
            if !succs[from].contains(&to) {
                succs[from].push(to);
                preds[to].push(from);
            }
        }

        // Kahn's algorithm for a deterministic topological order.
        let mut indeg: Vec<usize> = preds.iter().map(Vec::len).collect();
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        ready.sort_unstable();
        let mut topo = Vec::with_capacity(n);
        let mut cursor = 0;
        while cursor < ready.len() {
            let i = ready[cursor];
            cursor += 1;
            topo.push(i);
            for &s in &succs[i] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        if topo.len() != n {
            return Err(GraphError::Cycle);
        }

        let subtasks = std::mem::take(&mut self.subtasks);
        let stage_demand = merged_stage_demand(&subtasks);
        Ok(TaskGraph {
            inner: std::sync::Arc::new(GraphInner {
                subtasks,
                preds,
                succs,
                topo,
                stage_demand,
            }),
        })
    }
}

/// A complete task description: end-to-end deadline, semantic importance,
/// and the subtask graph.
///
/// This is the unit the admission controller reasons about and the
/// simulator executes.
///
/// # Examples
///
/// ```
/// use frap_core::graph::TaskSpec;
/// use frap_core::time::TimeDelta;
///
/// // A two-stage pipeline task: 10 ms then 20 ms, 1 s end-to-end deadline.
/// let t = TaskSpec::pipeline(
///     TimeDelta::from_secs(1),
///     &[TimeDelta::from_millis(10), TimeDelta::from_millis(20)],
/// )?;
/// assert_eq!(t.total_computation(), TimeDelta::from_millis(30));
/// // Synthetic-utilization contribution at stage 0: C/D = 0.01.
/// let c: Vec<_> = t.contributions().collect();
/// assert!((c[0].1 - 0.01).abs() < 1e-12);
/// # Ok::<(), frap_core::error::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TaskSpec {
    /// Relative end-to-end deadline `D_i`.
    pub deadline: TimeDelta,
    /// Semantic importance (for overload shedding; not scheduling priority).
    pub importance: Importance,
    /// The precedence-constrained subtask structure.
    pub graph: TaskGraph,
}

impl TaskSpec {
    /// Creates a task from a graph with default (lowest) importance.
    pub fn new(deadline: TimeDelta, graph: TaskGraph) -> Self {
        TaskSpec {
            deadline,
            importance: Importance::LOWEST,
            graph,
        }
    }

    /// Convenience constructor for a pipeline task whose subtask `j` runs
    /// on stage `j` with computation time `computations[j]`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] when `computations` is empty.
    pub fn pipeline(
        deadline: TimeDelta,
        computations: &[TimeDelta],
    ) -> Result<TaskSpec, GraphError> {
        let subtasks = computations
            .iter()
            .enumerate()
            .map(|(j, &c)| SubtaskSpec::new(StageId::new(j), c))
            .collect();
        Ok(TaskSpec::new(deadline, TaskGraph::chain(subtasks)?))
    }

    /// Sets the semantic importance (builder style).
    pub fn with_importance(mut self, importance: Importance) -> Self {
        self.importance = importance;
        self
    }

    /// Total computation time over all subtasks.
    pub fn total_computation(&self) -> TimeDelta {
        self.graph.total_computation()
    }

    /// The task's synthetic-utilization contribution `C_ij / D_i` at each
    /// stage it uses, in ascending stage order.
    pub fn contributions(&self) -> impl Iterator<Item = (StageId, f64)> + '_ {
        let deadline = self.deadline;
        self.graph
            .stage_demands()
            .iter()
            .map(move |&(stage, c)| (stage, c.ratio(deadline)))
    }

    /// Appends the contributions of [`Self::contributions`] to `out`
    /// without allocating.
    ///
    /// Produces bit-identical values in the same ascending stage order:
    /// per-stage demand is summed in integer microseconds (stashed in the
    /// `f64` slot via its bit pattern, so u64 overflow semantics match
    /// [`TimeDelta`] addition exactly) and divided by the deadline once at
    /// the end, just as `stage_demand` + `ratio` would.
    pub fn contributions_into(&self, out: &mut Vec<(StageId, f64)>) {
        out.extend(
            self.graph
                .stage_demands()
                .iter()
                .map(|&(stage, c)| (stage, c.ratio(self.deadline))),
        );
    }

    /// The contribution `C_ij / D_i` at one stage (zero if unused).
    pub fn contribution_at(&self, stage: StageId) -> f64 {
        let demands = self.graph.stage_demands();
        match demands.binary_search_by_key(&stage, |&(s, _)| s) {
            Ok(i) => demands[i].1.ratio(self.deadline),
            Err(_) => 0.0,
        }
    }

    /// Task resolution: end-to-end deadline divided by total computation
    /// time (Section 4.2). High resolution means many small tasks.
    pub fn resolution(&self) -> f64 {
        self.deadline.ratio(self.total_computation())
    }

    /// Returns a copy with every subtask's stage rewritten by `f`; see
    /// [`TaskGraph::remap_stages`].
    pub fn remap_stages(&self, f: impl Fn(StageId) -> StageId) -> TaskSpec {
        TaskSpec {
            deadline: self.deadline,
            importance: self.importance,
            graph: self.graph.remap_stages(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::{LockId, Segment};

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn sub(stage: usize, c: u64) -> SubtaskSpec {
        SubtaskSpec::new(StageId::new(stage), ms(c))
    }

    #[test]
    fn chain_builds_pipeline() {
        let g = TaskGraph::chain(vec![sub(0, 1), sub(1, 2), sub(2, 3)]).unwrap();
        assert_eq!(g.len(), 3);
        assert!(g.is_chain());
        assert_eq!(g.sources(), vec![0]);
        assert_eq!(g.sinks(), vec![2]);
        assert_eq!(g.topological_order(), &[0, 1, 2]);
        assert_eq!(g.total_computation(), ms(6));
    }

    #[test]
    fn empty_chain_rejected() {
        assert_eq!(TaskGraph::chain(vec![]).unwrap_err(), GraphError::Empty);
    }

    #[test]
    fn cycle_detected() {
        let mut b = TaskGraph::builder();
        let a = b.add(sub(0, 1));
        let c = b.add(sub(1, 1));
        b.edge(a, c).edge(c, a);
        assert_eq!(b.build().unwrap_err(), GraphError::Cycle);
    }

    #[test]
    fn self_loop_rejected() {
        let mut b = TaskGraph::builder();
        let a = b.add(sub(0, 1));
        b.edge(a, a);
        assert_eq!(b.build().unwrap_err(), GraphError::SelfLoop { index: 0 });
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let mut b = TaskGraph::builder();
        let a = b.add(sub(0, 1));
        b.edge(a, 7);
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::NodeOutOfRange { index: 7, len: 1 }
        );
    }

    #[test]
    fn empty_subtask_rejected() {
        let mut b = TaskGraph::builder();
        b.add(SubtaskSpec::with_segments(StageId::new(0), vec![]));
        assert_eq!(
            b.build().unwrap_err(),
            GraphError::EmptySubtask { index: 0 }
        );
    }

    #[test]
    fn duplicate_edges_deduplicated() {
        let mut b = TaskGraph::builder();
        let a = b.add(sub(0, 1));
        let c = b.add(sub(1, 1));
        b.edge(a, c).edge(a, c).edge(a, c);
        let g = b.build().unwrap();
        assert_eq!(g.succs(a), &[c]);
        assert_eq!(g.preds(c), &[a]);
    }

    #[test]
    fn figure3_longest_path() {
        // 1 -> {2, 3} -> 4, as in the paper's Figure 3.
        let g = TaskGraph::fork_join(sub(0, 1), vec![sub(1, 1), sub(2, 1)], sub(3, 1)).unwrap();
        assert!(!g.is_chain());
        // d(L1..L4) = L1 + max(L2, L3) + L4
        assert_eq!(g.longest_path(&[1.0, 5.0, 2.0, 3.0]), 9.0);
        assert_eq!(g.longest_path(&[1.0, 2.0, 5.0, 3.0]), 9.0);
        assert_eq!(g.critical_path(&[1.0, 5.0, 2.0, 3.0]), vec![0, 1, 3]);
    }

    #[test]
    fn fork_join_with_no_branches_is_chain() {
        let g = TaskGraph::fork_join(sub(0, 1), vec![], sub(1, 1)).unwrap();
        assert!(g.is_chain());
        assert_eq!(g.longest_path(&[2.0, 3.0]), 5.0);
    }

    #[test]
    fn longest_path_on_chain_is_sum() {
        let g = TaskGraph::chain(vec![sub(0, 1), sub(1, 1), sub(2, 1)]).unwrap();
        assert_eq!(g.longest_path(&[1.5, 2.5, 3.0]), 7.0);
        assert_eq!(g.critical_path(&[1.5, 2.5, 3.0]), vec![0, 1, 2]);
    }

    #[test]
    fn stage_demand_merges_repeated_stages() {
        // Subtasks 0 and 2 share stage 0 (the paper notes Theorem 2 covers
        // this: their utilizations coincide).
        let g = TaskGraph::chain(vec![sub(0, 1), sub(1, 2), sub(0, 3)]).unwrap();
        let demand = g.stage_demand();
        assert_eq!(demand[&StageId::new(0)], ms(4));
        assert_eq!(demand[&StageId::new(1)], ms(2));
        assert_eq!(g.stages_used(), vec![StageId::new(0), StageId::new(1)]);
    }

    #[test]
    fn task_spec_contributions() {
        let t = TaskSpec::pipeline(TimeDelta::from_secs(1), &[ms(10), ms(20)]).unwrap();
        assert!((t.contribution_at(StageId::new(0)) - 0.01).abs() < 1e-12);
        assert!((t.contribution_at(StageId::new(1)) - 0.02).abs() < 1e-12);
        assert_eq!(t.contribution_at(StageId::new(9)), 0.0);
        assert!((t.resolution() - 1000.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn task_spec_importance_builder() {
        let t = TaskSpec::pipeline(ms(100), &[ms(1)])
            .unwrap()
            .with_importance(Importance::CRITICAL);
        assert_eq!(t.importance, Importance::CRITICAL);
    }

    #[test]
    fn remap_stages_rewrites_and_preserves_structure() {
        let g = TaskGraph::chain(vec![sub(0, 1), sub(1, 2), sub(0, 3)]).unwrap();
        // Send logical stage 0 to physical replica stage 5.
        let remapped = g.remap_stages(|s| {
            if s == StageId::new(0) {
                StageId::new(5)
            } else {
                s
            }
        });
        assert_eq!(remapped.subtask(0).stage, StageId::new(5));
        assert_eq!(remapped.subtask(1).stage, StageId::new(1));
        assert_eq!(remapped.subtask(2).stage, StageId::new(5));
        assert_eq!(remapped.total_computation(), g.total_computation());
        assert_eq!(remapped.topological_order(), g.topological_order());

        let spec = TaskSpec::pipeline(ms(100), &[ms(1), ms(2)]).unwrap();
        let rs = spec.remap_stages(|s| StageId::new(s.index() + 10));
        assert!((rs.contribution_at(StageId::new(10)) - 0.01).abs() < 1e-12);
        assert_eq!(rs.contribution_at(StageId::new(0)), 0.0);
        assert_eq!(rs.deadline, spec.deadline);
    }

    #[test]
    fn display_chain_and_fork_join() {
        let chain = TaskGraph::chain(vec![sub(0, 1), sub(1, 1), sub(2, 1)]).unwrap();
        assert_eq!(format!("{chain}"), "s0 -> s1 -> s2");
        let fj = TaskGraph::fork_join(sub(0, 1), vec![sub(1, 1), sub(2, 1)], sub(3, 1)).unwrap();
        assert_eq!(format!("{fj}"), "s0 -> {s1 || s2} -> s3");
        // A general DAG (diamond with an extra shortcut) falls back to edges.
        let mut b = TaskGraph::builder();
        let a = b.add(sub(0, 1));
        let c = b.add(sub(1, 1));
        let d = b.add(sub(2, 1));
        b.edge(a, c).edge(a, d).edge(c, d);
        let g = b.build().unwrap();
        let s = format!("{g}");
        assert!(s.starts_with("dag["), "got {s}");
        assert!(s.contains("0->1"));
    }

    #[test]
    fn graph_with_critical_sections() {
        let s = SubtaskSpec::with_segments(
            StageId::new(0),
            vec![
                Segment::compute(ms(1)),
                Segment::critical(ms(2), LockId::new(0)),
            ],
        );
        let g = TaskGraph::chain(vec![s]).unwrap();
        assert_eq!(g.total_computation(), ms(3));
        assert_eq!(g.subtask(0).max_critical_section(), ms(2));
    }
}
