//! The urgency-inversion parameter `α` (Section 2).
//!
//! A fixed-priority policy may assign a less urgent task (longer relative
//! deadline) a priority equal to or higher than a more urgent one — an
//! *urgency inversion*. The parameter
//!
//! ```text
//! α = min_{T_hi ⪰ T_lo}  D_lo / D_hi
//! ```
//!
//! (minimum relative-deadline ratio over all priority-ordered pairs, capped
//! at 1) quantifies the worst inversion. Deadline-monotonic assignment has
//! no inversions, so `α = 1`; random assignment degrades to
//! `α = D_least / D_most`. The feasible-region budget scales linearly with
//! `α` (Equation 2), which is what the DM-vs-random ablation measures.

use crate::error::RegionError;
use crate::task::Priority;
use crate::time::TimeDelta;

/// A validated urgency-inversion parameter in `(0, 1]`.
///
/// # Examples
///
/// ```
/// use frap_core::alpha::Alpha;
/// let a = Alpha::new(0.5)?;
/// assert_eq!(a.value(), 0.5);
/// assert_eq!(Alpha::DEADLINE_MONOTONIC.value(), 1.0);
/// # Ok::<(), frap_core::error::RegionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Alpha(f64);

impl Alpha {
    /// `α = 1`: no urgency inversion (deadline-monotonic scheduling).
    pub const DEADLINE_MONOTONIC: Alpha = Alpha(1.0);

    /// Creates an `Alpha`, validating `0 < value ≤ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`RegionError::InvalidAlpha`] for values outside `(0, 1]`
    /// or non-finite values.
    pub fn new(value: f64) -> Result<Alpha, RegionError> {
        if !value.is_finite() || value <= 0.0 || value > 1.0 {
            return Err(RegionError::InvalidAlpha { value });
        }
        Ok(Alpha(value))
    }

    /// The raw parameter value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// The `α` of a policy that assigns priorities with no relation to
    /// deadlines, over a task population whose relative deadlines span
    /// `[d_least, d_most]`: `α = d_least / d_most` (Section 2).
    ///
    /// # Errors
    ///
    /// Returns [`RegionError::InvalidAlpha`] if either deadline is zero.
    pub fn for_random_priorities(
        d_least: TimeDelta,
        d_most: TimeDelta,
    ) -> Result<Alpha, RegionError> {
        let ratio = d_least.ratio(d_most);
        Alpha::new(ratio.min(1.0))
    }
}

impl Default for Alpha {
    /// Defaults to [`Alpha::DEADLINE_MONOTONIC`].
    fn default() -> Self {
        Alpha::DEADLINE_MONOTONIC
    }
}

impl std::fmt::Display for Alpha {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "alpha={}", self.0)
    }
}

/// Computes `α` exactly for a concrete priority assignment.
///
/// `tasks` lists `(priority, relative_deadline)` pairs. For every ordered
/// pair where the first task's priority is **equal to or higher** than the
/// second's, the ratio `D_lo / D_hi` is a candidate; `α` is the minimum
/// candidate, capped at 1. An empty or singleton input has no pairs and
/// yields `α = 1`.
///
/// Runs in `O(n log n)`.
///
/// # Examples
///
/// ```
/// use frap_core::alpha::alpha_for_assignment;
/// use frap_core::task::Priority;
/// use frap_core::time::TimeDelta;
///
/// // Deadline-monotonic: priority key = deadline, so no inversion.
/// let dm = [
///     (Priority::new(100), TimeDelta::from_micros(100)),
///     (Priority::new(400), TimeDelta::from_micros(400)),
/// ];
/// assert_eq!(alpha_for_assignment(&dm).value(), 1.0);
///
/// // Inverted: the lax task (D = 400) outranks the urgent one (D = 100).
/// let inv = [
///     (Priority::new(1), TimeDelta::from_micros(400)),
///     (Priority::new(2), TimeDelta::from_micros(100)),
/// ];
/// assert_eq!(alpha_for_assignment(&inv).value(), 0.25);
/// ```
pub fn alpha_for_assignment(tasks: &[(Priority, TimeDelta)]) -> Alpha {
    if tasks.len() < 2 {
        return Alpha::DEADLINE_MONOTONIC;
    }
    // Sort by priority, most urgent first; group equal priorities together.
    let mut sorted: Vec<(Priority, TimeDelta)> = tasks.to_vec();
    sorted.sort_by_key(|&(priority, _)| std::cmp::Reverse(priority));

    let mut alpha = 1.0f64;
    // Largest deadline seen among tasks of higher-or-equal priority.
    let mut max_hi = TimeDelta::ZERO;
    let mut i = 0;
    while i < sorted.len() {
        // The group of equal-priority tasks starting at i.
        let mut j = i;
        let mut group_max = TimeDelta::ZERO;
        while j < sorted.len() && sorted[j].0 == sorted[i].0 {
            group_max = group_max.max(sorted[j].1);
            j += 1;
        }
        // Equal-priority tasks count as "equal or higher" for each other,
        // so the hi-candidate pool for this group includes the group itself.
        let pool_max = max_hi.max(group_max);
        if !pool_max.is_zero() {
            for t in &sorted[i..j] {
                let ratio = t.1.ratio(pool_max);
                if ratio < alpha {
                    alpha = ratio;
                }
            }
        }
        max_hi = pool_max;
        i = j;
    }
    Alpha::new(alpha.clamp(f64::MIN_POSITIVE, 1.0)).unwrap_or(Alpha::DEADLINE_MONOTONIC)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn us(v: u64) -> TimeDelta {
        TimeDelta::from_micros(v)
    }

    #[test]
    fn validation() {
        assert!(Alpha::new(0.5).is_ok());
        assert!(Alpha::new(1.0).is_ok());
        assert!(Alpha::new(0.0).is_err());
        assert!(Alpha::new(-0.1).is_err());
        assert!(Alpha::new(1.1).is_err());
        assert!(Alpha::new(f64::NAN).is_err());
        assert!(Alpha::new(f64::INFINITY).is_err());
    }

    #[test]
    fn default_is_dm() {
        assert_eq!(Alpha::default(), Alpha::DEADLINE_MONOTONIC);
    }

    #[test]
    fn random_priorities_ratio() {
        let a = Alpha::for_random_priorities(us(100), us(400)).unwrap();
        assert!((a.value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn dm_assignment_has_alpha_one() {
        let tasks: Vec<(Priority, TimeDelta)> = (1..=10)
            .map(|i| (Priority::new(i * 100), us(i * 100)))
            .collect();
        assert_eq!(alpha_for_assignment(&tasks).value(), 1.0);
    }

    #[test]
    fn singleton_and_empty_have_alpha_one() {
        assert_eq!(alpha_for_assignment(&[]).value(), 1.0);
        assert_eq!(
            alpha_for_assignment(&[(Priority::new(1), us(5))]).value(),
            1.0
        );
    }

    #[test]
    fn full_inversion() {
        // Most urgent deadline gets the lowest priority.
        let tasks = [
            (Priority::new(1), us(1000)), // lax but top priority
            (Priority::new(2), us(500)),
            (Priority::new(3), us(100)), // urgent but bottom priority
        ];
        // Worst pair: hi = D 1000, lo = D 100 → 0.1.
        assert!((alpha_for_assignment(&tasks).value() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn equal_priorities_count_both_ways() {
        let tasks = [(Priority::new(5), us(200)), (Priority::new(5), us(800))];
        // Same priority: pair (hi=800, lo=200) → 0.25.
        assert!((alpha_for_assignment(&tasks).value() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn inversion_only_counts_higher_or_equal_priority() {
        // The lax task has *lower* priority than the urgent one: that pair
        // is DM-consistent and must not reduce alpha.
        let tasks = [
            (Priority::new(1), us(100)),  // urgent, high priority
            (Priority::new(9), us(1000)), // lax, low priority
        ];
        assert_eq!(alpha_for_assignment(&tasks).value(), 1.0);
    }

    #[test]
    fn alpha_matches_brute_force() {
        // Cross-check the grouped scan against the O(n²) definition.
        let tasks = [
            (Priority::new(3), us(700)),
            (Priority::new(1), us(300)),
            (Priority::new(3), us(150)),
            (Priority::new(2), us(900)),
            (Priority::new(4), us(50)),
        ];
        let mut brute = 1.0f64;
        for hi in &tasks {
            for lo in &tasks {
                if std::ptr::eq(hi, lo) {
                    continue;
                }
                if hi.0 >= lo.0 {
                    brute = brute.min(lo.1.ratio(hi.1));
                }
            }
        }
        let fast = alpha_for_assignment(&tasks).value();
        assert!((fast - brute).abs() < 1e-12, "fast={fast} brute={brute}");
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Alpha::DEADLINE_MONOTONIC).is_empty());
    }
}
