//! Leaseable per-stage utilization budgets for distributed admission.
//!
//! The paper's region test `Σ_j f(U_j) ≤ α(1 − Σβ)` is **nonlinear** in
//! the utilization vector, and `f` is superadditive on `[0, 1)` — so the
//! region's *budget* cannot be split among gateway nodes in `f`-space:
//! per-node shares of the right-hand side would let the aggregate vector
//! leave the region. What *can* be split is utilization itself, which is
//! additive across nodes. This module therefore fixes a point
//! `(Û_1, …, Û_N)` **inside** the feasible region — a per-stage cap
//! vector — and treats each stage's cap as a one-dimensional budget that
//! a coordinator may lease out in slices. Because `f` is monotone, any
//! spending pattern with `Σ_nodes U_j^{(n)} ≤ Û_j` for every stage keeps
//! the true aggregate inside the region:
//!
//! ```text
//! Σ_j f(Σ_n U_j^{(n)})  ≤  Σ_j f(Û_j)  ≤  α(1 − Σβ)
//! ```
//!
//! The cap vector is itself a [`RegionTest`] ([`StageCaps`]), so a node
//! spends its lease through the exact same
//! [`tentative_feasible`](crate::admission::tentative_feasible) fast
//! path the single-node controllers use — only the region object differs.
//!
//! # Integer budget units
//!
//! Lease accounting must satisfy an *exact* conservation invariant
//! (`Σ leased + unleased = total`, always), which floats cannot promise
//! under arbitrary grant/return interleavings. Budgets therefore travel
//! as integer **units** of 10⁻⁹ utilization ([`UNIT_SCALE`]): one unit
//! is one nano-Erlang of stage utilization. Conversions round in the
//! safe direction — budgets round *down*
//! ([`units_from_utilization`]), per-task demands round *up*
//! ([`demand_units`]) — so unit-space admission is never less
//! conservative than the real-valued test it mirrors.
//!
//! # Why leases carry region parameters
//!
//! A lease is only meaningful against the region it was cut from: α
//! depends on the priority assignment (see `alpha_for_assignment` and
//! the priority-order sensitivity results in the multi-stage
//! fixed-priority literature), and β on the blocking terms. Nodes and
//! coordinator must agree on *all* of it, so leases are tagged with a
//! [`params_fingerprint`] of the full parameter set, not just a budget
//! scalar; a mismatch means a misconfigured node whose grants must be
//! refused.

use crate::region::{FeasibleRegion, RegionTest};

/// Budget units per 1.0 of utilization: one unit is 10⁻⁹ Erlang.
pub const UNIT_SCALE: u64 = 1_000_000_000;

/// Slack absorbed by [`StageCaps::feasible`]: float summation across
/// shards can read a fully-charged stage a few ulps above its cap, and
/// such round-off must not read as a safety violation. The slack is far
/// below one budget unit, so unit-valued (integral) comparisons remain
/// exact.
const CAP_EPSILON: f64 = 1e-9;

/// Converts a utilization into whole budget units, rounding **down** —
/// a budget never promises capacity the region does not contain.
pub fn units_from_utilization(utilization: f64) -> u64 {
    if utilization.is_nan() || utilization <= 0.0 {
        return 0;
    }
    (utilization * UNIT_SCALE as f64).floor() as u64
}

/// The utilization a unit count represents (exact for any realistic
/// count: unit totals fit far below 2⁵³).
pub fn utilization_from_units(units: u64) -> f64 {
    units as f64 / UNIT_SCALE as f64
}

/// A task's per-stage demand in budget units: `⌈C·SCALE / D⌉`, rounding
/// **up** so spending a lease in unit space is at least as conservative
/// as charging the real-valued contribution `C/D`.
///
/// A zero deadline yields `u64::MAX` (inadmissible), mirroring the
/// region test's rejection of undefined contributions.
pub fn demand_units(computation_us: u64, deadline_us: u64) -> u64 {
    if deadline_us == 0 {
        return u64::MAX;
    }
    let num = computation_us as u128 * UNIT_SCALE as u128;
    let den = deadline_us as u128;
    num.div_ceil(den).min(u64::MAX as u128) as u64
}

/// A box-shaped feasible region: per-stage utilization caps
/// `U_j ≤ cap_j`. This is the region a lease-holding node admits
/// against — its caps are the node's currently-leased amounts — and the
/// region a cluster *as a whole* enforces when its caps are a point
/// inside a [`FeasibleRegion`] (see [`StageCaps::inscribed`]).
#[derive(Debug, Clone, PartialEq)]
pub struct StageCaps {
    caps: Vec<f64>,
}

impl StageCaps {
    /// Caps from explicit per-stage bounds.
    ///
    /// # Panics
    ///
    /// Panics if any cap is negative or NaN.
    pub fn new(caps: Vec<f64>) -> StageCaps {
        for &c in &caps {
            assert!(c >= 0.0 && !c.is_nan(), "stage cap must be ≥ 0, got {c}");
        }
        StageCaps { caps }
    }

    /// The largest symmetric cap vector inscribed in `region`: every
    /// stage capped at `f⁻¹(budget / N)`, the region's equal-utilization
    /// corner. By monotonicity of `f`, any spending within these caps is
    /// feasible for `region` itself.
    pub fn inscribed(region: &FeasibleRegion) -> StageCaps {
        let cap = region.max_equal_utilization();
        StageCaps {
            caps: vec![cap; region.stages()],
        }
    }

    /// Caps from whole budget units (exact: unit counts are integral
    /// `f64` values well below 2⁵³).
    pub fn from_units(units: &[u64]) -> StageCaps {
        StageCaps {
            caps: units.iter().map(|&u| u as f64).collect(),
        }
    }

    /// The per-stage caps.
    pub fn caps(&self) -> &[f64] {
        &self.caps
    }

    /// The caps as whole budget units, rounded down.
    pub fn units(&self) -> Vec<u64> {
        self.caps
            .iter()
            .map(|&c| units_from_utilization(c))
            .collect()
    }
}

impl RegionTest for StageCaps {
    fn stages(&self) -> usize {
        self.caps.len()
    }

    /// Pointwise `U_j ≤ cap_j` — monotone, as [`RegionTest`] requires.
    fn feasible(&self, utilizations: &[f64]) -> bool {
        debug_assert_eq!(utilizations.len(), self.caps.len());
        utilizations
            .iter()
            .zip(&self.caps)
            .all(|(&u, &cap)| u <= cap + CAP_EPSILON)
    }
}

/// A collision-resistant-enough digest of everything two cluster
/// members must agree on before trading leases: stage count, α, the
/// blocking vector, and the cap vector itself. FNV-1a over the exact
/// bit patterns — any parameter drift (a different priority assignment
/// changing α, a re-tuned cap point) changes the fingerprint.
pub fn params_fingerprint(region: &FeasibleRegion, caps: &StageCaps) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(region.stages() as u64);
    h.write_u64(region.alpha().value().to_bits());
    for &beta in region.blocking() {
        h.write_u64(beta.to_bits());
    }
    h.write_u64(caps.caps.len() as u64);
    for &cap in &caps.caps {
        h.write_u64(cap.to_bits());
    }
    h.finish()
}

/// FNV-1a, 64-bit.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::tentative_feasible;

    #[test]
    fn unit_conversions_round_safely() {
        assert_eq!(units_from_utilization(0.5), UNIT_SCALE / 2);
        assert_eq!(units_from_utilization(0.0), 0);
        assert_eq!(units_from_utilization(-1.0), 0);
        assert_eq!(units_from_utilization(f64::NAN), 0);
        // Budgets round down…
        assert!(utilization_from_units(units_from_utilization(0.3)) <= 0.3);
        // …demands round up.
        assert_eq!(demand_units(1, 3), UNIT_SCALE / 3 + 1);
        assert_eq!(demand_units(10, 10), UNIT_SCALE);
        assert_eq!(demand_units(5, 0), u64::MAX);
    }

    #[test]
    fn inscribed_caps_stay_inside_the_region() {
        let region = FeasibleRegion::deadline_monotonic(4);
        let caps = StageCaps::inscribed(&region);
        assert!(region.contains(caps.caps()).unwrap());
        // And they are maximal in the symmetric direction: nudging every
        // stage up leaves the region.
        let bumped: Vec<f64> = caps.caps().iter().map(|c| c + 1e-6).collect();
        assert!(!region.contains(&bumped).unwrap());
    }

    #[test]
    fn stage_caps_is_a_box_region() {
        let caps = StageCaps::new(vec![0.4, 0.2]);
        assert_eq!(caps.stages(), 2);
        assert!(caps.feasible(&[0.4, 0.2]));
        assert!(!caps.feasible(&[0.41, 0.0]));
        assert!(!caps.feasible(&[0.0, 0.21]));
    }

    #[test]
    fn tentative_feasible_spends_against_caps() {
        let caps = StageCaps::from_units(&[100, 50]);
        let mut scratch = Vec::new();
        let current = [40.0, 10.0];
        assert!(tentative_feasible(
            &caps,
            &current,
            &[(crate::task::StageId::new(0), 60.0)],
            &mut scratch,
        ));
        assert!(!tentative_feasible(
            &caps,
            &current,
            &[(crate::task::StageId::new(0), 61.0)],
            &mut scratch,
        ));
    }

    #[test]
    fn fingerprint_tracks_every_parameter() {
        let region = FeasibleRegion::deadline_monotonic(3);
        let caps = StageCaps::inscribed(&region);
        let fp = params_fingerprint(&region, &caps);
        assert_eq!(fp, params_fingerprint(&region, &caps), "deterministic");

        let other_region = FeasibleRegion::deadline_monotonic(4);
        let other_caps = StageCaps::inscribed(&other_region);
        assert_ne!(fp, params_fingerprint(&other_region, &other_caps));

        let tweaked = StageCaps::new(vec![0.1, 0.1, 0.1]);
        assert_ne!(fp, params_fingerprint(&region, &tweaked));
    }
}
