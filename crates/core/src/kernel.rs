//! A vectorized fast path for the pipeline region test (ROADMAP item 3).
//!
//! The hot kernel of every admission decision is the pipeline inequality
//!
//! ```text
//! Σ_j f(U_j) ≤ α (1 − Σ_j β_j),      f(u) = u (1 − u/2) / (1 − u)
//! ```
//!
//! evaluated once per arrival over the tentative utilization vector. The
//! scalar path ([`crate::delay::stage_delay_factor`] summed in `f64`) costs
//! one branch and one division per stage and does not auto-vectorize
//! because of the `u ≥ 1` saturation branch. [`RegionKernel`] evaluates the
//! same sum branch-free in `f32` across eight independent lanes (which the
//! compiler turns into SIMD on any target with vector divides) and then
//! decides in one of three ways:
//!
//! * the approximate sum is **below** the budget by more than a guard
//!   band → [`FastVerdict::Feasible`], provably what the exact test says;
//! * the approximate sum is **above** the budget by more than the guard
//!   band → [`FastVerdict::Infeasible`], ditto;
//! * anything near the boundary, or any input outside the fast path's
//!   eligibility envelope (negative, NaN, or close enough to the `u → 1`
//!   pole that `f32` error explodes) → fall back to the exact scalar path.
//!
//! Because definitive verdicts are only issued outside the guard band and
//! the band dominates the worst-case `f32` error (see
//! [`RegionKernel::guard_band`]), the kernel's verdicts are
//! **decision-for-decision identical** to the exact scalar test — the
//! property `tests/kernel_differential.rs` hammers with ulp-adjacent
//! boundary vectors.

use crate::delay::stage_delay_factor;

/// Largest per-stage utilization the `f32` fast path accepts.
///
/// `1 − 1/32`, exactly representable in both `f32` and `f64`. At this
/// point `f(u) ≈ 16` and `f′(u) ≈ 512`; beyond it the pole at `u = 1`
/// amplifies the `f32` rounding of `u` faster than any useful guard band
/// can absorb, so such stages (rare: a single one contributes 16× a
/// typical whole-system budget) take the exact path instead.
pub const FAST_MAX_UTILIZATION: f64 = 0.96875;

const FAST_MAX_F32: f32 = FAST_MAX_UTILIZATION as f32;

/// Number of independent accumulator lanes; eight `f32`s fill a 256-bit
/// vector register.
pub const LANES: usize = 8;

/// Vector length below which the exact scalar sum beats the `f32` lanes
/// outright, so [`RegionKernel::feasible`] (and the region trait
/// routing) skips the fast path entirely. Measured crossover on the
/// reference container (sweep over 8–48 stages, both admission
/// regimes): the lane loop plus guard-band bookkeeping loses by ~25%
/// at 8–12 stages, breaks even in the noisy 24–28 band, and wins on
/// every cell from four vector widths up (~20% at 32–48, ~1.3–2× at
/// 64–1024). The cutover sits at the top of the break-even band so the
/// vectorized arm only runs where it reliably pays.
pub const SCALAR_CUTOVER: usize = 4 * LANES;

/// What the vectorized fast path concluded about one utilization vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FastVerdict {
    /// Inside the region by more than the guard band: identical to the
    /// exact test's `true`.
    Feasible,
    /// Outside the region by more than the guard band: identical to the
    /// exact test's `false`.
    Infeasible,
    /// Within the guard band of the budget — the fast sum cannot be
    /// trusted to sign the margin; run the exact scalar test.
    NearBoundary,
    /// Some stage was outside `[0, FAST_MAX_UTILIZATION]` (including NaN)
    /// or the vector length mismatched; run the exact (validating) path.
    Ineligible,
}

/// A prepared pipeline region test: stage count plus the precomputed
/// right-hand side `α (1 − Σβ)`.
///
/// Cheap to copy; [`crate::region::FeasibleRegion::kernel`] derives one
/// from a region, and standalone construction serves benches and tests.
///
/// # Examples
///
/// ```
/// use frap_core::kernel::{FastVerdict, RegionKernel};
///
/// let k = RegionKernel::new(2, 1.0);
/// assert_eq!(k.classify(&[0.3, 0.3]), FastVerdict::Feasible);
/// assert_eq!(k.classify(&[0.55, 0.55]), FastVerdict::Infeasible);
/// assert!(k.feasible(&[0.3, 0.3]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionKernel {
    stages: usize,
    budget: f64,
}

impl RegionKernel {
    /// A kernel for `stages` stages against the given budget
    /// (`α (1 − Σβ)` for the paper's pipeline region).
    ///
    /// # Panics
    ///
    /// Panics if `budget` is negative or not finite.
    pub fn new(stages: usize, budget: f64) -> RegionKernel {
        assert!(
            budget.is_finite() && budget >= 0.0,
            "region budget must be finite and non-negative"
        );
        RegionKernel { stages, budget }
    }

    /// The expected utilization-vector length.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// The right-hand side of the inequality.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The branch-free `f32` evaluation: eight-lane sum of
    /// `x (1 − x/2) / (1 − x)` with a per-lane eligibility mask, folded
    /// into `f64` and compared against the budget ± guard band.
    ///
    /// Never wrong, sometimes undecided: a definitive
    /// [`FastVerdict::Feasible`] / [`FastVerdict::Infeasible`] always
    /// matches the exact scalar test; everything else defers to it.
    // Non-short-circuiting `&` keeps the lane loop branch-free; the
    // range-contains form would reintroduce `&&`.
    #[allow(clippy::manual_range_contains)]
    #[inline]
    pub fn classify(&self, utilizations: &[f64]) -> FastVerdict {
        if utilizations.len() != self.stages {
            return FastVerdict::Ineligible;
        }
        let mut chunks = utilizations.chunks_exact(LANES);
        let mut eligible = true;
        let mut lanes = 0.0f64;
        // Short vectors (the common 2–4 stage pipelines) skip the lane
        // arrays entirely — initializing and folding eight accumulators
        // costs more than the whole sum at that size.
        if utilizations.len() >= LANES {
            let mut acc = [0.0f32; LANES];
            let mut ok = [true; LANES];
            for chunk in &mut chunks {
                for lane in 0..LANES {
                    let x = chunk[lane] as f32;
                    ok[lane] &= (x >= 0.0) & (x <= FAST_MAX_F32);
                    acc[lane] += x * (1.0 - 0.5 * x) / (1.0 - x);
                }
            }
            eligible = ok.iter().all(|&b| b);
            lanes = acc.iter().map(|&a| a as f64).sum::<f64>();
        }
        let mut tail = 0.0f32;
        for &u in chunks.remainder() {
            let x = u as f32;
            eligible &= (x >= 0.0) & (x <= FAST_MAX_F32);
            tail += x * (1.0 - 0.5 * x) / (1.0 - x);
        }
        if !eligible {
            // Ineligible lanes may have produced ±∞/NaN terms; the
            // accumulators are dead here, so that never escapes.
            return FastVerdict::Ineligible;
        }
        let approx = lanes + tail as f64;
        let guard = self.guard_band(approx);
        if approx + guard <= self.budget {
            FastVerdict::Feasible
        } else if approx - guard > self.budget {
            FastVerdict::Infeasible
        } else {
            FastVerdict::NearBoundary
        }
    }

    /// The region verdict: fast path first, exact scalar fallback on
    /// [`FastVerdict::NearBoundary`] / [`FastVerdict::Ineligible`].
    ///
    /// Bit-identical to `exact_feasible` for every well-formed vector.
    /// Inherits [`stage_delay_factor`]'s input contract on the fallback:
    /// validate lengths and signs at the API boundary (as
    /// [`crate::region::FeasibleRegion`] does).
    // `#[inline]` on this and the exact twins below: the workspace does
    // not enable LTO, so without the hint every cross-crate caller —
    // including the admission hot loops in `frap-service` and the bench
    // cells — pays a call layer the in-crate scalar baseline does not,
    // which alone showed up as a ~10% artifact on sub-cutover sizes.
    // The vectorized arm stays outlined on purpose: folding the lane
    // loop into every caller bloats the short-pipeline hot path it is
    // explicitly bypassing, and above the cutover one call is noise.
    #[inline]
    pub fn feasible(&self, utilizations: &[f64]) -> bool {
        // Trivially identical shortcut: below the measured crossover the
        // f32 evaluation plus guard-band check costs more than the exact
        // sum it approximates (~2–3× at 2–4 stages, still ~25% at 16),
        // so short pipelines — the common case — go straight to the
        // answer.
        if utilizations.len() < SCALAR_CUTOVER {
            return self.exact_feasible(utilizations);
        }
        self.feasible_vectorized(utilizations)
    }

    /// The above-cutover arm of [`RegionKernel::feasible`]: fast verdict
    /// with exact fallback, no length shortcut.
    fn feasible_vectorized(&self, utilizations: &[f64]) -> bool {
        match self.classify(utilizations) {
            FastVerdict::Feasible => true,
            FastVerdict::Infeasible => false,
            FastVerdict::NearBoundary | FastVerdict::Ineligible => {
                self.exact_feasible(utilizations)
            }
        }
    }

    /// The exact scalar left-hand side, in the same operation order as
    /// [`crate::region::FeasibleRegion::value`] (so the two agree
    /// bit-for-bit).
    #[inline]
    pub fn exact_value(&self, utilizations: &[f64]) -> f64 {
        utilizations.iter().map(|&u| stage_delay_factor(u)).sum()
    }

    /// The exact scalar verdict `Σ f(U_j) ≤ budget`.
    #[inline]
    pub fn exact_feasible(&self, utilizations: &[f64]) -> bool {
        self.exact_value(utilizations) <= self.budget
    }

    /// The symmetric error envelope around the approximate sum within
    /// which a definitive verdict is refused.
    ///
    /// Worst-case `f32` error, per eligible term with `f = f(u)`:
    /// converting `u` to `f32` perturbs it by ≤ `ε₃₂u`, amplified through
    /// `f` by `f′(u) · u ≤ 2(1 + f²)`; the three-op `f32` evaluation of
    /// `f` itself adds ≤ `4ε₃₂f`. Summed over the vector (using
    /// `Σf ≤ S`, `Σf² ≤ S²` for `S` the total) plus ≤ `(n/8)ε₃₂S` of
    /// lane-accumulation error:
    ///
    /// ```text
    /// |approx − exact| ≤ ε₃₂ (2n + 4S + 2S² + nS/8),   ε₃₂ = 2⁻²³
    /// ```
    ///
    /// The band below is that bound with every coefficient inflated ≥ 8×,
    /// so a sum that clears it clears the true error with margin. Near a
    /// unit budget (`S ≈ 1`) the band is ~10⁻⁶ per stage — vectors must
    /// land within ulps-of-`f64` territory scaled by ~10⁶ to dodge a
    /// definitive verdict, which only adversarial boundary constructions
    /// (and the differential suite) do.
    fn guard_band(&self, approx: f64) -> f64 {
        let n = self.stages as f64;
        1e-6 * n + 4e-6 * approx + 2e-6 * approx * approx + 1.2e-7 * n * approx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definitive_verdicts_off_the_boundary() {
        let k = RegionKernel::new(3, 1.0);
        assert_eq!(k.classify(&[0.1, 0.1, 0.1]), FastVerdict::Feasible);
        assert_eq!(k.classify(&[0.5, 0.5, 0.5]), FastVerdict::Infeasible);
        assert!(k.feasible(&[0.1, 0.1, 0.1]));
        assert!(!k.feasible(&[0.5, 0.5, 0.5]));
    }

    #[test]
    fn near_boundary_defers_to_exact() {
        // The two-stage symmetric surface point: f(u)·2 = 1 exactly-ish.
        let u = crate::delay::stage_delay_factor_inverse(0.5);
        let k = RegionKernel::new(2, 1.0);
        assert_eq!(k.classify(&[u, u]), FastVerdict::NearBoundary);
        assert_eq!(k.feasible(&[u, u]), k.exact_feasible(&[u, u]));
    }

    #[test]
    fn pole_adjacent_stages_are_ineligible() {
        // Eligibility is judged on the f32-rounded value, so the envelope
        // extends half an f32 ulp (~3e-8 here) past FAST_MAX — which the
        // guard band's 8× safety factor absorbs. Anything that rounds
        // above is out.
        let k = RegionKernel::new(2, 1.0);
        for bad in [
            FAST_MAX_UTILIZATION + 1e-6,
            1.0 - 1e-9,
            1.0,
            1.5,
            -0.1,
            f64::NAN,
        ] {
            assert_eq!(
                k.classify(&[bad, 0.1]),
                FastVerdict::Ineligible,
                "u = {bad}"
            );
        }
        // Saturated stages resolve through the exact path: infeasible.
        assert!(!k.feasible(&[1.0, 0.0]));
    }

    #[test]
    fn fast_max_itself_is_eligible() {
        let k = RegionKernel::new(1, 1.0);
        assert_eq!(k.classify(&[FAST_MAX_UTILIZATION]), FastVerdict::Infeasible);
    }

    #[test]
    fn length_mismatch_is_ineligible() {
        let k = RegionKernel::new(3, 1.0);
        assert_eq!(k.classify(&[0.1, 0.1]), FastVerdict::Ineligible);
    }

    #[test]
    fn empty_vector_against_zero_budget() {
        let k = RegionKernel::new(0, 0.0);
        assert_eq!(k.classify(&[]), FastVerdict::Feasible);
        assert!(k.feasible(&[]));
    }

    #[test]
    fn zero_vector_against_zero_budget_defers() {
        // Exact: 0 ≤ 0 holds; the fast path cannot sign a zero margin.
        let k = RegionKernel::new(2, 0.0);
        assert_eq!(k.classify(&[0.0, 0.0]), FastVerdict::NearBoundary);
        assert!(k.feasible(&[0.0, 0.0]));
    }

    #[test]
    fn long_vectors_cover_lanes_and_tail() {
        for n in [1usize, 7, 8, 9, 16, 63, 64, 65, 1024] {
            let k = RegionKernel::new(n, 1.0);
            let inside = vec![0.5 / n as f64; n];
            let outside = vec![0.9; n];
            assert_eq!(k.classify(&inside), FastVerdict::Feasible, "n = {n}");
            assert_eq!(k.classify(&outside), FastVerdict::Infeasible, "n = {n}");
            assert_eq!(k.feasible(&inside), k.exact_feasible(&inside));
        }
    }

    #[test]
    #[should_panic(expected = "budget")]
    fn negative_budget_panics() {
        let _ = RegionKernel::new(1, -0.5);
    }
}
