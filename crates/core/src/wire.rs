//! A compact, transport-friendly form of [`TaskSpec`].
//!
//! Networked admission (the `frap-gateway` crate) must ship a task's
//! admission-relevant shape across a socket without serializing the full
//! [`TaskGraph`](crate::graph::TaskGraph). For the paper's pipeline model
//! that shape is three integers wide: the relative end-to-end deadline,
//! the per-stage computation demands (stage `j`'s subtask runs `C_ij`
//! microseconds), and the semantic importance used by overload shedding.
//! [`WireTaskSpec`] is exactly that triple, with lossless conversions to
//! and from pipeline-shaped [`TaskSpec`]s.
//!
//! The type lives in `frap-core` (rather than the gateway) so that any
//! transport — or a future on-disk trace format — agrees on one canonical
//! compact encoding of "a pipeline task".
//!
//! # Examples
//!
//! ```
//! use frap_core::graph::TaskSpec;
//! use frap_core::time::TimeDelta;
//! use frap_core::wire::WireTaskSpec;
//!
//! let ms = TimeDelta::from_millis;
//! let spec = TaskSpec::pipeline(ms(100), &[ms(5), ms(10)])?;
//! let wire = WireTaskSpec::from_spec(&spec).expect("pipelines convert");
//! assert_eq!(wire.deadline_us, 100_000);
//! assert_eq!(wire.stage_demands_us, vec![5_000, 10_000]);
//! assert_eq!(wire.to_spec()?, spec);
//! # Ok::<(), frap_core::error::GraphError>(())
//! ```

use crate::error::GraphError;
use crate::graph::TaskSpec;
use crate::task::Importance;
use crate::time::TimeDelta;

/// A pipeline task in wire form: everything the admission test needs,
/// nothing a transport cannot carry as plain little-endian integers.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WireTaskSpec {
    /// Relative end-to-end deadline `D_i`, in microseconds.
    pub deadline_us: u64,
    /// Per-stage computation demand `C_ij` in microseconds; entry `j` is
    /// the demand on stage `j`, and the pipeline visits stages `0..n` in
    /// order.
    pub stage_demands_us: Vec<u64>,
    /// Raw importance level (higher = more important; shed last).
    pub importance: u32,
}

impl WireTaskSpec {
    /// Builds the wire form of a stage-ordered pipeline task.
    pub fn new(deadline: TimeDelta, stage_demands: &[TimeDelta], importance: Importance) -> Self {
        WireTaskSpec {
            deadline_us: deadline.as_micros(),
            stage_demands_us: stage_demands.iter().map(|d| d.as_micros()).collect(),
            importance: importance.level(),
        }
    }

    /// Compresses `spec` into wire form.
    ///
    /// Returns `None` unless `spec` is pipeline-shaped the way
    /// [`TaskSpec::pipeline`] builds it: a chain whose `k`-th subtask runs
    /// on stage `k`. Arbitrary DAGs and stage-reordered chains have no
    /// compact wire form and must stay in-process.
    pub fn from_spec(spec: &TaskSpec) -> Option<WireTaskSpec> {
        if !spec.graph.is_chain() {
            return None;
        }
        let mut demands = Vec::with_capacity(spec.graph.len());
        for (k, sub) in spec.graph.subtasks().enumerate() {
            if sub.stage.index() != k {
                return None;
            }
            demands.push(sub.computation().as_micros());
        }
        Some(WireTaskSpec {
            deadline_us: spec.deadline.as_micros(),
            stage_demands_us: demands,
            importance: spec.importance.level(),
        })
    }

    /// Expands the wire form back into a full [`TaskSpec`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] when `stage_demands_us` is empty
    /// (a task must visit at least one stage).
    pub fn to_spec(&self) -> Result<TaskSpec, GraphError> {
        let comps: Vec<TimeDelta> = self
            .stage_demands_us
            .iter()
            .map(|&us| TimeDelta::from_micros(us))
            .collect();
        Ok(
            TaskSpec::pipeline(TimeDelta::from_micros(self.deadline_us), &comps)?
                .with_importance(Importance::new(self.importance)),
        )
    }

    /// Number of pipeline stages the task visits.
    pub fn stages(&self) -> usize {
        self.stage_demands_us.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::TaskGraph;
    use crate::task::{StageId, SubtaskSpec};

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    #[test]
    fn round_trips_through_task_spec() {
        let wire = WireTaskSpec {
            deadline_us: 250_000,
            stage_demands_us: vec![1_000, 0, 7],
            importance: 42,
        };
        let spec = wire.to_spec().unwrap();
        assert_eq!(spec.deadline, TimeDelta::from_micros(250_000));
        assert_eq!(spec.importance, Importance::new(42));
        assert_eq!(WireTaskSpec::from_spec(&spec), Some(wire));
    }

    #[test]
    fn constructor_matches_pipeline() {
        let wire = WireTaskSpec::new(ms(100), &[ms(5), ms(10)], Importance::CRITICAL);
        let via_spec =
            WireTaskSpec::from_spec(&wire.to_spec().unwrap()).expect("pipeline converts");
        assert_eq!(wire, via_spec);
        assert_eq!(wire.stages(), 2);
    }

    #[test]
    fn empty_demands_error() {
        let wire = WireTaskSpec {
            deadline_us: 1,
            stage_demands_us: vec![],
            importance: 0,
        };
        assert!(wire.to_spec().is_err());
    }

    #[test]
    fn non_pipeline_shapes_have_no_wire_form() {
        let sub = |s: usize| SubtaskSpec::new(StageId::new(s), ms(1));
        // A fork-join DAG is not a chain.
        let dag = TaskGraph::fork_join(sub(0), vec![sub(1), sub(2)], sub(3)).unwrap();
        assert_eq!(WireTaskSpec::from_spec(&TaskSpec::new(ms(10), dag)), None);
        // A chain that visits stages out of order is not stage-ordered.
        let chain = TaskGraph::chain(vec![sub(1), sub(0)]).unwrap();
        assert_eq!(WireTaskSpec::from_spec(&TaskSpec::new(ms(10), chain)), None);
    }
}
