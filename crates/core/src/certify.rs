//! Offline certification of critical task sets (Section 5's workflow).
//!
//! Before runtime, an operator reserves synthetic utilization for the
//! critical periodic/aperiodic tasks and checks that the reservations fit
//! the feasible region (Equation 13/Theorem 2). The paper's TSCE example
//! sums contributions on shared stages but takes the **maximum** on
//! stages where tasks use mutually exclusive physical resources (each
//! task has its own console): [`ReservationPlan`] captures both rules.
//!
//! ```
//! use frap_core::certify::ReservationPlan;
//! use frap_core::graph::TaskSpec;
//! use frap_core::region::FeasibleRegion;
//! use frap_core::task::StageId;
//! use frap_core::time::TimeDelta;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ms = TimeDelta::from_millis;
//! let mut plan = ReservationPlan::new(2);
//! plan.add(&TaskSpec::pipeline(ms(100), &[ms(10), ms(5)])?);   // 0.10, 0.05
//! plan.add(&TaskSpec::pipeline(ms(200), &[ms(20), ms(10)])?);  // 0.10, 0.05
//! let report = plan.certify(&FeasibleRegion::deadline_monotonic(2));
//! assert!(report.feasible);
//! assert!((report.reservations[0] - 0.20).abs() < 1e-12);
//! # Ok(())
//! # }
//! ```

use crate::graph::TaskSpec;
use crate::region::FeasibleRegion;
use crate::task::StageId;

/// The outcome of certifying a reservation plan against a region.
#[derive(Debug, Clone, PartialEq)]
pub struct CertificationReport {
    /// The per-stage reservations `U_j^res` the plan requires.
    pub reservations: Vec<f64>,
    /// The region expression's value at the reservations (`Σ f(U_j^res)`).
    pub value: f64,
    /// The region budget (`α (1 − Σ β_j)`).
    pub budget: f64,
    /// Whether the critical set certifies (`value ≤ budget`).
    pub feasible: bool,
}

impl CertificationReport {
    /// Budget left over for dynamically admitted tasks.
    pub fn margin(&self) -> f64 {
        self.budget - self.value
    }
}

/// Accumulates per-stage reservations for a critical task set.
///
/// * [`ReservationPlan::add`] — the task shares its stages with other
///   critical tasks: contributions **sum**.
/// * [`ReservationPlan::add_exclusive_group`] — the tasks use mutually
///   exclusive physical resources behind one logical stage (the TSCE
///   consoles): the group reserves the **maximum** contribution.
#[derive(Debug, Clone)]
pub struct ReservationPlan {
    reservations: Vec<f64>,
}

impl ReservationPlan {
    /// An empty plan for a `stages`-stage system.
    pub fn new(stages: usize) -> ReservationPlan {
        ReservationPlan {
            reservations: vec![0.0; stages],
        }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.reservations.len()
    }

    /// Reserves a task's full contribution `C_ij / D_i` on every stage it
    /// uses (additive).
    ///
    /// # Panics
    ///
    /// Panics if the task references a stage outside the plan.
    pub fn add(&mut self, task: &TaskSpec) -> &mut Self {
        for (stage, c) in task.contributions() {
            assert!(
                stage.index() < self.reservations.len(),
                "task references {stage} outside the {}-stage plan",
                self.reservations.len()
            );
            self.reservations[stage.index()] += c;
        }
        self
    }

    /// Reserves, at `stage` only, the **maximum** contribution among
    /// `tasks` — for tasks that use distinct physical resources
    /// multiplexed behind one stage (each its own console/weapon mount),
    /// so their demands do not add (the paper's stage-3 rule).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is outside the plan.
    pub fn add_exclusive_group(&mut self, stage: StageId, tasks: &[&TaskSpec]) -> &mut Self {
        assert!(stage.index() < self.reservations.len());
        let max = tasks
            .iter()
            .map(|t| t.contribution_at(stage))
            .fold(0.0f64, f64::max);
        self.reservations[stage.index()] += max;
        self
    }

    /// Adds a raw reservation amount at one stage (operator-specified
    /// slack, measurement-derived values, …).
    ///
    /// # Panics
    ///
    /// Panics if `stage` is outside the plan or `amount` is negative/NaN.
    pub fn add_raw(&mut self, stage: StageId, amount: f64) -> &mut Self {
        assert!(stage.index() < self.reservations.len());
        assert!(amount.is_finite() && amount >= 0.0);
        self.reservations[stage.index()] += amount;
        self
    }

    /// The accumulated per-stage reservations.
    pub fn reservations(&self) -> &[f64] {
        &self.reservations
    }

    /// Certifies the plan against `region` (Equation 13 / 15 / 12).
    pub fn certify(&self, region: &FeasibleRegion) -> CertificationReport {
        let value = region
            .value(&self.reservations)
            .expect("reservations are a valid utilization vector");
        let budget = region.budget();
        CertificationReport {
            reservations: self.reservations.clone(),
            value,
            budget,
            feasible: value <= budget,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::TimeDelta;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    #[test]
    fn additive_reservations() {
        let mut plan = ReservationPlan::new(2);
        plan.add(&TaskSpec::pipeline(ms(100), &[ms(10), ms(20)]).unwrap());
        plan.add(&TaskSpec::pipeline(ms(100), &[ms(10), ms(20)]).unwrap());
        assert!((plan.reservations()[0] - 0.2).abs() < 1e-12);
        assert!((plan.reservations()[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn exclusive_group_takes_max() {
        let a = TaskSpec::pipeline(ms(100), &[ms(1), ms(30)]).unwrap();
        let b = TaskSpec::pipeline(ms(100), &[ms(1), ms(10)]).unwrap();
        let mut plan = ReservationPlan::new(2);
        plan.add_exclusive_group(StageId::new(1), &[&a, &b]);
        assert_eq!(plan.reservations()[0], 0.0);
        assert!((plan.reservations()[1] - 0.3).abs() < 1e-12);
    }

    #[test]
    fn raw_reservation() {
        let mut plan = ReservationPlan::new(3);
        plan.add_raw(StageId::new(2), 0.15);
        assert_eq!(plan.reservations(), &[0.0, 0.0, 0.15]);
    }

    #[test]
    fn report_margin_and_feasibility() {
        let mut plan = ReservationPlan::new(1);
        plan.add_raw(StageId::new(0), 0.3);
        let report = plan.certify(&FeasibleRegion::deadline_monotonic(1));
        assert!(report.feasible);
        assert!(report.margin() > 0.0);
        assert!((report.value + report.margin() - report.budget).abs() < 1e-12);

        let mut too_much = ReservationPlan::new(1);
        too_much.add_raw(StageId::new(0), 0.9);
        let report = too_much.certify(&FeasibleRegion::deadline_monotonic(1));
        assert!(!report.feasible);
        assert!(report.margin() < 0.0);
    }

    #[test]
    fn reproduces_tsce_arithmetic() {
        // Table 1's three critical tasks, built via the plan API.
        let wd = TaskSpec::pipeline(ms(500), &[ms(100), ms(65)]).unwrap();
        let wt = TaskSpec::pipeline(ms(50), &[ms(5), ms(5)]).unwrap();
        let uav = TaskSpec::pipeline(ms(500), &[ms(50), ms(10)]).unwrap();
        // Stage-3 contributions (per-task consoles): 0.06, 0.1, 0.1.
        let wd3 = TaskSpec::pipeline(ms(500), &[ms(0), ms(0), ms(30)]).unwrap();
        let wt3 = TaskSpec::pipeline(ms(50), &[ms(0), ms(0), ms(5)]).unwrap();
        let uav3 = TaskSpec::pipeline(ms(500), &[ms(0), ms(0), ms(50)]).unwrap();

        let mut plan = ReservationPlan::new(3);
        plan.add(&wd).add(&wt).add(&uav);
        plan.add_exclusive_group(StageId::new(2), &[&wd3, &wt3, &uav3]);

        let r = plan.reservations();
        assert!((r[0] - 0.40).abs() < 1e-12);
        assert!((r[1] - 0.25).abs() < 1e-12);
        assert!((r[2] - 0.10).abs() < 1e-12);

        let report = plan.certify(&FeasibleRegion::deadline_monotonic(3));
        assert!(report.feasible);
        assert!((report.value - 0.93).abs() < 0.005);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_range_stage_panics() {
        let t = TaskSpec::pipeline(ms(10), &[ms(1), ms(1), ms(1)]).unwrap();
        ReservationPlan::new(2).add(&t);
    }
}
