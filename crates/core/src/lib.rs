//! # frap-core
//!
//! Feasible-region schedulability analysis and admission control for
//! **aperiodic tasks with end-to-end deadlines in resource pipelines** — a
//! from-scratch implementation of
//!
//! > T. Abdelzaher, G. Thaker, P. Lardieri, *"A Feasible Region for Meeting
//! > Aperiodic End-to-End Deadlines in Resource Pipelines"*, ICDCS 2004.
//!
//! Tasks arrive aperiodically, traverse `N` stages (independent resources
//! such as CPUs), and must leave the pipeline within a relative end-to-end
//! deadline. The paper derives a *feasible region* — a surface in the
//! per-stage synthetic-utilization space — such that **every task meets its
//! deadline** while the system stays inside it:
//!
//! ```text
//! Σ_j  U_j (1 − U_j/2) / (1 − U_j)  ≤  α (1 − Σ_j β_j)
//! ```
//!
//! with `α` the urgency-inversion parameter of the fixed-priority policy
//! (`α = 1` for deadline-monotonic) and `β_j` per-stage blocking factors
//! for critical sections under the priority ceiling protocol. Theorem 2
//! extends the region to arbitrary DAG task graphs via the longest-path
//! end-to-end delay expression.
//!
//! The region yields an `O(N)` admission test — independent of the number
//! of live tasks — plus the bookkeeping rules that make it practical:
//! decrement synthetic utilization at deadlines, reset departed tasks'
//! contributions when a stage idles, reserve capacity for critical tasks,
//! and shed in reverse order of semantic importance at overload.
//!
//! ## Quickstart
//!
//! ```
//! use frap_core::admission::{Admission, ExactContributions};
//! use frap_core::graph::TaskSpec;
//! use frap_core::region::FeasibleRegion;
//! use frap_core::time::{Time, TimeDelta};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ms = TimeDelta::from_millis;
//!
//! // A three-stage pipeline under deadline-monotonic scheduling.
//! let region = FeasibleRegion::deadline_monotonic(3);
//! let mut ac = Admission::new(region, ExactContributions);
//!
//! // A request: 5 ms + 10 ms + 5 ms of work, 500 ms end-to-end deadline.
//! let request = TaskSpec::pipeline(ms(500), &[ms(5), ms(10), ms(5)])?;
//!
//! match ac.try_admit(Time::ZERO, &request) {
//!     Some(id) => println!("admitted as {id}"),
//!     None => println!("rejected: would leave the feasible region"),
//! }
//! # Ok(())
//! # }
//! ```
//!
//! ## Module map
//!
//! | Module | Paper section | Contents |
//! |--------|---------------|----------|
//! | [`time`] | — | integer-microsecond clock ([`time::Time`], [`time::TimeDelta`]) |
//! | [`task`] | §2 | stages, priorities, importance, subtasks, critical-section segments |
//! | [`graph`] | §2, §3.3 | task graphs (pipelines, fork-join, arbitrary DAGs), [`graph::TaskSpec`] |
//! | [`delay`] | Theorem 1 | the stage-delay function `f` and its algebra |
//! | [`alpha`] | §2 | the urgency-inversion parameter `α` |
//! | [`region`] | §3 | [`region::FeasibleRegion`], Theorem 2 graph regions, [`region::RegionTest`] |
//! | [`synthetic`] | §2, §4 | synthetic-utilization counters with expiry, idle reset, reservations |
//! | [`admission`] | §4, §5 | exact/approximate/reservation/shedding controllers and baselines |
//! | [`capacity`] | §3 | headroom queries, budget allocation, cost-of-depth tables |
//! | [`hist`] | — | log-bucketed latency histogram shared by the simulator and service layers |
//! | [`fixed`] | §4 | binary fixed-point utilization units for lock-free charge accounting |
//! | [`wire`] | — | compact pipeline wire form ([`wire::WireTaskSpec`]) for transports and traces |
//! | [`certify`] | §5 | offline certification / reservation planning for critical task sets |
//! | [`rta`] | §1 (related work) | holistic response-time analysis — the classical periodic baseline |
//!
//! The companion crates build on this one: `frap-sim` (discrete-event
//! pipeline simulator with preemptive fixed-priority stages and the
//! priority ceiling protocol), `frap-workload` (generators and the TSCE
//! scenario), and `frap-experiments` (regenerates every figure and table
//! of the paper's evaluation).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod alpha;
pub mod capacity;
pub mod certify;
pub mod delay;
pub mod error;
pub mod fixed;
pub mod graph;
pub mod hist;
pub mod kernel;
pub mod lease;
pub mod region;
pub mod rta;
pub mod synthetic;
pub mod task;
pub mod time;
pub mod wire;

pub use admission::{Admission, AdmitOutcome, ExactContributions, MeanContributions};
pub use alpha::Alpha;
pub use delay::{stage_delay_factor, UNIPROCESSOR_BOUND};
pub use graph::{TaskGraph, TaskSpec};
pub use hist::LatencyHistogram;
pub use lease::{StageCaps, UNIT_SCALE};
pub use region::{FeasibleRegion, RegionTest};
pub use synthetic::{StageTracker, SyntheticState};
pub use task::{Importance, Priority, StageId, SubtaskSpec, TaskId};
pub use time::{Time, TimeDelta};
pub use wire::WireTaskSpec;
