//! Capacity planning on the feasible region.
//!
//! The bounding surface `Σ_j f(U_j) = budget` supports more than a
//! yes/no admission test: operators want to know *how much* headroom a
//! stage has, how to split a budget across stages with unequal demand,
//! and what a deeper pipeline costs. These closed-form helpers answer
//! those questions using `f`'s inverse (`f⁻¹(x) = 1 + x − √(1 + x²)`),
//! without search except where the allocation is genuinely nonlinear
//! (weighted allocation, solved by bisection).

use crate::delay::{stage_delay_factor, stage_delay_factor_inverse};
use crate::error::RegionError;
use crate::region::FeasibleRegion;
use crate::task::StageId;

/// The largest additional synthetic utilization stage `stage` can accept
/// while the system stays inside `region`, given current utilizations.
///
/// This is the admission controller's headroom query: a task whose
/// contribution at `stage` is below the returned value (and zero
/// elsewhere) is guaranteed admissible.
///
/// Returns 0 when the system is already on or outside the surface.
///
/// # Errors
///
/// Returns [`RegionError::DimensionMismatch`] /
/// [`RegionError::InvalidUtilization`] for malformed inputs and
/// [`RegionError::StageOutOfRange`] for a bad stage index.
///
/// # Examples
///
/// ```
/// use frap_core::capacity::stage_headroom;
/// use frap_core::region::FeasibleRegion;
/// use frap_core::task::StageId;
///
/// let region = FeasibleRegion::deadline_monotonic(2);
/// let h = stage_headroom(&region, &[0.2, 0.2], StageId::new(0))?;
/// // Adding h at stage 0 lands exactly on the surface.
/// assert!(region.contains(&[0.2 + h - 1e-9, 0.2])?);
/// assert!(!region.contains(&[0.2 + h + 1e-9, 0.2])?);
/// # Ok::<(), frap_core::error::RegionError>(())
/// ```
pub fn stage_headroom(
    region: &FeasibleRegion,
    utilizations: &[f64],
    stage: StageId,
) -> Result<f64, RegionError> {
    let value = region.value(utilizations)?;
    let j = stage.index();
    if j >= region.stages() {
        return Err(RegionError::StageOutOfRange {
            index: j,
            stages: region.stages(),
        });
    }
    let u_j = utilizations[j];
    let own = stage_delay_factor(u_j);
    let others = value - own;
    let budget_for_stage = region.budget() - others;
    if !budget_for_stage.is_finite() || budget_for_stage <= own {
        return Ok(0.0);
    }
    Ok((stage_delay_factor_inverse(budget_for_stage) - u_j).max(0.0))
}

/// The utilization vector that splits the whole budget equally across
/// stages: every stage at `f⁻¹(budget / N)` (the symmetric point on the
/// surface).
///
/// # Examples
///
/// ```
/// use frap_core::capacity::balanced_allocation;
/// use frap_core::region::FeasibleRegion;
///
/// let region = FeasibleRegion::deadline_monotonic(3);
/// let alloc = balanced_allocation(&region);
/// let total: f64 = alloc
///     .iter()
///     .map(|&u| frap_core::delay::stage_delay_factor(u))
///     .sum();
/// assert!((total - 1.0).abs() < 1e-9);
/// ```
pub fn balanced_allocation(region: &FeasibleRegion) -> Vec<f64> {
    vec![region.max_equal_utilization(); region.stages()]
}

/// Splits the region budget across stages **proportionally to demand
/// weights**: finds the largest `t` such that `U_j = min(t·w_j, cap)`
/// stays on/inside the surface, and returns that vector.
///
/// Weights are relative per-stage demand rates (e.g. mean computation
/// time per stage when every task visits every stage); the result is the
/// utilization operating point that saturates all stages simultaneously
/// relative to their demand, which is how an imbalanced pipeline should
/// be provisioned.
///
/// Solved by bisection on `t` (the map is strictly monotone); `cap`
/// bounds each stage below 1 where `f` diverges.
///
/// # Errors
///
/// Returns [`RegionError::DimensionMismatch`] if `weights.len()` differs
/// from the region's stage count, or [`RegionError::InvalidUtilization`]
/// if any weight is negative, NaN, or all weights are zero.
///
/// # Examples
///
/// ```
/// use frap_core::capacity::weighted_allocation;
/// use frap_core::region::FeasibleRegion;
///
/// // Stage 0 carries twice the demand of stage 1.
/// let region = FeasibleRegion::deadline_monotonic(2);
/// let alloc = weighted_allocation(&region, &[2.0, 1.0])?;
/// assert!((alloc[0] / alloc[1] - 2.0).abs() < 1e-6);
/// assert!(region.contains(&alloc)?);
/// # Ok::<(), frap_core::error::RegionError>(())
/// ```
pub fn weighted_allocation(
    region: &FeasibleRegion,
    weights: &[f64],
) -> Result<Vec<f64>, RegionError> {
    if weights.len() != region.stages() {
        return Err(RegionError::DimensionMismatch {
            expected: region.stages(),
            got: weights.len(),
        });
    }
    for &w in weights {
        if w.is_nan() || w < 0.0 {
            return Err(RegionError::InvalidUtilization { value: w });
        }
    }
    let w_max = weights.iter().cloned().fold(0.0f64, f64::max);
    if w_max == 0.0 {
        return Err(RegionError::InvalidUtilization { value: 0.0 });
    }
    let budget = region.budget();
    if budget <= 0.0 {
        return Ok(vec![0.0; weights.len()]);
    }

    // U_j(t) = min(t · w_j, CAP); Σ f(U_j(t)) is continuous and strictly
    // increasing in t until all stages cap out.
    const CAP: f64 = 0.999_999;
    let value_at = |t: f64| -> f64 {
        weights
            .iter()
            .map(|&w| stage_delay_factor((t * w).min(CAP)))
            .sum()
    };
    let mut lo = 0.0f64;
    let mut hi = CAP / w_max;
    if value_at(hi) <= budget {
        // Even fully capped the budget is not exhausted (budget can reach
        // Σ f(CAP) only in degenerate configurations).
        return Ok(weights.iter().map(|&w| (hi * w).min(CAP)).collect());
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if value_at(mid) <= budget {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(weights.iter().map(|&w| (lo * w).min(CAP)).collect())
}

/// How much total budget an `n`-stage deadline-monotonic pipeline leaves
/// per stage at the symmetric point, for `n = 1..=max_stages` — the
/// "cost of depth" table (Section 3.1's argument that the bound does not
/// degrade with `N` because per-stage demand also scales as `O(1/N)`).
///
/// Each row is `(n, per_stage_bound, n × per_stage_bound)`: the last
/// column (aggregate admissible synthetic utilization) *grows* with
/// depth, approaching the liquid limit.
pub fn depth_table(max_stages: usize) -> Vec<(usize, f64, f64)> {
    (1..=max_stages)
        .map(|n| {
            let u = FeasibleRegion::deadline_monotonic(n).max_equal_utilization();
            (n, u, n as f64 * u)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alpha::Alpha;
    use crate::delay::UNIPROCESSOR_BOUND;

    #[test]
    fn headroom_reaches_surface_exactly() {
        let region = FeasibleRegion::deadline_monotonic(3);
        let utils = [0.1, 0.3, 0.2];
        for j in 0..3 {
            let h = stage_headroom(&region, &utils, StageId::new(j)).unwrap();
            let mut at = utils;
            at[j] += h;
            let v = region.value(&at).unwrap();
            assert!((v - region.budget()).abs() < 1e-9, "stage {j}: v={v}");
        }
    }

    #[test]
    fn headroom_zero_when_saturated() {
        let region = FeasibleRegion::deadline_monotonic(1);
        let h = stage_headroom(&region, &[UNIPROCESSOR_BOUND + 0.1], StageId::new(0)).unwrap();
        assert_eq!(h, 0.0);
        // Saturated by the *other* stage.
        let region2 = FeasibleRegion::deadline_monotonic(2);
        let h = stage_headroom(&region2, &[0.0, 0.99], StageId::new(0)).unwrap();
        assert_eq!(h, 0.0);
    }

    #[test]
    fn headroom_on_empty_single_stage_is_the_bound() {
        let region = FeasibleRegion::deadline_monotonic(1);
        let h = stage_headroom(&region, &[0.0], StageId::new(0)).unwrap();
        assert!((h - UNIPROCESSOR_BOUND).abs() < 1e-12);
    }

    #[test]
    fn headroom_errors() {
        let region = FeasibleRegion::deadline_monotonic(2);
        assert!(stage_headroom(&region, &[0.1], StageId::new(0)).is_err());
        assert!(stage_headroom(&region, &[0.1, 0.1], StageId::new(5)).is_err());
        assert!(stage_headroom(&region, &[-0.1, 0.1], StageId::new(0)).is_err());
    }

    #[test]
    fn balanced_allocation_is_on_surface() {
        for n in 1..=6 {
            let region = FeasibleRegion::deadline_monotonic(n);
            let alloc = balanced_allocation(&region);
            assert_eq!(alloc.len(), n);
            let v = region.value(&alloc).unwrap();
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn weighted_allocation_matches_balanced_for_equal_weights() {
        let region = FeasibleRegion::deadline_monotonic(3);
        let w = weighted_allocation(&region, &[1.0, 1.0, 1.0]).unwrap();
        let b = balanced_allocation(&region);
        for (x, y) in w.iter().zip(&b) {
            assert!((x - y).abs() < 1e-6, "{x} vs {y}");
        }
    }

    #[test]
    fn weighted_allocation_respects_ratios_and_surface() {
        let region = FeasibleRegion::deadline_monotonic(2);
        let alloc = weighted_allocation(&region, &[3.0, 1.0]).unwrap();
        assert!((alloc[0] / alloc[1] - 3.0).abs() < 1e-6);
        let v = region.value(&alloc).unwrap();
        assert!((v - 1.0).abs() < 1e-6);
    }

    #[test]
    fn weighted_allocation_with_zero_weight_stage() {
        // A stage nobody uses gets nothing; the rest share the budget.
        let region = FeasibleRegion::deadline_monotonic(2);
        let alloc = weighted_allocation(&region, &[1.0, 0.0]).unwrap();
        assert_eq!(alloc[1], 0.0);
        assert!((alloc[0] - UNIPROCESSOR_BOUND).abs() < 1e-6);
    }

    #[test]
    fn weighted_allocation_scales_with_budget() {
        let tight = FeasibleRegion::with_alpha(2, Alpha::new(0.5).unwrap());
        let loose = FeasibleRegion::deadline_monotonic(2);
        let a_tight = weighted_allocation(&tight, &[1.0, 1.0]).unwrap();
        let a_loose = weighted_allocation(&loose, &[1.0, 1.0]).unwrap();
        assert!(a_tight[0] < a_loose[0]);
    }

    #[test]
    fn weighted_allocation_errors() {
        let region = FeasibleRegion::deadline_monotonic(2);
        assert!(weighted_allocation(&region, &[1.0]).is_err());
        assert!(weighted_allocation(&region, &[-1.0, 1.0]).is_err());
        assert!(weighted_allocation(&region, &[0.0, 0.0]).is_err());
        assert!(weighted_allocation(&region, &[f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn depth_table_aggregate_grows() {
        let table = depth_table(10);
        assert_eq!(table.len(), 10);
        assert!((table[0].1 - UNIPROCESSOR_BOUND).abs() < 1e-12);
        for w in table.windows(2) {
            assert!(w[1].1 < w[0].1, "per-stage bound shrinks with depth");
            assert!(
                w[1].2 > w[0].2,
                "aggregate admissible utilization grows with depth"
            );
        }
    }
}
