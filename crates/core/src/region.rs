//! The multi-dimensional feasible region (Section 3).
//!
//! The paper's first contribution: a surface in the per-stage synthetic
//! utilization space `(U_1, …, U_N)` such that **all end-to-end deadlines
//! are met** while the system stays inside it. For a pipeline under a
//! fixed-priority policy with urgency-inversion parameter `α` and per-stage
//! blocking factors `β_j` (Equations 13, 12, 15):
//!
//! ```text
//! Σ_j  U_j (1 − U_j/2) / (1 − U_j)   ≤   α (1 − Σ_j β_j)
//! ```
//!
//! For an arbitrary DAG task graph (Theorem 2), the left-hand side becomes
//! the end-to-end delay expression `d(·)` — the longest path through
//! per-subtask terms `f(U_kj) + β_kj` — compared against `α`:
//!
//! ```text
//! d( f(U_k1) + β_k1, …, f(U_kM) + β_kM )   ≤   α
//! ```
//!
//! [`FeasibleRegion`] evaluates both forms; [`RegionTest`] is the trait the
//! admission controllers consume.

use crate::alpha::Alpha;
use crate::delay::{stage_delay_factor, stage_delay_factor_inverse};
use crate::error::RegionError;
use crate::graph::TaskGraph;
use crate::kernel::{FastVerdict, RegionKernel};

/// A feasible region for an `N`-stage system: the set of synthetic
/// utilization vectors under which every admitted task meets its
/// end-to-end deadline.
///
/// # Examples
///
/// ```
/// use frap_core::region::FeasibleRegion;
///
/// // Two-stage pipeline, deadline-monotonic scheduling.
/// let region = FeasibleRegion::deadline_monotonic(2);
/// assert!(region.contains(&[0.3, 0.3])?);   // comfortably inside
/// assert!(!region.contains(&[0.55, 0.55])?); // f(0.55)·2 ≈ 1.77 > 1
/// # Ok::<(), frap_core::error::RegionError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FeasibleRegion {
    stages: usize,
    alpha: Alpha,
    blocking: Vec<f64>,
    /// `α (1 − Σβ)` cached at construction so the per-decision hot path
    /// ([`RegionTest::feasible`] via [`RegionKernel`]) never re-sums the
    /// blocking vector. Recomputed by [`FeasibleRegion::with_blocking`]
    /// with the same expression [`FeasibleRegion::budget`] always used.
    budget: f64,
}

fn compute_budget(alpha: Alpha, blocking: &[f64]) -> f64 {
    let beta_sum: f64 = blocking.iter().sum();
    (alpha.value() * (1.0 - beta_sum)).max(0.0)
}

impl FeasibleRegion {
    /// The region for deadline-monotonic scheduling of independent tasks
    /// (`α = 1`, no blocking): Equation (13).
    pub fn deadline_monotonic(stages: usize) -> FeasibleRegion {
        FeasibleRegion::with_alpha(stages, Alpha::DEADLINE_MONOTONIC)
    }

    /// The region for an arbitrary fixed-priority policy with
    /// urgency-inversion parameter `alpha`: Equation (12).
    pub fn with_alpha(stages: usize, alpha: Alpha) -> FeasibleRegion {
        let blocking = vec![0.0; stages];
        let budget = compute_budget(alpha, &blocking);
        FeasibleRegion {
            stages,
            alpha,
            blocking,
            budget,
        }
    }

    /// Adds per-stage blocking factors `β_j = max_i B_ij / D_i` for
    /// non-independent tasks under the priority ceiling protocol:
    /// Equation (15).
    ///
    /// # Errors
    ///
    /// Returns [`RegionError::DimensionMismatch`] if `blocking.len()` is not
    /// the number of stages, and [`RegionError::InvalidBlocking`] if any
    /// factor is outside `[0, 1)` or their sum reaches 1 (no budget left).
    pub fn with_blocking(mut self, blocking: Vec<f64>) -> Result<FeasibleRegion, RegionError> {
        if blocking.len() != self.stages {
            return Err(RegionError::DimensionMismatch {
                expected: self.stages,
                got: blocking.len(),
            });
        }
        let mut sum = 0.0;
        for &b in &blocking {
            if !b.is_finite() || !(0.0..1.0).contains(&b) {
                return Err(RegionError::InvalidBlocking { value: b });
            }
            sum += b;
        }
        if sum >= 1.0 {
            return Err(RegionError::InvalidBlocking { value: sum });
        }
        self.blocking = blocking;
        self.budget = compute_budget(self.alpha, &self.blocking);
        Ok(self)
    }

    /// Number of stages (the dimensionality of the utilization space).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// The urgency-inversion parameter.
    pub fn alpha(&self) -> Alpha {
        self.alpha
    }

    /// The per-stage blocking factors `β_j`.
    pub fn blocking(&self) -> &[f64] {
        &self.blocking
    }

    /// The right-hand side of the pipeline inequality:
    /// `α (1 − Σ_j β_j)`.
    pub fn budget(&self) -> f64 {
        self.budget
    }

    /// The vectorized fast-path kernel for this region's pipeline test
    /// (see [`crate::kernel`]): stage count plus the cached budget.
    pub fn kernel(&self) -> RegionKernel {
        RegionKernel::new(self.stages, self.budget)
    }

    /// The left-hand side of the pipeline inequality: `Σ_j f(U_j)`.
    ///
    /// Returns `f64::INFINITY` when any stage is saturated (`U_j ≥ 1`).
    ///
    /// # Errors
    ///
    /// Returns [`RegionError::DimensionMismatch`] for a wrong-length vector
    /// and [`RegionError::InvalidUtilization`] for negative or NaN entries.
    pub fn value(&self, utilizations: &[f64]) -> Result<f64, RegionError> {
        self.check_dims(utilizations)?;
        Ok(utilizations.iter().map(|&u| stage_delay_factor(u)).sum())
    }

    /// Whether the utilization vector lies inside the region — i.e. whether
    /// every admitted task is guaranteed to meet its end-to-end deadline.
    ///
    /// # Errors
    ///
    /// Same as [`FeasibleRegion::value`].
    pub fn contains(&self, utilizations: &[f64]) -> Result<bool, RegionError> {
        Ok(self.value(utilizations)? <= self.budget())
    }

    /// Remaining budget: `α(1 − Σβ) − Σ f(U_j)`. Negative outside the
    /// region; `-∞` when a stage is saturated.
    ///
    /// # Errors
    ///
    /// Same as [`FeasibleRegion::value`].
    pub fn margin(&self, utilizations: &[f64]) -> Result<f64, RegionError> {
        Ok(self.budget() - self.value(utilizations)?)
    }

    /// Evaluates Theorem 2's left-hand side for one task's graph: the
    /// longest path through per-subtask terms `f(U_kj) + β_kj`.
    ///
    /// Multiple subtasks on the same stage read the same utilization entry,
    /// exactly as the paper prescribes for Figure 3's shared-processor
    /// variant.
    ///
    /// # Errors
    ///
    /// Returns [`RegionError::StageOutOfRange`] if the graph references a
    /// stage this region was not built for, plus the errors of
    /// [`FeasibleRegion::value`].
    pub fn graph_value(&self, graph: &TaskGraph, utilizations: &[f64]) -> Result<f64, RegionError> {
        self.check_dims(utilizations)?;
        let mut terms = Vec::with_capacity(graph.len());
        for sub in graph.subtasks() {
            let j = sub.stage.index();
            if j >= self.stages {
                return Err(RegionError::StageOutOfRange {
                    index: j,
                    stages: self.stages,
                });
            }
            terms.push(stage_delay_factor(utilizations[j]) + self.blocking[j]);
        }
        Ok(graph.longest_path(&terms))
    }

    /// Whether Theorem 2's condition `d(f(U)+β) ≤ α` holds for `graph`.
    ///
    /// # Errors
    ///
    /// Same as [`FeasibleRegion::graph_value`].
    pub fn contains_graph(
        &self,
        graph: &TaskGraph,
        utilizations: &[f64],
    ) -> Result<bool, RegionError> {
        Ok(self.graph_value(graph, utilizations)? <= self.alpha.value())
    }

    /// The largest per-stage utilization when load is spread equally:
    /// `f⁻¹(budget / N)`. This is the symmetric point on the bounding
    /// surface.
    pub fn max_equal_utilization(&self) -> f64 {
        if self.stages == 0 {
            return 0.0;
        }
        stage_delay_factor_inverse(self.budget() / self.stages as f64)
    }

    fn check_dims(&self, utilizations: &[f64]) -> Result<(), RegionError> {
        if utilizations.len() != self.stages {
            return Err(RegionError::DimensionMismatch {
                expected: self.stages,
                got: utilizations.len(),
            });
        }
        for &u in utilizations {
            if u.is_nan() || u < 0.0 {
                return Err(RegionError::InvalidUtilization { value: u });
            }
        }
        Ok(())
    }
}

/// A schedulability test over a synthetic-utilization vector, as consumed
/// by the admission controllers in [`crate::admission`].
///
/// Implementations must be *monotone*: if `utils` is feasible then any
/// vector that is pointwise `≤ utils` is feasible too. All of the paper's
/// regions have this property because `f` is increasing.
pub trait RegionTest: std::fmt::Debug {
    /// The dimensionality (number of stages) this test expects.
    fn stages(&self) -> usize;

    /// Whether the utilization vector is inside the feasible region.
    ///
    /// # Panics
    ///
    /// May panic if `utilizations.len() != self.stages()` or entries are
    /// negative/NaN; admission controllers guarantee well-formed input.
    fn feasible(&self, utilizations: &[f64]) -> bool;
}

impl<T: RegionTest + ?Sized> RegionTest for Box<T> {
    fn stages(&self) -> usize {
        (**self).stages()
    }

    fn feasible(&self, utilizations: &[f64]) -> bool {
        (**self).feasible(utilizations)
    }
}

impl RegionTest for FeasibleRegion {
    fn stages(&self) -> usize {
        self.stages
    }

    /// The pipeline-form test `Σ f(U_j) ≤ α(1 − Σβ)`, routed through the
    /// vectorized [`RegionKernel`]: definitive fast verdicts are returned
    /// directly (they provably match the exact test); near-boundary and
    /// ineligible vectors fall back to the exact, validating
    /// [`FeasibleRegion::contains`] path. Pipelines shorter than the
    /// measured crossover skip the kernel entirely (see
    /// [`crate::kernel::SCALAR_CUTOVER`]) — the guard-band bookkeeping
    /// costs more than the exact sum there.
    /// Decision-for-decision identical to calling `contains` alone
    /// (`tests/kernel_differential.rs`).
    // Inline hint: this non-generic impl is called from monomorphized
    // admission loops in other crates; without LTO the hint is what lets
    // the cutover branch and kernel dispatch flatten into the caller.
    #[inline]
    fn feasible(&self, utilizations: &[f64]) -> bool {
        if utilizations.len() < crate::kernel::SCALAR_CUTOVER {
            return self
                .contains(utilizations)
                .expect("well-formed utilization vector");
        }
        self.feasible_vectorized(utilizations)
    }
}

impl FeasibleRegion {
    /// The above-cutover arm of the routed region test: kernel verdict
    /// with exact fallback. Outlined so the short-pipeline fast path the
    /// cutover protects stays small in callers.
    fn feasible_vectorized(&self, utilizations: &[f64]) -> bool {
        match self.kernel().classify(utilizations) {
            FastVerdict::Feasible => true,
            FastVerdict::Infeasible => false,
            FastVerdict::NearBoundary | FastVerdict::Ineligible => self
                .contains(utilizations)
                .expect("well-formed utilization vector"),
        }
    }
}

/// Theorem 2's per-task-class test: the feasible region induced by one task
/// graph shape.
///
/// Systems with heterogeneous task shapes keep one `GraphRegion` per shape
/// and require all of them to hold (see [`AllOf`]).
///
/// # Examples
///
/// ```
/// use frap_core::graph::TaskGraph;
/// use frap_core::region::{FeasibleRegion, GraphRegion, RegionTest};
/// use frap_core::task::{StageId, SubtaskSpec};
/// use frap_core::time::TimeDelta;
///
/// let ms = TimeDelta::from_millis;
/// let g = TaskGraph::fork_join(
///     SubtaskSpec::new(StageId::new(0), ms(1)),
///     vec![
///         SubtaskSpec::new(StageId::new(1), ms(1)),
///         SubtaskSpec::new(StageId::new(2), ms(1)),
///     ],
///     SubtaskSpec::new(StageId::new(3), ms(1)),
/// )?;
/// let region = GraphRegion::new(FeasibleRegion::deadline_monotonic(4), g);
/// // Parallel branches don't add: u on stages 1 and 2 counts once.
/// assert!(region.feasible(&[0.2, 0.4, 0.4, 0.2]));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GraphRegion {
    region: FeasibleRegion,
    graph: TaskGraph,
}

impl GraphRegion {
    /// Combines a base region (α, β, stage count) with a task-graph shape.
    pub fn new(region: FeasibleRegion, graph: TaskGraph) -> GraphRegion {
        GraphRegion { region, graph }
    }

    /// The underlying base region.
    pub fn region(&self) -> &FeasibleRegion {
        &self.region
    }

    /// The task-graph shape this test covers.
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }
}

impl RegionTest for GraphRegion {
    fn stages(&self) -> usize {
        self.region.stages()
    }

    fn feasible(&self, utilizations: &[f64]) -> bool {
        self.region
            .contains_graph(&self.graph, utilizations)
            .expect("well-formed utilization vector and graph")
    }
}

/// Conjunction of region tests: feasible only when *every* member test is.
///
/// Used when the workload mixes task-graph shapes — each shape contributes
/// its Theorem 2 region and the admission controller must keep the system
/// inside the intersection.
#[derive(Debug, Default)]
pub struct AllOf {
    tests: Vec<Box<dyn RegionTest + Send + Sync>>,
}

impl AllOf {
    /// An empty conjunction for `stages` stages (feasible everywhere until
    /// tests are added).
    pub fn new() -> AllOf {
        AllOf { tests: Vec::new() }
    }

    /// Adds a member test.
    ///
    /// # Panics
    ///
    /// Panics if the new test's stage count disagrees with existing members.
    pub fn push<T: RegionTest + Send + Sync + 'static>(&mut self, test: T) -> &mut Self {
        if let Some(first) = self.tests.first() {
            assert_eq!(
                first.stages(),
                test.stages(),
                "all member tests must share the stage count"
            );
        }
        self.tests.push(Box::new(test));
        self
    }

    /// Number of member tests.
    pub fn len(&self) -> usize {
        self.tests.len()
    }

    /// Whether there are no member tests.
    pub fn is_empty(&self) -> bool {
        self.tests.is_empty()
    }
}

impl RegionTest for AllOf {
    fn stages(&self) -> usize {
        self.tests.first().map(|t| t.stages()).unwrap_or(0)
    }

    fn feasible(&self, utilizations: &[f64]) -> bool {
        self.tests.iter().all(|t| t.feasible(utilizations))
    }
}

/// Builds the intersection region for a workload mixing task-graph
/// *shapes*: one Theorem 2 [`GraphRegion`] per distinct precedence shape
/// observed (two graphs share a shape when their subtask→stage assignment
/// and edges coincide — computation times are irrelevant to the region).
///
/// Feed it representative task specs offline, then [`ShapeCatalog::build`]
/// the [`AllOf`] test the admission controller enforces.
///
/// # Examples
///
/// ```
/// use frap_core::graph::TaskGraph;
/// use frap_core::region::{FeasibleRegion, RegionTest, ShapeCatalog};
/// use frap_core::task::{StageId, SubtaskSpec};
/// use frap_core::time::TimeDelta;
///
/// let ms = TimeDelta::from_millis;
/// let chain = TaskGraph::chain(vec![
///     SubtaskSpec::new(StageId::new(0), ms(1)),
///     SubtaskSpec::new(StageId::new(1), ms(2)),
/// ])?;
/// let same_shape = TaskGraph::chain(vec![
///     SubtaskSpec::new(StageId::new(0), ms(9)),  // different times,
///     SubtaskSpec::new(StageId::new(1), ms(9)),  // same shape
/// ])?;
/// let mut catalog = ShapeCatalog::new(FeasibleRegion::deadline_monotonic(2));
/// assert!(catalog.observe(&chain));
/// assert!(!catalog.observe(&same_shape), "deduplicated");
/// let region = catalog.build();
/// assert!(region.feasible(&[0.3, 0.3]));
/// # Ok::<(), frap_core::error::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShapeCatalog {
    base: FeasibleRegion,
    signatures: Vec<ShapeSignature>,
    shapes: Vec<TaskGraph>,
}

/// A shape signature: per-node stage assignment plus the sorted edge list.
type ShapeSignature = (Vec<usize>, Vec<(usize, usize)>);

impl ShapeCatalog {
    /// An empty catalog over the given base region (α, β, stage count).
    pub fn new(base: FeasibleRegion) -> ShapeCatalog {
        ShapeCatalog {
            base,
            signatures: Vec::new(),
            shapes: Vec::new(),
        }
    }

    fn signature(graph: &TaskGraph) -> ShapeSignature {
        let stages: Vec<usize> = graph.subtasks().map(|s| s.stage.index()).collect();
        let mut edges = Vec::new();
        for i in 0..graph.len() {
            for &s in graph.succs(i) {
                edges.push((i, s));
            }
        }
        edges.sort_unstable();
        (stages, edges)
    }

    /// Registers a task's shape; returns `true` when the shape is new.
    pub fn observe(&mut self, graph: &TaskGraph) -> bool {
        let sig = Self::signature(graph);
        if self.signatures.contains(&sig) {
            return false;
        }
        self.signatures.push(sig);
        self.shapes.push(graph.clone());
        true
    }

    /// Number of distinct shapes observed.
    pub fn len(&self) -> usize {
        self.shapes.len()
    }

    /// Whether no shapes have been observed.
    pub fn is_empty(&self) -> bool {
        self.shapes.is_empty()
    }

    /// Builds the conjunction of per-shape Theorem 2 regions.
    pub fn build(&self) -> AllOf {
        let mut all = AllOf::new();
        for shape in &self.shapes {
            all.push(GraphRegion::new(self.base.clone(), shape.clone()));
        }
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::UNIPROCESSOR_BOUND;
    use crate::task::{StageId, SubtaskSpec};
    use crate::time::TimeDelta;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    #[test]
    fn single_stage_reduces_to_uniprocessor_bound() {
        let r = FeasibleRegion::deadline_monotonic(1);
        assert!(r.contains(&[UNIPROCESSOR_BOUND - 1e-9]).unwrap());
        assert!(!r.contains(&[UNIPROCESSOR_BOUND + 1e-9]).unwrap());
        assert!((r.max_equal_utilization() - UNIPROCESSOR_BOUND).abs() < 1e-12);
    }

    #[test]
    fn empty_utilizations_always_feasible() {
        let r = FeasibleRegion::deadline_monotonic(3);
        assert!(r.contains(&[0.0, 0.0, 0.0]).unwrap());
        assert_eq!(r.value(&[0.0, 0.0, 0.0]).unwrap(), 0.0);
        assert_eq!(r.margin(&[0.0, 0.0, 0.0]).unwrap(), 1.0);
    }

    #[test]
    fn saturated_stage_is_infeasible() {
        let r = FeasibleRegion::deadline_monotonic(2);
        assert!(!r.contains(&[1.0, 0.0]).unwrap());
        assert_eq!(r.value(&[1.0, 0.0]).unwrap(), f64::INFINITY);
        assert_eq!(r.margin(&[1.0, 0.0]).unwrap(), f64::NEG_INFINITY);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let r = FeasibleRegion::deadline_monotonic(2);
        assert_eq!(
            r.value(&[0.1]).unwrap_err(),
            RegionError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        );
    }

    #[test]
    fn invalid_utilization_rejected() {
        let r = FeasibleRegion::deadline_monotonic(1);
        assert!(matches!(
            r.value(&[-0.1]).unwrap_err(),
            RegionError::InvalidUtilization { .. }
        ));
        assert!(matches!(
            r.value(&[f64::NAN]).unwrap_err(),
            RegionError::InvalidUtilization { .. }
        ));
    }

    #[test]
    fn alpha_scales_budget() {
        let lax = FeasibleRegion::deadline_monotonic(2);
        let strict = FeasibleRegion::with_alpha(2, Alpha::new(0.5).unwrap());
        assert_eq!(lax.budget(), 1.0);
        assert_eq!(strict.budget(), 0.5);
        let u = [0.3, 0.3]; // value ≈ 0.729
        assert!(lax.contains(&u).unwrap());
        assert!(!strict.contains(&u).unwrap());
    }

    #[test]
    fn blocking_shrinks_budget() {
        let r = FeasibleRegion::deadline_monotonic(2)
            .with_blocking(vec![0.1, 0.2])
            .unwrap();
        assert!((r.budget() - 0.7).abs() < 1e-12);
        assert_eq!(r.blocking(), &[0.1, 0.2]);
    }

    #[test]
    fn blocking_validation() {
        let r = FeasibleRegion::deadline_monotonic(2);
        assert!(r.clone().with_blocking(vec![0.1]).is_err());
        assert!(r.clone().with_blocking(vec![-0.1, 0.0]).is_err());
        assert!(r.clone().with_blocking(vec![1.0, 0.0]).is_err());
        assert!(r.clone().with_blocking(vec![0.6, 0.6]).is_err()); // sum ≥ 1
        assert!(r.clone().with_blocking(vec![f64::NAN, 0.0]).is_err());
        assert!(r.with_blocking(vec![0.3, 0.3]).is_ok());
    }

    #[test]
    fn tsce_reservations_are_certifiable() {
        // Section 5: Equation (13) over (0.4, 0.25, 0.1) gives 0.93 < 1.
        let r = FeasibleRegion::deadline_monotonic(3);
        let v = r.value(&[0.4, 0.25, 0.1]).unwrap();
        assert!((v - 0.93).abs() < 0.005);
        assert!(r.contains(&[0.4, 0.25, 0.1]).unwrap());
    }

    #[test]
    fn region_is_monotone() {
        let r = FeasibleRegion::deadline_monotonic(3);
        let hi = [0.3, 0.2, 0.25];
        let lo = [0.25, 0.2, 0.1];
        assert!(r.value(&lo).unwrap() <= r.value(&hi).unwrap());
    }

    #[test]
    fn chain_graph_value_equals_pipeline_value() {
        let g = TaskGraph::chain(vec![
            SubtaskSpec::new(StageId::new(0), ms(1)),
            SubtaskSpec::new(StageId::new(1), ms(1)),
            SubtaskSpec::new(StageId::new(2), ms(1)),
        ])
        .unwrap();
        let r = FeasibleRegion::deadline_monotonic(3);
        let u = [0.2, 0.3, 0.1];
        let gv = r.graph_value(&g, &u).unwrap();
        let pv = r.value(&u).unwrap();
        assert!((gv - pv).abs() < 1e-12);
    }

    #[test]
    fn figure3_region_expression() {
        // Eq. (16): f(U1) + max(f(U2), f(U3)) + f(U4) ≤ 1.
        let g = TaskGraph::fork_join(
            SubtaskSpec::new(StageId::new(0), ms(1)),
            vec![
                SubtaskSpec::new(StageId::new(1), ms(1)),
                SubtaskSpec::new(StageId::new(2), ms(1)),
            ],
            SubtaskSpec::new(StageId::new(3), ms(1)),
        )
        .unwrap();
        let r = FeasibleRegion::deadline_monotonic(4);
        let u = [0.2, 0.5, 0.3, 0.2];
        let expect = stage_delay_factor(0.2)
            + stage_delay_factor(0.5).max(stage_delay_factor(0.3))
            + stage_delay_factor(0.2);
        assert!((r.graph_value(&g, &u).unwrap() - expect).abs() < 1e-12);
        // The parallel branches give the DAG more room than a 4-chain.
        assert!(r.graph_value(&g, &u).unwrap() < r.value(&u).unwrap());
    }

    #[test]
    fn graph_with_repeated_stage_uses_same_utilization() {
        // Subtasks 0 and 2 both on stage 0: the paper notes U4 = U1 then.
        let g = TaskGraph::chain(vec![
            SubtaskSpec::new(StageId::new(0), ms(1)),
            SubtaskSpec::new(StageId::new(1), ms(1)),
            SubtaskSpec::new(StageId::new(0), ms(1)),
        ])
        .unwrap();
        let r = FeasibleRegion::deadline_monotonic(2);
        let v = r.graph_value(&g, &[0.2, 0.3]).unwrap();
        let expect = 2.0 * stage_delay_factor(0.2) + stage_delay_factor(0.3);
        assert!((v - expect).abs() < 1e-12);
    }

    #[test]
    fn graph_stage_out_of_range() {
        let g = TaskGraph::chain(vec![SubtaskSpec::new(StageId::new(5), ms(1))]).unwrap();
        let r = FeasibleRegion::deadline_monotonic(2);
        assert_eq!(
            r.graph_value(&g, &[0.1, 0.1]).unwrap_err(),
            RegionError::StageOutOfRange {
                index: 5,
                stages: 2
            }
        );
    }

    #[test]
    fn graph_blocking_adds_per_subtask() {
        let g = TaskGraph::chain(vec![
            SubtaskSpec::new(StageId::new(0), ms(1)),
            SubtaskSpec::new(StageId::new(1), ms(1)),
        ])
        .unwrap();
        let r = FeasibleRegion::deadline_monotonic(2)
            .with_blocking(vec![0.05, 0.1])
            .unwrap();
        let v = r.graph_value(&g, &[0.0, 0.0]).unwrap();
        assert!((v - 0.15).abs() < 1e-12);
    }

    #[test]
    fn region_test_trait_objects() {
        let mut all = AllOf::new();
        assert!(all.is_empty());
        assert_eq!(RegionTest::stages(&all), 0);
        all.push(FeasibleRegion::deadline_monotonic(2));
        let g = TaskGraph::chain(vec![
            SubtaskSpec::new(StageId::new(0), ms(1)),
            SubtaskSpec::new(StageId::new(1), ms(1)),
        ])
        .unwrap();
        all.push(GraphRegion::new(FeasibleRegion::deadline_monotonic(2), g));
        assert_eq!(all.len(), 2);
        assert_eq!(RegionTest::stages(&all), 2);
        assert!(all.feasible(&[0.2, 0.2]));
        assert!(!all.feasible(&[0.9, 0.9]));
    }

    #[test]
    #[should_panic(expected = "stage count")]
    fn all_of_rejects_mismatched_stage_counts() {
        let mut all = AllOf::new();
        all.push(FeasibleRegion::deadline_monotonic(2));
        all.push(FeasibleRegion::deadline_monotonic(3));
    }

    #[test]
    fn shape_catalog_distinguishes_structure_not_durations() {
        let mut catalog = ShapeCatalog::new(FeasibleRegion::deadline_monotonic(4));
        assert!(catalog.is_empty());
        let fj = TaskGraph::fork_join(
            SubtaskSpec::new(StageId::new(0), ms(1)),
            vec![
                SubtaskSpec::new(StageId::new(1), ms(1)),
                SubtaskSpec::new(StageId::new(2), ms(1)),
            ],
            SubtaskSpec::new(StageId::new(3), ms(1)),
        )
        .unwrap();
        let fj_other_times = TaskGraph::fork_join(
            SubtaskSpec::new(StageId::new(0), ms(7)),
            vec![
                SubtaskSpec::new(StageId::new(1), ms(7)),
                SubtaskSpec::new(StageId::new(2), ms(7)),
            ],
            SubtaskSpec::new(StageId::new(3), ms(7)),
        )
        .unwrap();
        let chain = TaskGraph::chain(vec![
            SubtaskSpec::new(StageId::new(0), ms(1)),
            SubtaskSpec::new(StageId::new(1), ms(1)),
            SubtaskSpec::new(StageId::new(2), ms(1)),
            SubtaskSpec::new(StageId::new(3), ms(1)),
        ])
        .unwrap();
        assert!(catalog.observe(&fj));
        assert!(!catalog.observe(&fj_other_times));
        assert!(catalog.observe(&chain));
        assert_eq!(catalog.len(), 2);

        // The intersection is at most as permissive as each member: a
        // point feasible for the fork-join alone can be cut by the chain.
        let all = catalog.build();
        assert_eq!(all.len(), 2);
        let branch_heavy = [0.1, 0.45, 0.45, 0.1];
        let fj_only = GraphRegion::new(FeasibleRegion::deadline_monotonic(4), fj);
        assert!(fj_only.feasible(&branch_heavy));
        assert!(!all.feasible(&branch_heavy), "the chain member cuts it");
        assert!(all.feasible(&[0.1, 0.2, 0.2, 0.1]));
    }

    #[test]
    fn shape_catalog_distinguishes_stage_assignment() {
        let mut catalog = ShapeCatalog::new(FeasibleRegion::deadline_monotonic(3));
        let a = TaskGraph::chain(vec![
            SubtaskSpec::new(StageId::new(0), ms(1)),
            SubtaskSpec::new(StageId::new(1), ms(1)),
        ])
        .unwrap();
        let b = TaskGraph::chain(vec![
            SubtaskSpec::new(StageId::new(0), ms(1)),
            SubtaskSpec::new(StageId::new(2), ms(1)),
        ])
        .unwrap();
        assert!(catalog.observe(&a));
        assert!(catalog.observe(&b), "different stages = different shape");
        assert_eq!(catalog.len(), 2);
    }

    #[test]
    fn max_equal_utilization_on_surface() {
        for n in 1..=8 {
            let r = FeasibleRegion::deadline_monotonic(n);
            let u = r.max_equal_utilization();
            let v = r.value(&vec![u; n]).unwrap();
            assert!((v - 1.0).abs() < 1e-9, "n={n} v={v}");
        }
    }
}
