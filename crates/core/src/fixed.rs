//! Binary fixed-point utilization units for lock-free charge accounting.
//!
//! The concurrent service (`frap-service`) charges admitted tasks'
//! synthetic-utilization contributions into per-stage atomic counters.
//! Floating-point accumulation is unusable there: `f64` addition is not
//! associative, so concurrent charge/release interleavings drift, an
//! exact rollback of an optimistic charge is impossible, and an idle
//! stage never returns to exactly zero. This module fixes the currency
//! instead: utilization is held in **integer units**, where addition and
//! subtraction are exact in any order, rollback is bit-identical, and a
//! fully released stage reads exactly `0`.
//!
//! It follows the conversion discipline of [`crate::lease`] (one
//! quantization at the boundary, conservative rounding direction, all
//! arithmetic in integers) but at a **binary** scale rather than lease's
//! decimal 10⁻⁹:
//!
//! * **1 unit = 2⁻⁵³ utilization** ([`FP_ONE`] = 2⁵³ units per Erlang).
//!   Multiplying an `f64` by a power of two only shifts its exponent, so
//!   `u × 2⁵³` is *exact* for every finite `u` — the only rounding in
//!   [`fp_from_utilization`] is the final `ceil` to an integer, an error
//!   under one unit (2⁻⁵³ ≈ 1.1 × 10⁻¹⁶). A decimal scale like lease's
//!   would round every conversion by up to half a unit (5 × 10⁻¹⁰),
//!   which accumulated over live tasks would breach the 10⁻⁹ agreement
//!   the service's oracle suites hold it to against the float library
//!   controller.
//! * **Demands round up** (`ceil`), so a quantized contribution is never
//!   smaller than the real one and the admission test stays conservative
//!   — the same direction [`crate::lease::demand_units`] rounds.
//! * `u64` headroom is 2⁶⁴ ⁻ ⁵³ = 2048 Erlang per stage, orders of
//!   magnitude above any vector the region test could accept.
//!
//! [`feasible_fp`] and [`tentative_feasible_fp`] run the region test
//! directly over unit vectors, converting to `f64` per evaluation; the
//! conversion is exact for utilizations below 1.0 (units < 2⁵³ fit an
//! `f64` mantissa) and rounds by at most 2⁻⁵³ relatively above it.

use crate::region::RegionTest;
use crate::task::StageId;

/// Base-2 exponent of the unit scale: 1 unit = 2⁻⁵³ utilization.
pub const FP_SHIFT: u32 = 53;

/// Units per 1.0 (one Erlang) of utilization.
pub const FP_ONE: u64 = 1 << FP_SHIFT;

/// Converts a utilization to units, rounding **up** (conservative for
/// demands and reservation floors: never understate load). Negative,
/// NaN, and zero inputs map to `0`; values beyond the `u64` range
/// saturate.
#[inline]
pub fn fp_from_utilization(utilization: f64) -> u64 {
    if utilization.is_nan() || utilization <= 0.0 {
        return 0;
    }
    // Exact: multiplying by 2^53 only shifts the exponent.
    let scaled = utilization * FP_ONE as f64;
    if scaled >= u64::MAX as f64 {
        return u64::MAX;
    }
    // Integer ceil of the (exact) product, without `f64::ceil` — which
    // lowers to a libm call on baseline x86-64 and would dominate the
    // quantization cost on the admission hot path. The `as` cast
    // truncates toward zero; values ≥ 2^53 carry no fraction, and below
    // 2^53 both `scaled` and `truncated as f64` are exact, so the
    // comparison recovers the exact ceil.
    let truncated = scaled as u64;
    truncated + u64::from((truncated as f64) < scaled)
}

/// Converts units back to a utilization. Exact below 1.0 Erlang (2⁵³
/// units); above it, rounds to nearest with relative error ≤ 2⁻⁵³.
#[inline]
pub fn utilization_from_fp(units: u64) -> f64 {
    // 2⁻⁵³ is a power of two, so multiplying by it is bit-identical to
    // dividing by 2⁵³ — and a multiply, unlike a divide, pipelines on
    // the decision hot path.
    const FP_INV: f64 = 1.0 / FP_ONE as f64;
    units as f64 * FP_INV
}

/// Converts per-stage `(stage, utilization)` contributions into merged
/// per-stage unit demands, appended to `out` (cleared first) with at
/// most one entry per stage. Merging happens in integer units, so the
/// summed demand a charge adds equals exactly what a later release
/// subtracts.
#[inline]
pub fn fp_contributions_into(contributions: &[(StageId, f64)], out: &mut Vec<(StageId, u64)>) {
    out.clear();
    for &(stage, amount) in contributions {
        let units = fp_from_utilization(amount);
        match out.iter_mut().find(|(s, _)| *s == stage) {
            Some(slot) => slot.1 = slot.1.saturating_add(units),
            None => out.push((stage, units)),
        }
    }
}

/// Whether the unit vector `current_fp` lies inside `region`. `scratch`
/// holds the transient `f64` view (cleared and refilled; kept a
/// parameter so hot paths reuse one allocation).
#[inline]
pub fn feasible_fp<R: RegionTest + ?Sized>(
    region: &R,
    current_fp: &[u64],
    scratch: &mut Vec<f64>,
) -> bool {
    scratch.clear();
    scratch.extend(current_fp.iter().map(|&u| utilization_from_fp(u)));
    region.feasible(scratch)
}

/// Whether charging `contributions` (merged per-stage unit demands) on
/// top of `current_fp` stays inside `region` — the fixed-point analogue
/// of [`crate::admission::tentative_feasible`]. The overlay is summed in
/// integer units, so the tested vector equals bit-for-bit what the
/// post-charge counters would read.
#[inline]
pub fn tentative_feasible_fp<R: RegionTest + ?Sized>(
    region: &R,
    current_fp: &[u64],
    contributions: &[(StageId, u64)],
    scratch: &mut Vec<f64>,
) -> bool {
    scratch.clear();
    scratch.extend(current_fp.iter().map(|&u| utilization_from_fp(u)));
    for &(stage, units) in contributions {
        let j = stage.index();
        scratch[j] = utilization_from_fp(current_fp[j].saturating_add(units));
    }
    region.feasible(scratch)
}

/// [`tentative_feasible_fp`] taking the contributions still in float
/// form: each amount is quantized exactly as [`fp_contributions_into`]
/// would (per-piece `ceil`, accumulation in integer units) and overlaid
/// without materializing the merged demand vector. Verdicts are
/// bit-identical to converting first; paths that reject most arrivals
/// save the conversion pass entirely and quantize only on the admit
/// branch. `units_scratch` holds the overlaid unit vector.
#[inline]
pub fn tentative_feasible_fp_overlay<R: RegionTest + ?Sized>(
    region: &R,
    current_fp: &[u64],
    contributions: &[(StageId, f64)],
    units_scratch: &mut Vec<u64>,
    scratch: &mut Vec<f64>,
) -> bool {
    units_scratch.clear();
    units_scratch.extend_from_slice(current_fp);
    for &(stage, amount) in contributions {
        let j = stage.index();
        units_scratch[j] = units_scratch[j].saturating_add(fp_from_utilization(amount));
    }
    scratch.clear();
    scratch.extend(units_scratch.iter().map(|&u| utilization_from_fp(u)));
    region.feasible(scratch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::region::FeasibleRegion;

    #[test]
    fn conversion_is_exact_up_to_the_ceil() {
        for &u in &[0.0, 1e-12, 0.1, 0.25, 0.5, 0.75, 0.999, 1.0, 1.5] {
            let units = fp_from_utilization(u);
            let back = utilization_from_fp(units);
            assert!(back >= u, "ceil must never understate: {u} -> {back}");
            assert!(back - u <= 2.0 / FP_ONE as f64, "{u} -> {back}");
        }
        // Dyadic rationals convert without any rounding at all.
        assert_eq!(fp_from_utilization(0.5), FP_ONE / 2);
        assert_eq!(utilization_from_fp(FP_ONE / 4), 0.25);
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        assert_eq!(fp_from_utilization(-1.0), 0);
        assert_eq!(fp_from_utilization(f64::NAN), 0);
        assert_eq!(fp_from_utilization(f64::INFINITY), u64::MAX);
        assert_eq!(fp_from_utilization(4096.0), u64::MAX, "beyond u64 headroom");
    }

    #[test]
    fn contributions_merge_per_stage_in_units() {
        let s = StageId::new;
        let mut out = Vec::new();
        fp_contributions_into(&[(s(1), 0.25), (s(0), 0.5), (s(1), 0.125)], &mut out);
        assert_eq!(
            out,
            vec![(s(1), FP_ONE / 4 + FP_ONE / 8), (s(0), FP_ONE / 2)]
        );
    }

    #[test]
    fn tentative_fp_agrees_with_direct_overlay() {
        let region = FeasibleRegion::deadline_monotonic(2);
        let current = vec![fp_from_utilization(0.1), fp_from_utilization(0.1)];
        let mut scratch = Vec::new();
        let small = vec![(StageId::new(0), fp_from_utilization(0.05))];
        assert!(tentative_feasible_fp(
            &region,
            &current,
            &small,
            &mut scratch
        ));
        let huge = vec![
            (StageId::new(0), fp_from_utilization(0.9)),
            (StageId::new(1), fp_from_utilization(0.9)),
        ];
        assert!(!tentative_feasible_fp(
            &region,
            &current,
            &huge,
            &mut scratch
        ));
        // The plain (no-overlay) form sees the same boundary.
        assert!(feasible_fp(&region, &current, &mut scratch));
    }
}
