//! The stage delay theorem (Theorem 1) and its algebra.
//!
//! The paper's central analytical device: if the synthetic utilization of
//! stage `j` never exceeds `U_j`, then the time any task spends at stage `j`
//! is at most
//!
//! ```text
//! L_j ≤ f(U_j) · D_max,     f(u) = u (1 − u/2) / (1 − u)
//! ```
//!
//! where `D_max` is the maximum relative deadline of a higher-priority task.
//! Summing `f` along a pipeline (or taking the longest path through a DAG)
//! and comparing against the urgency-inversion parameter `α` yields the
//! feasible region (see [`crate::region`]).
//!
//! `f` is strictly increasing and convex on `[0, 1)` with `f(0) = 0` and
//! `f(u) → ∞` as `u → 1`; its inverse has the closed form
//! `f⁻¹(x) = 1 + x − √(1 + x²)`. Setting `f(U) = 1` recovers the
//! uniprocessor aperiodic bound `U = 2 − √2 = 1/(1 + √½) ≈ 0.586` of
//! Abdelzaher & Lu, which the paper uses as its single-resource sanity
//! check.

use crate::time::TimeDelta;

/// The uniprocessor aperiodic utilization bound `2 − √2 = 1/(1 + √½)`.
///
/// This is the single point the feasible region collapses to for `N = 1`
/// under deadline-monotonic scheduling.
///
/// # Examples
///
/// ```
/// use frap_core::delay::{stage_delay_factor, UNIPROCESSOR_BOUND};
/// assert!((stage_delay_factor(UNIPROCESSOR_BOUND) - 1.0).abs() < 1e-12);
/// assert!((UNIPROCESSOR_BOUND - 0.5857864376269049).abs() < 1e-15);
/// ```
pub const UNIPROCESSOR_BOUND: f64 = 2.0 - std::f64::consts::SQRT_2;

/// The normalized stage-delay function `f(u) = u (1 − u/2) / (1 − u)`.
///
/// `f(u) · D_max` upper-bounds the delay a task experiences at a stage
/// whose synthetic utilization never exceeds `u` (Theorem 1).
///
/// Returns `f64::INFINITY` for `u ≥ 1` (the bound degenerates as the stage
/// saturates) and propagates `NaN` inputs.
///
/// # Panics
///
/// Debug builds panic on negative input; release builds return a
/// meaningless negative value, so validate inputs at the API boundary
/// (see [`crate::region::FeasibleRegion`]).
///
/// # Examples
///
/// ```
/// use frap_core::delay::stage_delay_factor;
/// assert_eq!(stage_delay_factor(0.0), 0.0);
/// assert!((stage_delay_factor(0.5) - 0.75).abs() < 1e-12);
/// assert_eq!(stage_delay_factor(1.0), f64::INFINITY);
/// ```
#[inline]
pub fn stage_delay_factor(u: f64) -> f64 {
    // NaN-tolerant check: `!(u < 0.0)` accepts NaN (which propagates).
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    {
        debug_assert!(!(u < 0.0), "synthetic utilization must be non-negative");
    }
    if u >= 1.0 {
        return f64::INFINITY;
    }
    u * (1.0 - 0.5 * u) / (1.0 - u)
}

/// The inverse of [`stage_delay_factor`] on `[0, 1)`:
/// `f⁻¹(x) = 1 + x − √(1 + x²)`.
///
/// Given a normalized per-stage delay budget `x`, returns the largest
/// synthetic utilization a stage may carry while its delay bound stays
/// within `x · D_max`.
///
/// # Examples
///
/// ```
/// use frap_core::delay::{stage_delay_factor_inverse, UNIPROCESSOR_BOUND};
/// // A full budget of 1 recovers the uniprocessor bound.
/// assert!((stage_delay_factor_inverse(1.0) - UNIPROCESSOR_BOUND).abs() < 1e-12);
/// ```
#[inline]
pub fn stage_delay_factor_inverse(x: f64) -> f64 {
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    {
        debug_assert!(!(x < 0.0), "delay budget must be non-negative");
    }
    1.0 + x - (1.0 + x * x).sqrt()
}

/// First derivative of [`stage_delay_factor`]:
/// `f′(u) = 1 + (u − u²/2) / (1 − u)²`.
///
/// Strictly greater than 1 on `(0, 1)`, witnessing that `f` is strictly
/// increasing; used in tests and by search-based admission planners.
#[inline]
pub fn stage_delay_factor_derivative(u: f64) -> f64 {
    #[allow(clippy::neg_cmp_op_on_partial_ord)]
    {
        debug_assert!(!(u < 0.0));
    }
    if u >= 1.0 {
        return f64::INFINITY;
    }
    let one_minus = 1.0 - u;
    1.0 + (u - 0.5 * u * u) / (one_minus * one_minus)
}

/// The absolute delay bound of Theorem 1: `L_j ≤ f(u) · D_max`.
///
/// Returns [`TimeDelta::MAX`] when the factor is infinite (stage
/// saturated).
///
/// # Examples
///
/// ```
/// use frap_core::delay::stage_delay_bound;
/// use frap_core::time::TimeDelta;
/// let d_max = TimeDelta::from_secs(1);
/// // A half-utilized stage delays a task at most 0.75 s.
/// assert_eq!(stage_delay_bound(0.5, d_max), TimeDelta::from_millis(750));
/// ```
pub fn stage_delay_bound(u: f64, d_max: TimeDelta) -> TimeDelta {
    let factor = stage_delay_factor(u);
    if !factor.is_finite() {
        return TimeDelta::MAX;
    }
    d_max.mul_f64(factor)
}

/// The largest per-stage synthetic utilization for an `n`-stage pipeline in
/// which all stages carry equal load: `f⁻¹(budget / n)`.
///
/// `budget` is the right-hand side of the region inequality — 1 for
/// deadline-monotonic scheduling, `α (1 − Σ β_j)` in general.
///
/// Returns 0 when `n == 0`.
///
/// # Examples
///
/// ```
/// use frap_core::delay::{symmetric_stage_bound, UNIPROCESSOR_BOUND};
/// assert!((symmetric_stage_bound(1, 1.0) - UNIPROCESSOR_BOUND).abs() < 1e-12);
/// // With more stages, each stage must be kept lighter…
/// assert!(symmetric_stage_bound(2, 1.0) < symmetric_stage_bound(1, 1.0));
/// // …but scales as O(1/n), so the aggregate budget does not collapse.
/// assert!(symmetric_stage_bound(10, 1.0) > 0.09);
/// ```
pub fn symmetric_stage_bound(n: usize, budget: f64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    stage_delay_factor_inverse(budget / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_at_zero_is_zero() {
        assert_eq!(stage_delay_factor(0.0), 0.0);
    }

    #[test]
    fn factor_saturates_at_one() {
        assert_eq!(stage_delay_factor(1.0), f64::INFINITY);
        assert_eq!(stage_delay_factor(1.5), f64::INFINITY);
    }

    #[test]
    fn factor_known_values() {
        // f(0.5) = 0.5 * 0.75 / 0.5 = 0.75
        assert!((stage_delay_factor(0.5) - 0.75).abs() < 1e-12);
        // f(2 − √2) = 1 (the uniprocessor bound)
        assert!((stage_delay_factor(UNIPROCESSOR_BOUND) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tsce_certification_value() {
        // Section 5: reserved synthetic utilizations 0.4, 0.25, 0.1 sum to
        // 0.93 under Equation (13) — the paper's certification arithmetic.
        let v = stage_delay_factor(0.4) + stage_delay_factor(0.25) + stage_delay_factor(0.1);
        assert!((v - 0.93).abs() < 0.005, "got {v}");
        assert!(v < 1.0);
    }

    #[test]
    fn inverse_roundtrips() {
        for i in 0..100 {
            let u = i as f64 / 101.0;
            let x = stage_delay_factor(u);
            let back = stage_delay_factor_inverse(x);
            assert!((back - u).abs() < 1e-9, "u={u} back={back}");
        }
    }

    #[test]
    fn inverse_of_one_is_uniprocessor_bound() {
        assert!((stage_delay_factor_inverse(1.0) - UNIPROCESSOR_BOUND).abs() < 1e-12);
    }

    #[test]
    fn factor_strictly_increasing() {
        let mut prev = -1.0;
        for i in 0..1000 {
            let u = i as f64 / 1000.0;
            let v = stage_delay_factor(u);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        for i in 1..90 {
            let u = i as f64 / 100.0;
            let h = 1e-7;
            let fd = (stage_delay_factor(u + h) - stage_delay_factor(u - h)) / (2.0 * h);
            let an = stage_delay_factor_derivative(u);
            assert!((fd - an).abs() < 1e-4, "u={u} fd={fd} an={an}");
        }
    }

    #[test]
    fn derivative_at_least_one() {
        assert!((stage_delay_factor_derivative(0.0) - 1.0).abs() < 1e-12);
        for i in 1..100 {
            let u = i as f64 / 100.0;
            assert!(stage_delay_factor_derivative(u) > 1.0);
        }
        assert_eq!(stage_delay_factor_derivative(1.0), f64::INFINITY);
    }

    #[test]
    fn delay_bound_scales_with_dmax() {
        let d = TimeDelta::from_secs(2);
        assert_eq!(stage_delay_bound(0.5, d), TimeDelta::from_millis(1500));
        assert_eq!(stage_delay_bound(1.0, d), TimeDelta::MAX);
        assert_eq!(stage_delay_bound(0.0, d), TimeDelta::ZERO);
    }

    #[test]
    fn symmetric_bound_properties() {
        assert_eq!(symmetric_stage_bound(0, 1.0), 0.0);
        let mut prev = 1.0;
        for n in 1..=16 {
            let b = symmetric_stage_bound(n, 1.0);
            assert!(b < prev, "bound must shrink with more stages");
            assert!(b > 0.0);
            prev = b;
        }
        // O(1/n): n·f(bound(n)) == budget exactly.
        for n in 1..=16 {
            let b = symmetric_stage_bound(n, 1.0);
            let total = n as f64 * stage_delay_factor(b);
            assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn symmetric_bound_with_reduced_budget() {
        // Blocking/urgency inversion shrink the budget and thus the bound.
        assert!(symmetric_stage_bound(2, 0.5) < symmetric_stage_bound(2, 1.0));
        assert_eq!(symmetric_stage_bound(2, 0.0), 0.0);
    }

    #[test]
    fn nan_propagates() {
        assert!(stage_delay_factor(f64::NAN).is_nan());
    }
}
