//! Error types for `frap-core`.

use std::error::Error as StdError;
use std::fmt;

/// Errors from constructing or validating a task graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// The graph has no subtasks.
    Empty,
    /// An edge referenced a subtask index that does not exist.
    NodeOutOfRange {
        /// The offending subtask index.
        index: usize,
        /// Number of subtasks in the graph.
        len: usize,
    },
    /// An edge connected a subtask to itself.
    SelfLoop {
        /// The subtask with the self-edge.
        index: usize,
    },
    /// The precedence relation contains a cycle.
    Cycle,
    /// A subtask has no segments (zero-length subtasks must still have one
    /// empty segment to be well-formed).
    EmptySubtask {
        /// The offending subtask index.
        index: usize,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Empty => write!(f, "task graph has no subtasks"),
            GraphError::NodeOutOfRange { index, len } => write!(
                f,
                "edge references subtask {index} but the graph has {len} subtasks"
            ),
            GraphError::SelfLoop { index } => {
                write!(f, "subtask {index} has a precedence edge to itself")
            }
            GraphError::Cycle => write!(f, "precedence relation contains a cycle"),
            GraphError::EmptySubtask { index } => {
                write!(f, "subtask {index} has no execution segments")
            }
        }
    }
}

impl StdError for GraphError {}

/// Errors from feasible-region construction and evaluation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RegionError {
    /// A utilization value was negative, NaN, or otherwise unusable.
    InvalidUtilization {
        /// The offending value.
        value: f64,
    },
    /// The urgency-inversion parameter `alpha` must lie in (0, 1].
    InvalidAlpha {
        /// The offending value.
        value: f64,
    },
    /// A per-stage blocking factor `beta_j` must lie in [0, 1).
    InvalidBlocking {
        /// The offending value.
        value: f64,
    },
    /// The utilization vector length does not match the number of stages.
    DimensionMismatch {
        /// Stages the region was built for.
        expected: usize,
        /// Length of the vector supplied.
        got: usize,
    },
    /// A referenced stage index is out of range for this system.
    StageOutOfRange {
        /// The offending stage index.
        index: usize,
        /// Number of stages in the system.
        stages: usize,
    },
}

impl fmt::Display for RegionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegionError::InvalidUtilization { value } => {
                write!(f, "invalid synthetic utilization {value}")
            }
            RegionError::InvalidAlpha { value } => write!(
                f,
                "urgency-inversion parameter alpha must be in (0, 1], got {value}"
            ),
            RegionError::InvalidBlocking { value } => {
                write!(f, "blocking factor beta must be in [0, 1), got {value}")
            }
            RegionError::DimensionMismatch { expected, got } => {
                write!(f, "expected {expected} per-stage utilizations, got {got}")
            }
            RegionError::StageOutOfRange { index, stages } => write!(
                f,
                "stage index {index} out of range for a {stages}-stage system"
            ),
        }
    }
}

impl StdError for RegionError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_errors_display() {
        let cases: Vec<GraphError> = vec![
            GraphError::Empty,
            GraphError::NodeOutOfRange { index: 5, len: 3 },
            GraphError::SelfLoop { index: 1 },
            GraphError::Cycle,
            GraphError::EmptySubtask { index: 0 },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn region_errors_display() {
        let cases: Vec<RegionError> = vec![
            RegionError::InvalidUtilization { value: -1.0 },
            RegionError::InvalidAlpha { value: 2.0 },
            RegionError::InvalidBlocking { value: 1.0 },
            RegionError::DimensionMismatch {
                expected: 3,
                got: 2,
            },
            RegionError::StageOutOfRange {
                index: 9,
                stages: 3,
            },
        ];
        for e in cases {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn errors_are_std_errors() {
        fn assert_err<E: StdError + Send + Sync + 'static>() {}
        assert_err::<GraphError>();
        assert_err::<RegionError>();
    }
}
