//! Synthetic (instantaneous) utilization tracking (Sections 2 and 4).
//!
//! The synthetic utilization of stage `j` at time `t` is
//! `U_j(t) = Σ_{T_i ∈ S(t)} C_ij / D_i` over the *current* tasks
//! `S(t) = {T_i | A_i ≤ t < A_i + D_i}` — tasks that have arrived and whose
//! deadlines have not yet expired. The admission controller keeps one
//! counter per stage:
//!
//! * **increment** by `C_ij / D_i` on every stage when a task is admitted
//!   (at its arrival to the first stage);
//! * **decrement** when the task's absolute deadline passes;
//! * **reset on idle** — the paper's key pessimism-reduction tool: when a
//!   stage becomes idle, contributions of tasks that already *departed*
//!   that stage are removed immediately (they cannot affect the stage's
//!   future schedule), down to a configured reservation floor.
//!
//! Reservations (Section 5) pre-load a counter with `U_j^res` for critical
//! tasks; the floor survives idle resets.

use crate::task::{StageId, TaskId};
use crate::time::Time;
use std::cmp::Reverse;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::{BinaryHeap, HashMap};

/// Overlays a tentative arrival's contributions on a utilization vector in
/// place — the single implementation of the "charge tentatively" step of
/// the admission test, shared by [`SyntheticState::utilizations_with`] and
/// the concurrent sharded counters in `frap-service`.
///
/// # Panics
///
/// Panics if a stage index is out of range for `vector`.
pub fn overlay_contributions(vector: &mut [f64], contributions: &[(StageId, f64)]) {
    for &(stage, amount) in contributions {
        vector[stage.index()] += amount;
    }
}

#[derive(Debug, Clone)]
struct Contribution {
    amount: f64,
    expiry: Time,
    departed: bool,
}

/// The synthetic-utilization counter of a single stage.
///
/// Tracks live per-task contributions with their expiry instants, a
/// reservation floor, and departure flags for idle resets. All operations
/// are `O(log n)` or better in the number of live tasks.
///
/// # Examples
///
/// ```
/// use frap_core::synthetic::StageTracker;
/// use frap_core::task::TaskId;
/// use frap_core::time::Time;
///
/// let mut tr = StageTracker::new(0.0);
/// tr.add(TaskId::new(1), 0.25, Time::from_secs(1));
/// assert_eq!(tr.value(), 0.25);
/// tr.advance_to(Time::from_secs(1)); // deadline reached → decrement
/// assert_eq!(tr.value(), 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct StageTracker {
    reserved: f64,
    extra: f64,
    peak: f64,
    entries: HashMap<TaskId, Contribution>,
    expiry_heap: BinaryHeap<Reverse<(Time, TaskId)>>,
    /// Tasks flagged by [`StageTracker::mark_departed`], in departure
    /// order, validated lazily — an idle reset touches only departed
    /// tasks instead of scanning every live entry.
    departed: Vec<TaskId>,
}

impl StageTracker {
    /// Creates a tracker with a reservation floor (0 for none).
    ///
    /// # Panics
    ///
    /// Panics if `reserved` is negative or not finite.
    pub fn new(reserved: f64) -> StageTracker {
        assert!(
            reserved.is_finite() && reserved >= 0.0,
            "reservation must be a finite non-negative utilization"
        );
        StageTracker {
            reserved,
            extra: 0.0,
            peak: reserved,
            entries: HashMap::new(),
            expiry_heap: BinaryHeap::new(),
            departed: Vec::new(),
        }
    }

    /// Current synthetic utilization: reservation floor plus the sum of
    /// live contributions.
    #[inline]
    pub fn value(&self) -> f64 {
        self.reserved + self.extra
    }

    /// The reservation floor `U_j^res`.
    #[inline]
    pub fn reserved(&self) -> f64 {
        self.reserved
    }

    /// The highest synthetic utilization ever observed (watermark). This
    /// is the `U_j` of Theorem 1: stage delays are bounded by
    /// `f(peak) · D_max` as long as utilization never exceeded the peak.
    #[inline]
    pub fn peak(&self) -> f64 {
        self.peak
    }

    /// Number of live (unexpired, unshed) contributions.
    pub fn live_tasks(&self) -> usize {
        self.entries.len()
    }

    /// Whether `task` currently contributes to this stage.
    pub fn contains(&self, task: TaskId) -> bool {
        self.entries.contains_key(&task)
    }

    /// The live contribution of `task`, if any.
    pub fn contribution(&self, task: TaskId) -> Option<f64> {
        self.entries.get(&task).map(|c| c.amount)
    }

    /// Registers a task's contribution `C_ij / D_i`, expiring at the task's
    /// absolute deadline. Re-adding a task accumulates its contribution and
    /// keeps the later expiry (multiple subtasks of one task on one stage
    /// are normally pre-summed by [`crate::graph::TaskSpec::contributions`]).
    ///
    /// # Panics
    ///
    /// Panics if `amount` is negative or not finite.
    pub fn add(&mut self, task: TaskId, amount: f64, expiry: Time) {
        assert!(
            amount.is_finite() && amount >= 0.0,
            "contribution must be a finite non-negative utilization"
        );
        match self.entries.entry(task) {
            MapEntry::Occupied(mut o) => {
                let c = o.get_mut();
                c.amount += amount;
                if expiry > c.expiry {
                    c.expiry = expiry;
                    self.expiry_heap.push(Reverse((expiry, task)));
                }
            }
            MapEntry::Vacant(v) => {
                v.insert(Contribution {
                    amount,
                    expiry,
                    departed: false,
                });
                self.expiry_heap.push(Reverse((expiry, task)));
            }
        }
        self.extra += amount;
        if self.value() > self.peak {
            self.peak = self.value();
        }
    }

    /// Removes every contribution whose expiry is at or before `now`
    /// (the decrement-at-deadline rule). Returns the number removed.
    pub fn advance_to(&mut self, now: Time) -> usize {
        let mut removed = 0;
        while let Some(&Reverse((expiry, task))) = self.expiry_heap.peek() {
            if expiry > now {
                break;
            }
            self.expiry_heap.pop();
            // Lazy deletion: the entry may have been shed, reset, or
            // superseded by a later expiry.
            if let Some(c) = self.entries.get(&task) {
                if c.expiry == expiry {
                    let c = self.entries.remove(&task).expect("entry just observed");
                    self.extra -= c.amount;
                    removed += 1;
                }
            }
        }
        self.normalize();
        removed
    }

    /// Marks `task` as departed from this stage (its last subtask here has
    /// finished), making it eligible for removal at the next idle reset.
    pub fn mark_departed(&mut self, task: TaskId) {
        if let Some(c) = self.entries.get_mut(&task) {
            if !c.departed {
                c.departed = true;
                self.departed.push(task);
            }
        }
    }

    /// The idle reset (Section 4): removes contributions of all departed
    /// tasks, as they can no longer affect this stage's schedule. Call when
    /// the stage has no running or ready subtask. Returns the number
    /// removed. The reservation floor is untouched.
    ///
    /// `O(departed)`: only the tasks flagged since the last reset are
    /// visited (lazily revalidated — an expiry or shed may have removed
    /// them already), never the full live set.
    pub fn reset_idle(&mut self) -> usize {
        let mut removed = 0;
        let mut departed = std::mem::take(&mut self.departed);
        for task in departed.drain(..) {
            if self.entries.get(&task).is_some_and(|c| c.departed) {
                let c = self.entries.remove(&task).expect("entry just observed");
                self.extra -= c.amount;
                removed += 1;
            }
        }
        self.departed = departed;
        self.normalize();
        removed
    }

    /// Forcibly removes a task's contribution (load shedding). Returns the
    /// removed amount, or `None` if the task was not live here.
    pub fn shed(&mut self, task: TaskId) -> Option<f64> {
        let c = self.entries.remove(&task)?;
        self.extra -= c.amount;
        self.normalize();
        Some(c.amount)
    }

    /// Sheds `task` but keeps up to `retained` of its contribution charged
    /// (clamped to the live amount), marking the remainder departed so the
    /// normal idle-reset and deadline rules reclaim it.
    ///
    /// This is the accounting-sound eviction: a task killed mid-execution
    /// has already inflicted interference equal to its executed work, and
    /// that share of its charge must stay on the counter until the stage
    /// idles or the task's deadline passes — exactly as if a task with that
    /// smaller computation time had been admitted and completed. Reclaiming
    /// it immediately (plain [`StageTracker::shed`]) hands already-consumed
    /// capacity to the next arrival and voids the region guarantee.
    ///
    /// Returns the amount reclaimed immediately, or `None` if the task was
    /// not live here.
    ///
    /// # Panics
    ///
    /// Panics if `retained` is negative or not finite.
    pub fn shed_retaining(&mut self, task: TaskId, retained: f64) -> Option<f64> {
        assert!(
            retained.is_finite() && retained >= 0.0,
            "retained charge must be a finite non-negative utilization"
        );
        let c = self.entries.get_mut(&task)?;
        let keep = retained.min(c.amount);
        let reclaimed = c.amount - keep;
        if keep <= 0.0 {
            let c = self.entries.remove(&task).expect("entry just observed");
            self.extra -= c.amount;
        } else {
            c.amount = keep;
            if !c.departed {
                c.departed = true;
                self.departed.push(task);
            }
            self.extra -= reclaimed;
        }
        self.normalize();
        Some(reclaimed)
    }

    /// Exact recomputation of the live sum — counters drift by at most
    /// float rounding; this is used by tests and long-running deployments.
    pub fn recompute(&mut self) {
        self.extra = self.entries.values().map(|c| c.amount).sum();
    }

    fn normalize(&mut self) {
        if self.entries.is_empty() {
            // Pin to the floor exactly: no drift survives an empty tracker.
            self.extra = 0.0;
        } else if self.extra < 0.0 {
            self.extra = 0.0;
        }
    }
}

/// The synthetic-utilization state of a whole `N`-stage system: one
/// [`StageTracker`] per stage plus a scratch vector for region tests.
///
/// # Examples
///
/// ```
/// use frap_core::synthetic::SyntheticState;
/// use frap_core::task::{StageId, TaskId};
/// use frap_core::time::Time;
///
/// let mut st = SyntheticState::new(2);
/// st.add_task(
///     TaskId::new(0),
///     &[(StageId::new(0), 0.1), (StageId::new(1), 0.2)],
///     Time::from_secs(1),
/// );
/// assert_eq!(st.utilizations(), &[0.1, 0.2]);
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticState {
    stages: Vec<StageTracker>,
    scratch: Vec<f64>,
}

impl SyntheticState {
    /// A system of `stages` stages with no reservations.
    pub fn new(stages: usize) -> SyntheticState {
        SyntheticState {
            stages: (0..stages).map(|_| StageTracker::new(0.0)).collect(),
            scratch: vec![0.0; stages],
        }
    }

    /// A system with per-stage reservation floors (Section 5).
    ///
    /// # Panics
    ///
    /// Panics if any reservation is negative or not finite.
    pub fn with_reservations(reservations: &[f64]) -> SyntheticState {
        SyntheticState {
            stages: reservations.iter().map(|&r| StageTracker::new(r)).collect(),
            scratch: vec![0.0; reservations.len()],
        }
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// The tracker for one stage.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn stage(&self, stage: StageId) -> &StageTracker {
        &self.stages[stage.index()]
    }

    /// Mutable access to one stage's tracker.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range.
    pub fn stage_mut(&mut self, stage: StageId) -> &mut StageTracker {
        &mut self.stages[stage.index()]
    }

    /// Applies the decrement-at-deadline rule on every stage.
    pub fn advance_to(&mut self, now: Time) {
        for s in &mut self.stages {
            s.advance_to(now);
        }
    }

    /// Adds a task's contributions (one `(stage, C_ij/D_i)` pair per stage
    /// it uses), all expiring at the task's absolute deadline.
    ///
    /// # Panics
    ///
    /// Panics if a stage index is out of range or a contribution is
    /// negative/not finite.
    pub fn add_task(&mut self, task: TaskId, contributions: &[(StageId, f64)], expiry: Time) {
        for &(stage, amount) in contributions {
            self.stages[stage.index()].add(task, amount, expiry);
        }
    }

    /// Removes a task from every stage (load shedding). Returns the total
    /// contribution removed.
    pub fn shed_task(&mut self, task: TaskId) -> f64 {
        self.stages.iter_mut().filter_map(|s| s.shed(task)).sum()
    }

    /// Sheds a task from every stage while retaining the given per-stage
    /// charges (its already-executed work, as utilization `e_j / D_i`);
    /// see [`StageTracker::shed_retaining`]. Stages absent from `retained`
    /// reclaim their full contribution. Returns the total reclaimed.
    ///
    /// # Panics
    ///
    /// Panics if a retained charge is negative/not finite or its stage
    /// index is out of range.
    pub fn shed_task_retaining(&mut self, task: TaskId, retained: &[(StageId, f64)]) -> f64 {
        for &(stage, _) in retained {
            assert!(stage.index() < self.stages.len(), "stage out of range");
        }
        let mut reclaimed = 0.0;
        for (i, s) in self.stages.iter_mut().enumerate() {
            let keep: f64 = retained
                .iter()
                .filter(|&&(stage, _)| stage.index() == i)
                .map(|&(_, amount)| amount)
                .sum();
            if let Some(r) = s.shed_retaining(task, keep) {
                reclaimed += r;
            }
        }
        reclaimed
    }

    /// The current utilization vector `(U_1, …, U_N)`.
    pub fn utilizations(&mut self) -> &[f64] {
        for (i, s) in self.stages.iter().enumerate() {
            self.scratch[i] = s.value();
        }
        &self.scratch
    }

    /// The utilization vector as the system would look *after* admitting a
    /// task with the given contributions — the admission controller's
    /// tentative test vector, computed without mutating any tracker.
    ///
    /// # Panics
    ///
    /// Panics if a stage index is out of range.
    pub fn utilizations_with(&mut self, contributions: &[(StageId, f64)]) -> &[f64] {
        for (i, s) in self.stages.iter().enumerate() {
            self.scratch[i] = s.value();
        }
        overlay_contributions(&mut self.scratch, contributions);
        &self.scratch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(task: u64) -> TaskId {
        TaskId::new(task)
    }

    fn at(secs: u64) -> Time {
        Time::from_secs(secs)
    }

    #[test]
    fn add_and_expire() {
        let mut tr = StageTracker::new(0.0);
        tr.add(t(1), 0.2, at(10));
        tr.add(t(2), 0.3, at(20));
        assert!((tr.value() - 0.5).abs() < 1e-12);
        assert_eq!(tr.live_tasks(), 2);

        assert_eq!(tr.advance_to(at(9)), 0);
        assert_eq!(tr.advance_to(at(10)), 1); // deadline inclusive
        assert!((tr.value() - 0.3).abs() < 1e-12);
        assert_eq!(tr.advance_to(at(30)), 1);
        assert_eq!(tr.value(), 0.0);
        assert_eq!(tr.live_tasks(), 0);
    }

    #[test]
    fn reservation_is_a_floor() {
        let mut tr = StageTracker::new(0.4);
        assert_eq!(tr.value(), 0.4);
        tr.add(t(1), 0.1, at(5));
        assert!((tr.value() - 0.5).abs() < 1e-12);
        tr.advance_to(at(5));
        assert_eq!(tr.value(), 0.4);
        tr.mark_departed(t(2)); // unknown task: no-op
        tr.reset_idle();
        assert_eq!(tr.value(), 0.4);
    }

    #[test]
    #[should_panic(expected = "reservation")]
    fn negative_reservation_panics() {
        let _ = StageTracker::new(-0.1);
    }

    #[test]
    #[should_panic(expected = "contribution")]
    fn negative_contribution_panics() {
        let mut tr = StageTracker::new(0.0);
        tr.add(t(1), -0.1, at(1));
    }

    #[test]
    fn idle_reset_removes_only_departed() {
        let mut tr = StageTracker::new(0.0);
        tr.add(t(1), 0.2, at(100));
        tr.add(t(2), 0.3, at(100));
        tr.mark_departed(t(1));
        assert_eq!(tr.reset_idle(), 1);
        assert!((tr.value() - 0.3).abs() < 1e-12);
        assert!(!tr.contains(t(1)));
        assert!(tr.contains(t(2)));
    }

    #[test]
    fn shed_removes_any_live_task() {
        let mut tr = StageTracker::new(0.0);
        tr.add(t(1), 0.2, at(100));
        assert_eq!(tr.shed(t(1)), Some(0.2));
        assert_eq!(tr.shed(t(1)), None);
        assert_eq!(tr.value(), 0.0);
    }

    #[test]
    fn shed_retaining_keeps_executed_share() {
        let mut tr = StageTracker::new(0.0);
        tr.add(t(1), 0.4, at(100));
        let reclaimed = tr.shed_retaining(t(1), 0.05).expect("task is live");
        assert!((reclaimed - 0.35).abs() < 1e-12);
        assert!((tr.value() - 0.05).abs() < 1e-12);
        // The retained share is departed work: gone at the next idle reset.
        assert_eq!(tr.reset_idle(), 1);
        assert_eq!(tr.value(), 0.0);
    }

    #[test]
    fn shed_retaining_decrements_at_deadline() {
        let mut tr = StageTracker::new(0.0);
        tr.add(t(1), 0.4, at(10));
        tr.shed_retaining(t(1), 0.1);
        assert_eq!(tr.advance_to(at(10)), 1);
        assert_eq!(tr.value(), 0.0);
    }

    #[test]
    fn shed_retaining_clamps_and_degenerates_to_shed() {
        let mut tr = StageTracker::new(0.0);
        tr.add(t(1), 0.2, at(100));
        // Retained above the live amount: nothing reclaimed.
        assert_eq!(tr.shed_retaining(t(1), 0.5), Some(0.0));
        assert!((tr.value() - 0.2).abs() < 1e-12);
        // Zero retained on a fresh entry: identical to a plain shed.
        tr.add(t(2), 0.3, at(100));
        assert_eq!(tr.shed_retaining(t(2), 0.0), Some(0.3));
        assert!(!tr.contains(t(2)));
        assert_eq!(tr.shed_retaining(t(9), 0.1), None);
    }

    #[test]
    fn system_shed_retaining_per_stage() {
        let mut st = SyntheticState::new(2);
        st.add_task(
            t(1),
            &[(StageId::new(0), 0.1), (StageId::new(1), 0.2)],
            at(10),
        );
        // Stage 0 keeps half its charge; stage 1 (absent from the slice)
        // reclaims everything.
        let reclaimed = st.shed_task_retaining(t(1), &[(StageId::new(0), 0.05)]);
        assert!((reclaimed - 0.25).abs() < 1e-12);
        assert_eq!(st.utilizations(), &[0.05, 0.0]);
    }

    #[test]
    fn shed_then_expiry_is_harmless() {
        // Lazy heap deletion must not double-remove.
        let mut tr = StageTracker::new(0.0);
        tr.add(t(1), 0.2, at(10));
        tr.add(t(2), 0.3, at(10));
        tr.shed(t(1));
        assert_eq!(tr.advance_to(at(10)), 1);
        assert_eq!(tr.value(), 0.0);
    }

    #[test]
    fn readd_accumulates_and_extends() {
        let mut tr = StageTracker::new(0.0);
        tr.add(t(1), 0.1, at(10));
        tr.add(t(1), 0.2, at(20));
        assert!((tr.value() - 0.3).abs() < 1e-12);
        assert_eq!(tr.live_tasks(), 1);
        // The earlier heap entry must not remove the extended entry.
        assert_eq!(tr.advance_to(at(10)), 0);
        assert!((tr.value() - 0.3).abs() < 1e-12);
        assert_eq!(tr.advance_to(at(20)), 1);
        assert_eq!(tr.value(), 0.0);
    }

    #[test]
    fn readd_with_earlier_expiry_keeps_later() {
        let mut tr = StageTracker::new(0.0);
        tr.add(t(1), 0.1, at(20));
        tr.add(t(1), 0.2, at(10));
        assert_eq!(tr.advance_to(at(10)), 0);
        assert!((tr.value() - 0.3).abs() < 1e-9);
        tr.advance_to(at(20));
        assert_eq!(tr.value(), 0.0);
    }

    #[test]
    fn contribution_lookup() {
        let mut tr = StageTracker::new(0.0);
        tr.add(t(1), 0.25, at(10));
        assert_eq!(tr.contribution(t(1)), Some(0.25));
        assert_eq!(tr.contribution(t(9)), None);
    }

    #[test]
    fn recompute_matches_incremental() {
        let mut tr = StageTracker::new(0.1);
        for i in 0..1000 {
            tr.add(t(i), 0.001, at(i + 1));
        }
        tr.advance_to(at(500));
        let incremental = tr.value();
        tr.recompute();
        assert!((tr.value() - incremental).abs() < 1e-9);
    }

    #[test]
    fn empty_tracker_has_exact_floor() {
        let mut tr = StageTracker::new(0.0);
        for i in 0..100 {
            tr.add(t(i), 0.1 / 3.0, at(1));
        }
        tr.advance_to(at(1));
        // Bit-exact zero, not accumulated float noise.
        assert_eq!(tr.value(), 0.0);
    }

    #[test]
    fn system_add_and_query() {
        let mut st = SyntheticState::new(3);
        assert_eq!(st.stages(), 3);
        st.add_task(
            t(1),
            &[(StageId::new(0), 0.1), (StageId::new(2), 0.3)],
            at(10),
        );
        assert_eq!(st.utilizations(), &[0.1, 0.0, 0.3]);
        assert!(st.stage(StageId::new(0)).contains(t(1)));
        assert!(!st.stage(StageId::new(1)).contains(t(1)));
    }

    #[test]
    fn system_tentative_vector_does_not_mutate() {
        let mut st = SyntheticState::new(2);
        st.add_task(t(1), &[(StageId::new(0), 0.1)], at(10));
        let v = st
            .utilizations_with(&[(StageId::new(0), 0.2), (StageId::new(1), 0.3)])
            .to_vec();
        assert_eq!(v, vec![0.30000000000000004, 0.3]);
        assert_eq!(st.utilizations(), &[0.1, 0.0]);
    }

    #[test]
    fn system_shed_task_totals() {
        let mut st = SyntheticState::new(2);
        st.add_task(
            t(1),
            &[(StageId::new(0), 0.1), (StageId::new(1), 0.2)],
            at(10),
        );
        let removed = st.shed_task(t(1));
        assert!((removed - 0.3).abs() < 1e-12);
        assert_eq!(st.utilizations(), &[0.0, 0.0]);
    }

    #[test]
    fn system_with_reservations() {
        let mut st = SyntheticState::with_reservations(&[0.4, 0.25, 0.1]);
        assert_eq!(st.utilizations(), &[0.4, 0.25, 0.1]);
        st.advance_to(at(1_000));
        assert_eq!(st.utilizations(), &[0.4, 0.25, 0.1]);
    }

    #[test]
    fn system_advance_expires_everywhere() {
        let mut st = SyntheticState::new(2);
        st.add_task(
            t(1),
            &[(StageId::new(0), 0.1), (StageId::new(1), 0.2)],
            at(5),
        );
        st.advance_to(at(5));
        assert_eq!(st.utilizations(), &[0.0, 0.0]);
    }
}
