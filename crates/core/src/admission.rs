//! Utilization-based admission control (Sections 4 and 5).
//!
//! The admission controller sits at the first stage. On each arrival it
//! tentatively adds the task's contributions `C_ij / D_i` to every stage's
//! synthetic-utilization counter and admits the task only if the system
//! stays inside the feasible region — an `O(N)` test in the number of
//! stages, independent of how many tasks are live. Counters are
//! decremented at deadlines and reset (for departed tasks) when a stage
//! idles.
//!
//! Variants implemented here:
//!
//! * [`Admission`] with [`ExactContributions`] — the paper's exact
//!   controller (knows each task's computation times).
//! * [`Admission`] with [`MeanContributions`] — Section 4.4's *approximate*
//!   controller that only knows mean per-stage computation times; admitted
//!   tasks may then (rarely) miss deadlines, which Figure 7 quantifies.
//! * Reservations — pass reservation floors to [`Admission::with_reservations`]
//!   (Section 5: capacity set aside for critical tasks).
//! * [`Admission::try_admit_or_shed`] — Section 5's overload architecture:
//!   if an important arrival falls outside the region, shed less important
//!   admitted work (reverse order of semantic importance) until it fits.
//! * Baselines: [`PerStageBound`] + [`SplitDeadlineContributions`] — the
//!   intermediate-deadline strawman the introduction argues against — and
//!   [`AlwaysAdmit`] (no admission control).

use crate::graph::TaskSpec;
use crate::region::RegionTest;
use crate::synthetic::{overlay_contributions, SyntheticState};
use crate::task::{Importance, StageId, TaskId};
use crate::time::{Time, TimeDelta};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

/// The Section 4 decision kernel: would charging `contributions` on top of
/// the `current` utilization vector keep the system inside `region`?
///
/// `scratch` receives the tentative vector (current plus overlay) and is
/// reused across calls to avoid allocation. This is the one shared
/// implementation of the admission test, used by both the single-threaded
/// [`Admission`] controller and the concurrent `frap-service` admission
/// service — the two cannot drift.
pub fn tentative_feasible<R: RegionTest + ?Sized>(
    region: &R,
    current: &[f64],
    contributions: &[(StageId, f64)],
    scratch: &mut Vec<f64>,
) -> bool {
    scratch.clear();
    scratch.extend_from_slice(current);
    overlay_contributions(scratch, contributions);
    region.feasible(scratch)
}

/// Maps an arriving task to the per-stage contributions the admission
/// controller will charge for it.
///
/// The exact controller charges true `C_ij / D_i`; the approximate one
/// charges `C̄_j / D_i` from operator-supplied means (Section 4.4).
pub trait ContributionModel: std::fmt::Debug {
    /// Appends `(stage, contribution)` pairs for `spec` to `out`.
    ///
    /// `out` is cleared by the caller; one entry per distinct stage.
    fn contributions_into(&self, spec: &TaskSpec, out: &mut Vec<(StageId, f64)>);
}

impl<T: ContributionModel + ?Sized> ContributionModel for Box<T> {
    fn contributions_into(&self, spec: &TaskSpec, out: &mut Vec<(StageId, f64)>) {
        (**self).contributions_into(spec, out)
    }
}

/// Charges the true synthetic-utilization contributions `C_ij / D_i`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactContributions;

impl ContributionModel for ExactContributions {
    fn contributions_into(&self, spec: &TaskSpec, out: &mut Vec<(StageId, f64)>) {
        spec.contributions_into(out);
    }
}

/// Charges `C̄_j / D_i` using operator-estimated mean computation times per
/// stage, for workloads whose exact computation times are unknown at
/// arrival (Section 4.4).
///
/// # Examples
///
/// ```
/// use frap_core::admission::{ContributionModel, MeanContributions};
/// use frap_core::graph::TaskSpec;
/// use frap_core::time::TimeDelta;
///
/// let ms = TimeDelta::from_millis;
/// let model = MeanContributions::new(vec![ms(10), ms(10)]);
/// // The task's true demand (3 ms, 25 ms) is unknown to the controller…
/// let spec = TaskSpec::pipeline(ms(1000), &[ms(3), ms(25)])?;
/// let mut out = Vec::new();
/// model.contributions_into(&spec, &mut out);
/// // …so both stages are charged the mean: 10/1000.
/// assert!((out[0].1 - 0.01).abs() < 1e-12);
/// assert!((out[1].1 - 0.01).abs() < 1e-12);
/// # Ok::<(), frap_core::error::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeanContributions {
    means: Vec<TimeDelta>,
}

impl MeanContributions {
    /// Creates the model from mean computation times, one per stage.
    pub fn new(means: Vec<TimeDelta>) -> MeanContributions {
        MeanContributions { means }
    }

    /// The configured mean computation time of `stage` (zero if unknown).
    pub fn mean(&self, stage: StageId) -> TimeDelta {
        self.means
            .get(stage.index())
            .copied()
            .unwrap_or(TimeDelta::ZERO)
    }
}

impl ContributionModel for MeanContributions {
    fn contributions_into(&self, spec: &TaskSpec, out: &mut Vec<(StageId, f64)>) {
        for (stage, _) in spec.contributions() {
            out.push((stage, self.mean(stage).ratio(spec.deadline)));
        }
    }
}

/// Contribution model of the intermediate-deadline baseline: the end-to-end
/// deadline is split evenly into per-stage deadlines `D_i / n_i` (where
/// `n_i` is the number of stages task `i` uses) and each stage is charged
/// `C_ij / (D_i / n_i)`.
///
/// Combined with [`PerStageBound`], this reproduces the classical
/// per-stage analysis the paper's introduction contrasts against: it
/// requires intermediate deadlines and is substantially more pessimistic
/// than the end-to-end region.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SplitDeadlineContributions;

impl ContributionModel for SplitDeadlineContributions {
    fn contributions_into(&self, spec: &TaskSpec, out: &mut Vec<(StageId, f64)>) {
        let stages_used = spec.graph.stages_used().len().max(1) as f64;
        for (stage, c) in spec.contributions() {
            out.push((stage, c * stages_used));
        }
    }
}

/// Per-stage scalar bound: feasible iff `U_j ≤ bound` at every stage.
///
/// With `bound = `[`crate::delay::UNIPROCESSOR_BOUND`] this is the
/// uniprocessor aperiodic test applied independently per stage — the
/// baseline admission region for [`SplitDeadlineContributions`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerStageBound {
    stages: usize,
    bound: f64,
}

impl PerStageBound {
    /// A per-stage bound test for `stages` stages.
    pub fn new(stages: usize, bound: f64) -> PerStageBound {
        PerStageBound { stages, bound }
    }

    /// The scalar per-stage bound.
    pub fn bound(&self) -> f64 {
        self.bound
    }
}

impl RegionTest for PerStageBound {
    fn stages(&self) -> usize {
        self.stages
    }

    fn feasible(&self, utilizations: &[f64]) -> bool {
        utilizations.iter().all(|&u| u <= self.bound)
    }
}

/// The no-admission-control baseline: everything is admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AlwaysAdmit {
    stages: usize,
}

impl AlwaysAdmit {
    /// An always-true test for `stages` stages.
    pub fn new(stages: usize) -> AlwaysAdmit {
        AlwaysAdmit { stages }
    }
}

impl RegionTest for AlwaysAdmit {
    fn stages(&self) -> usize {
        self.stages
    }

    fn feasible(&self, _utilizations: &[f64]) -> bool {
        true
    }
}

/// Counters describing an admission controller's decisions so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Tasks admitted.
    pub admitted: u64,
    /// Tasks rejected.
    pub rejected: u64,
    /// Admitted tasks later shed at overload.
    pub shed: u64,
}

impl AdmissionStats {
    /// Fraction of decisions that admitted the task (1 if no decisions yet).
    pub fn acceptance_ratio(&self) -> f64 {
        let total = self.admitted + self.rejected;
        if total == 0 {
            1.0
        } else {
            self.admitted as f64 / total as f64
        }
    }
}

/// The outcome of an admission attempt that may shed lower-importance work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// Admitted without disturbing existing work.
    Admitted(TaskId),
    /// Admitted after shedding the listed (less important) tasks.
    AdmittedAfterShedding {
        /// The new task's identifier.
        task: TaskId,
        /// Tasks evicted, least important first.
        shed: Vec<TaskId>,
    },
    /// Rejected: infeasible even after shedding everything less important.
    Rejected,
}

impl AdmitOutcome {
    /// The admitted task's id, if the task was admitted.
    pub fn task(&self) -> Option<TaskId> {
        match self {
            AdmitOutcome::Admitted(t) => Some(*t),
            AdmitOutcome::AdmittedAfterShedding { task, .. } => Some(*task),
            AdmitOutcome::Rejected => None,
        }
    }
}

#[derive(Debug)]
struct LiveTask {
    importance: Importance,
    expiry: Time,
    /// Relative deadline `D_i`, the denominator of every retained-charge
    /// fraction when the task is shed mid-execution.
    deadline: TimeDelta,
}

/// The feasible-region admission controller.
///
/// Generic over the [`RegionTest`] (which region) and the
/// [`ContributionModel`] (what each task is charged). Maintains the
/// per-stage synthetic-utilization counters and an importance-ordered index
/// of live tasks for shedding.
///
/// # Examples
///
/// ```
/// use frap_core::admission::{Admission, ExactContributions};
/// use frap_core::graph::TaskSpec;
/// use frap_core::region::FeasibleRegion;
/// use frap_core::time::{Time, TimeDelta};
///
/// let ms = TimeDelta::from_millis;
/// let mut ac = Admission::new(FeasibleRegion::deadline_monotonic(2), ExactContributions);
/// let task = TaskSpec::pipeline(ms(100), &[ms(10), ms(10)])?;
/// // C/D = 0.1 per stage: comfortably inside the two-stage region.
/// assert!(ac.try_admit(Time::ZERO, &task).is_some());
/// # Ok::<(), frap_core::error::GraphError>(())
/// ```
#[derive(Debug)]
pub struct Admission<R, M> {
    region: R,
    model: M,
    state: SyntheticState,
    live: HashMap<TaskId, LiveTask>,
    by_importance: BTreeSet<(Importance, TaskId)>,
    live_expiry: BinaryHeap<Reverse<(Time, TaskId)>>,
    next_id: u64,
    stats: AdmissionStats,
    scratch: Vec<(StageId, f64)>,
    vec_scratch: Vec<f64>,
}

impl<R: RegionTest, M: ContributionModel> Admission<R, M> {
    /// A controller with no reservations.
    pub fn new(region: R, model: M) -> Admission<R, M> {
        let stages = region.stages();
        Admission {
            region,
            model,
            state: SyntheticState::new(stages),
            live: HashMap::new(),
            by_importance: BTreeSet::new(),
            live_expiry: BinaryHeap::new(),
            next_id: 0,
            stats: AdmissionStats::default(),
            scratch: Vec::new(),
            vec_scratch: Vec::new(),
        }
    }

    /// A controller whose counters are pre-loaded with per-stage
    /// reservations for critical tasks (Section 5). Idle resets restore
    /// counters to these floors, never below.
    ///
    /// # Panics
    ///
    /// Panics if `reservations.len()` differs from the region's stage count.
    pub fn with_reservations(region: R, model: M, reservations: &[f64]) -> Admission<R, M> {
        assert_eq!(
            reservations.len(),
            region.stages(),
            "one reservation per stage"
        );
        let mut ac = Admission::new(region, model);
        ac.state = SyntheticState::with_reservations(reservations);
        ac
    }

    /// The region this controller enforces.
    pub fn region(&self) -> &R {
        &self.region
    }

    /// The synthetic-utilization state (for inspection and metrics).
    pub fn state(&self) -> &SyntheticState {
        &self.state
    }

    /// Mutable synthetic-utilization state — used by the simulator to
    /// report departures and idle periods.
    pub fn state_mut(&mut self) -> &mut SyntheticState {
        &mut self.state
    }

    /// Decision counters.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Number of admitted tasks whose deadlines have not yet expired.
    pub fn live_tasks(&self) -> usize {
        self.live.len()
    }

    /// Applies the decrement-at-deadline rule up to `now` on every stage
    /// and drops expired tasks from the shedding index.
    pub fn advance_to(&mut self, now: Time) {
        self.state.advance_to(now);
        while let Some(&Reverse((expiry, task))) = self.live_expiry.peek() {
            if expiry > now {
                break;
            }
            self.live_expiry.pop();
            if let Some(lt) = self.live.get(&task) {
                if lt.expiry == expiry {
                    self.by_importance.remove(&(lt.importance, task));
                    self.live.remove(&task);
                }
            }
        }
    }

    /// Attempts to admit `spec` arriving at `now`. Returns the new task id
    /// on admission, or `None` (and counts a rejection) if admitting it
    /// would leave the feasible region.
    pub fn try_admit(&mut self, now: Time, spec: &TaskSpec) -> Option<TaskId> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.model.contributions_into(spec, &mut scratch);
        let result = self.try_admit_with(now, spec, &scratch);
        self.scratch = scratch;
        result
    }

    /// [`Admission::try_admit`] with the contribution vector already in
    /// hand. `contributions` must be what [`Admission::contributions_for`]
    /// returns for `spec`; callers that retry the same spec repeatedly (the
    /// simulator's admission wait queue) compute it once at enqueue instead
    /// of once per attempt.
    pub fn try_admit_with(
        &mut self,
        now: Time,
        spec: &TaskSpec,
        contributions: &[(StageId, f64)],
    ) -> Option<TaskId> {
        self.advance_to(now);
        if self.admit_feasible(contributions) {
            Some(self.commit(now, spec, contributions))
        } else {
            self.stats.rejected += 1;
            None
        }
    }

    /// The per-stage contributions the model charges for `spec`, written
    /// into `out` (cleared first). This is exactly the vector
    /// [`Admission::try_admit`] would compute internally.
    pub fn contributions_for(&self, spec: &TaskSpec, out: &mut Vec<(StageId, f64)>) {
        out.clear();
        self.model.contributions_into(spec, out);
    }

    /// Attempts to admit `spec`; when infeasible, sheds live tasks that are
    /// strictly less important than `spec` (least important first) until
    /// the arrival fits or no candidates remain (Section 5's overload
    /// architecture).
    ///
    /// Victims' charges are reclaimed in full — correct only when shed
    /// tasks have not started executing (e.g. pure admission accounting, or
    /// eviction from a wait queue). Execution environments that kill tasks
    /// mid-flight must use [`Admission::try_admit_or_shed_with`] and report
    /// each victim's executed work, or the region guarantee is void.
    pub fn try_admit_or_shed(&mut self, now: Time, spec: &TaskSpec) -> AdmitOutcome {
        self.try_admit_or_shed_with(now, spec, |_, _| {})
    }

    /// [`Admission::try_admit_or_shed`] with an *executed-work oracle*: for
    /// each prospective victim, `executed` appends `(stage, e_j)` pairs
    /// giving the execution time the victim has already received on each
    /// stage. The controller then keeps `e_j / D_i` of the victim's charge
    /// on those counters — marked departed, so the usual idle-reset and
    /// decrement-at-deadline rules reclaim it — and only the *unexecuted*
    /// remainder is freed for the arrival.
    ///
    /// This is what makes mid-execution shedding sound: interference a
    /// victim already inflicted cannot be un-inflicted, so its charge must
    /// persist exactly as if a task with computation `e_j` had been
    /// admitted and completed. An oracle that reports nothing degenerates
    /// to full immediate reclaim ([`Admission::try_admit_or_shed`]).
    pub fn try_admit_or_shed_with(
        &mut self,
        now: Time,
        spec: &TaskSpec,
        mut executed: impl FnMut(TaskId, &mut Vec<(StageId, TimeDelta)>),
    ) -> AdmitOutcome {
        self.advance_to(now);
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        self.model.contributions_into(spec, &mut scratch);

        if self.admit_feasible(&scratch) {
            let id = self.commit(now, spec, &scratch);
            self.scratch = scratch;
            return AdmitOutcome::Admitted(id);
        }

        // Shed in reverse order of semantic importance, but never work at
        // or above the arrival's own importance.
        let mut shed = Vec::new();
        let mut fits = false;
        let mut exec_buf: Vec<(StageId, TimeDelta)> = Vec::new();
        let mut retain_buf: Vec<(StageId, f64)> = Vec::new();
        while let Some(&(imp, victim)) = self.by_importance.iter().next() {
            if imp >= spec.importance {
                break;
            }
            let deadline = self.live[&victim].deadline;
            exec_buf.clear();
            executed(victim, &mut exec_buf);
            retain_buf.clear();
            retain_buf.extend(
                exec_buf
                    .iter()
                    .map(|&(stage, e)| (stage, e.ratio(deadline))),
            );
            self.remove_live(victim);
            self.state.shed_task_retaining(victim, &retain_buf);
            self.stats.shed += 1;
            shed.push(victim);
            if self.admit_feasible(&scratch) {
                fits = true;
                break;
            }
        }

        let outcome = if fits {
            let id = self.commit(now, spec, &scratch);
            AdmitOutcome::AdmittedAfterShedding { task: id, shed }
        } else {
            // Shedding was insufficient: the shed tasks stay shed (they
            // were the least important and the system is overloaded), and
            // the arrival is rejected.
            self.stats.rejected += 1;
            AdmitOutcome::Rejected
        };
        self.scratch = scratch;
        outcome
    }

    /// Admits a *pre-certified* task without charging synthetic
    /// utilization: its capacity is already covered by the per-stage
    /// reservations established at certification time (Section 5). The
    /// task gets an identity and is never a shedding candidate.
    pub fn admit_reserved(&mut self, _now: Time, _spec: &TaskSpec) -> TaskId {
        let id = TaskId::new(self.next_id);
        self.next_id += 1;
        self.stats.admitted += 1;
        id
    }

    /// Reports that `task`'s last subtask on `stage` finished, making its
    /// contribution eligible for the next idle reset there.
    pub fn on_stage_departure(&mut self, stage: StageId, task: TaskId) {
        self.state.stage_mut(stage).mark_departed(task);
    }

    /// Reports that `stage` has gone idle: departed tasks' contributions
    /// are removed from its counter (Section 4's reset rule).
    pub fn on_stage_idle(&mut self, now: Time, stage: StageId) {
        self.state.stage_mut(stage).advance_to(now);
        self.state.stage_mut(stage).reset_idle();
    }

    /// Forcibly evicts an admitted task (external shedding), removing its
    /// contributions everywhere.
    pub fn shed(&mut self, task: TaskId) {
        if self.live.contains_key(&task) {
            self.remove_live(task);
            self.state.shed_task(task);
            self.stats.shed += 1;
        }
    }

    /// Runs the shared decision kernel against the current counters.
    fn admit_feasible(&mut self, contributions: &[(StageId, f64)]) -> bool {
        let mut vec_scratch = std::mem::take(&mut self.vec_scratch);
        let ok = tentative_feasible(
            &self.region,
            self.state.utilizations(),
            contributions,
            &mut vec_scratch,
        );
        self.vec_scratch = vec_scratch;
        ok
    }

    fn commit(&mut self, now: Time, spec: &TaskSpec, contributions: &[(StageId, f64)]) -> TaskId {
        let id = TaskId::new(self.next_id);
        self.next_id += 1;
        let expiry = now.saturating_add(spec.deadline);
        self.state.add_task(id, contributions, expiry);
        self.live.insert(
            id,
            LiveTask {
                importance: spec.importance,
                expiry,
                deadline: spec.deadline,
            },
        );
        self.by_importance.insert((spec.importance, id));
        self.live_expiry.push(Reverse((expiry, id)));
        self.stats.admitted += 1;
        id
    }

    fn remove_live(&mut self, task: TaskId) {
        if let Some(lt) = self.live.remove(&task) {
            self.by_importance.remove(&(lt.importance, task));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::UNIPROCESSOR_BOUND;
    use crate::region::FeasibleRegion;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn pipeline_task(deadline_ms: u64, per_stage_ms: &[u64]) -> TaskSpec {
        let comps: Vec<TimeDelta> = per_stage_ms.iter().map(|&c| ms(c)).collect();
        TaskSpec::pipeline(ms(deadline_ms), &comps).unwrap()
    }

    fn exact_two_stage() -> Admission<FeasibleRegion, ExactContributions> {
        Admission::new(FeasibleRegion::deadline_monotonic(2), ExactContributions)
    }

    #[test]
    fn admits_until_region_is_full() {
        let mut ac = exact_two_stage();
        // Each task contributes 0.05 per stage. The symmetric two-stage
        // bound is f⁻¹(1/2) ≈ 0.382, so about 7 admissions fit.
        let spec = pipeline_task(200, &[10, 10]);
        let mut admitted = 0;
        for _ in 0..20 {
            if ac.try_admit(Time::ZERO, &spec).is_some() {
                admitted += 1;
            }
        }
        assert!((6..=8).contains(&admitted), "admitted={admitted}");
        assert_eq!(ac.stats().admitted, admitted);
        assert_eq!(ac.stats().rejected, 20 - admitted);
    }

    #[test]
    fn counters_decrement_at_deadline() {
        let mut ac = exact_two_stage();
        let spec = pipeline_task(100, &[30, 30]);
        assert!(ac.try_admit(Time::ZERO, &spec).is_some());
        // 0.3 per stage: a second identical arrival fails (f(0.6)*2 > 1).
        assert!(ac.try_admit(Time::from_millis(1), &spec).is_none());
        // After the first task's deadline, capacity returns.
        assert!(ac.try_admit(Time::from_millis(100), &spec).is_some());
        assert_eq!(ac.live_tasks(), 1);
    }

    #[test]
    fn idle_reset_frees_capacity_early() {
        let mut ac = exact_two_stage();
        let spec = pipeline_task(100, &[30, 30]);
        let id = ac.try_admit(Time::ZERO, &spec).unwrap();
        assert!(ac.try_admit(Time::from_millis(1), &spec).is_none());
        // Task departs both stages at t = 2 ms and the stages go idle: the
        // paper's reset rule makes room well before the deadline.
        ac.on_stage_departure(StageId::new(0), id);
        ac.on_stage_departure(StageId::new(1), id);
        ac.on_stage_idle(Time::from_millis(2), StageId::new(0));
        ac.on_stage_idle(Time::from_millis(2), StageId::new(1));
        assert!(ac.try_admit(Time::from_millis(2), &spec).is_some());
    }

    #[test]
    fn reservations_preload_counters() {
        let region = FeasibleRegion::deadline_monotonic(3);
        let mut ac = Admission::with_reservations(region, ExactContributions, &[0.4, 0.25, 0.1]);
        // The TSCE reservations leave only 0.07 of budget (0.93 used).
        let small = pipeline_task(1000, &[10, 2, 2]);
        assert!(ac.try_admit(Time::ZERO, &small).is_some());
        let big = pipeline_task(1000, &[200, 2, 2]);
        assert!(ac.try_admit(Time::ZERO, &big).is_none());
    }

    #[test]
    #[should_panic(expected = "one reservation per stage")]
    fn reservation_arity_must_match() {
        let _ = Admission::with_reservations(
            FeasibleRegion::deadline_monotonic(2),
            ExactContributions,
            &[0.1],
        );
    }

    #[test]
    fn approximate_model_charges_means() {
        let region = FeasibleRegion::deadline_monotonic(2);
        let model = MeanContributions::new(vec![ms(10), ms(10)]);
        let mut ac = Admission::new(region, model);
        // True demand is huge, but the controller only sees the mean.
        let heavy = pipeline_task(100, &[90, 90]);
        assert!(ac.try_admit(Time::ZERO, &heavy).is_some());
    }

    #[test]
    fn split_deadline_baseline_is_more_pessimistic() {
        // End-to-end controller: two-stage region.
        let mut e2e = exact_two_stage();
        // Baseline: per-stage uniprocessor bound on C/(D/2).
        let mut base = Admission::new(
            PerStageBound::new(2, UNIPROCESSOR_BOUND),
            SplitDeadlineContributions,
        );
        let spec = pipeline_task(200, &[10, 10]);
        let (mut e2e_n, mut base_n) = (0, 0);
        for _ in 0..40 {
            if e2e.try_admit(Time::ZERO, &spec).is_some() {
                e2e_n += 1;
            }
            if base.try_admit(Time::ZERO, &spec).is_some() {
                base_n += 1;
            }
        }
        // Baseline charges 0.1/stage against 0.586 → ~5 tasks; end-to-end
        // charges 0.05/stage against the sum-form region → ~7 tasks.
        assert!(
            e2e_n > base_n,
            "end-to-end ({e2e_n}) should beat split-deadline ({base_n})"
        );
    }

    #[test]
    fn always_admit_never_rejects() {
        let mut ac = Admission::new(AlwaysAdmit::new(2), ExactContributions);
        let spec = pipeline_task(10, &[100, 100]);
        for _ in 0..100 {
            assert!(ac.try_admit(Time::ZERO, &spec).is_some());
        }
        assert_eq!(ac.stats().rejected, 0);
    }

    #[test]
    fn shedding_evicts_least_important_first() {
        let mut ac = exact_two_stage();
        let low = pipeline_task(100, &[15, 15]).with_importance(Importance::new(1));
        let mid = pipeline_task(100, &[15, 15]).with_importance(Importance::new(2));
        let id_low = ac.try_admit(Time::ZERO, &low).unwrap();
        let _id_mid = ac.try_admit(Time::ZERO, &mid).unwrap();
        // 0.3/stage live; a critical 0.2/stage arrival is infeasible
        // (f(0.5)·2 = 1.5) until someone is shed.
        let critical = pipeline_task(100, &[20, 20]).with_importance(Importance::CRITICAL);
        match ac.try_admit_or_shed(Time::from_millis(1), &critical) {
            AdmitOutcome::AdmittedAfterShedding { shed, .. } => {
                assert_eq!(shed, vec![id_low], "least important shed first");
            }
            other => panic!("expected shedding admission, got {other:?}"),
        }
        assert_eq!(ac.stats().shed, 1);
    }

    #[test]
    fn shedding_with_oracle_retains_executed_work() {
        let mut ac = exact_two_stage();
        let low = pipeline_task(100, &[15, 15]).with_importance(Importance::new(1));
        let mid = pipeline_task(100, &[15, 15]).with_importance(Importance::new(2));
        let id_low = ac.try_admit(Time::ZERO, &low).unwrap();
        let id_mid = ac.try_admit(Time::ZERO, &mid).unwrap();
        let critical = pipeline_task(100, &[20, 20]).with_importance(Importance::CRITICAL);
        // The low victim already ran 10 ms on stage 0: 0.1 of its 0.15
        // charge there is sunk and must stay. Freeing only 0.05 + 0.15 is
        // not enough for the arrival, so the mid victim is shed too.
        let outcome = ac.try_admit_or_shed_with(Time::from_millis(1), &critical, |victim, out| {
            if victim == id_low {
                out.push((StageId::new(0), TimeDelta::from_millis(10)));
            }
        });
        match outcome {
            AdmitOutcome::AdmittedAfterShedding { shed, .. } => {
                assert_eq!(shed, vec![id_low, id_mid]);
            }
            other => panic!("expected shedding admission, got {other:?}"),
        }
        // Stage 0 still carries the sunk 0.1 plus the arrival's 0.2.
        let u0 = ac.state().stage(StageId::new(0)).value();
        assert!((u0 - 0.3).abs() < 1e-9, "stage 0 utilization {u0}");
        let u1 = ac.state().stage(StageId::new(1)).value();
        assert!((u1 - 0.2).abs() < 1e-9, "stage 1 utilization {u1}");
    }

    #[test]
    fn shedding_with_oracle_retained_charge_expires_at_deadline() {
        let mut ac = exact_two_stage();
        let low = pipeline_task(100, &[15, 15]).with_importance(Importance::new(1));
        let id_low = ac.try_admit(Time::ZERO, &low).unwrap();
        // Fill the region so the arrival must shed.
        let filler = pipeline_task(100, &[20, 20]).with_importance(Importance::new(5));
        ac.try_admit(Time::ZERO, &filler).unwrap();
        let critical = pipeline_task(100, &[15, 15]).with_importance(Importance::CRITICAL);
        let outcome = ac.try_admit_or_shed_with(Time::from_millis(1), &critical, |victim, out| {
            assert_eq!(victim, id_low);
            out.push((StageId::new(0), TimeDelta::from_millis(5)));
        });
        assert!(matches!(
            outcome,
            AdmitOutcome::AdmittedAfterShedding { .. }
        ));
        // The victim's sunk 0.05 persists on stage 0…
        assert!(ac.state().stage(StageId::new(0)).contains(id_low));
        // …until its original deadline passes.
        ac.advance_to(Time::from_millis(100));
        assert!(!ac.state().stage(StageId::new(0)).contains(id_low));
    }

    #[test]
    fn shedding_never_evicts_equal_or_higher_importance() {
        let mut ac = exact_two_stage();
        let a = pipeline_task(100, &[30, 30]).with_importance(Importance::new(5));
        ac.try_admit(Time::ZERO, &a).unwrap();
        let b = pipeline_task(100, &[30, 30]).with_importance(Importance::new(5));
        assert_eq!(
            ac.try_admit_or_shed(Time::from_millis(1), &b),
            AdmitOutcome::Rejected
        );
        assert_eq!(ac.stats().shed, 0);
        assert_eq!(ac.live_tasks(), 1);
    }

    #[test]
    fn outcome_task_accessor() {
        assert_eq!(AdmitOutcome::Rejected.task(), None);
        assert_eq!(
            AdmitOutcome::Admitted(TaskId::new(3)).task(),
            Some(TaskId::new(3))
        );
        assert_eq!(
            AdmitOutcome::AdmittedAfterShedding {
                task: TaskId::new(4),
                shed: vec![]
            }
            .task(),
            Some(TaskId::new(4))
        );
    }

    #[test]
    fn acceptance_ratio() {
        let mut s = AdmissionStats::default();
        assert_eq!(s.acceptance_ratio(), 1.0);
        s.admitted = 3;
        s.rejected = 1;
        assert!((s.acceptance_ratio() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn graph_task_contributions_cover_used_stages_only() {
        use crate::graph::TaskGraph;
        use crate::task::SubtaskSpec;
        let g = TaskGraph::fork_join(
            SubtaskSpec::new(StageId::new(0), ms(10)),
            vec![
                SubtaskSpec::new(StageId::new(1), ms(10)),
                SubtaskSpec::new(StageId::new(2), ms(10)),
            ],
            SubtaskSpec::new(StageId::new(3), ms(10)),
        )
        .unwrap();
        let spec = TaskSpec::new(ms(1000), g);
        let mut ac = Admission::new(FeasibleRegion::deadline_monotonic(5), ExactContributions);
        let id = ac.try_admit(Time::ZERO, &spec).unwrap();
        assert!(ac.state().stage(StageId::new(0)).contains(id));
        assert!(ac.state().stage(StageId::new(3)).contains(id));
        assert!(!ac.state().stage(StageId::new(4)).contains(id));
    }

    #[test]
    fn expired_tasks_leave_shedding_index() {
        let mut ac = exact_two_stage();
        let spec = pipeline_task(50, &[10, 10]);
        ac.try_admit(Time::ZERO, &spec).unwrap();
        assert_eq!(ac.live_tasks(), 1);
        ac.advance_to(Time::from_millis(50));
        assert_eq!(ac.live_tasks(), 0);
    }

    #[test]
    fn external_shed_is_idempotent() {
        let mut ac = exact_two_stage();
        let spec = pipeline_task(100, &[10, 10]);
        let id = ac.try_admit(Time::ZERO, &spec).unwrap();
        ac.shed(id);
        ac.shed(id);
        assert_eq!(ac.stats().shed, 1);
        assert_eq!(ac.live_tasks(), 0);
    }
}
