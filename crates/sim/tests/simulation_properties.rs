//! Property-based and scenario tests for the simulation substrate.

use frap_core::graph::TaskSpec;
use frap_core::time::{Time, TimeDelta};
use frap_sim::pipeline::SimBuilder;
use frap_sim::trace::TraceEvent;
use proptest::prelude::*;

fn ms(v: u64) -> TimeDelta {
    TimeDelta::from_millis(v)
}

fn arbitrary_arrivals() -> impl Strategy<Value = Vec<(Time, TaskSpec)>> {
    // Random gaps, computation times and deadlines → a sorted arrival
    // sequence for a 2-stage pipeline.
    proptest::collection::vec(
        (0u64..30_000, 1u64..20_000, 1u64..20_000, 40u64..400),
        1..80,
    )
    .prop_map(|rows| {
        let mut t = Time::ZERO;
        rows.into_iter()
            .map(|(gap_us, c1_us, c2_us, d_ms)| {
                t += TimeDelta::from_micros(gap_us);
                let spec = TaskSpec::pipeline(
                    TimeDelta::from_millis(d_ms),
                    &[TimeDelta::from_micros(c1_us), TimeDelta::from_micros(c2_us)],
                )
                .expect("valid pipeline");
                (t, spec)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: offered = admitted + rejected; admitted = completed
    /// + in-flight (+ shed); busy time never exceeds the horizon; and the
    /// zero-miss guarantee holds for whatever was admitted.
    #[test]
    fn accounting_identities_hold(arrivals in arbitrary_arrivals()) {
        let horizon = Time::from_secs(10);
        let mut sim = SimBuilder::new(2).build();
        let m = sim.run(arrivals.into_iter(), horizon).clone();
        prop_assert_eq!(m.offered, m.admitted + m.rejected);
        prop_assert_eq!(m.admitted, m.completed + m.in_flight_at_end + m.shed);
        for st in &m.stages {
            prop_assert!(st.busy <= m.horizon);
        }
        prop_assert_eq!(m.missed, 0, "exact admission control never misses");
    }

    /// Work conservation on a single stage: the processor's busy time
    /// equals the total computation of completed jobs plus whatever the
    /// in-flight job consumed — never more than was admitted.
    #[test]
    fn busy_time_bounded_by_admitted_work(arrivals in arbitrary_arrivals()) {
        let horizon = Time::from_secs(10);
        let total_offered: TimeDelta = arrivals
            .iter()
            .map(|(_, s)| s.total_computation())
            .sum();
        let mut sim = SimBuilder::new(2).build();
        let m = sim.run(arrivals.into_iter(), horizon).clone();
        let total_busy: TimeDelta = m.stages.iter().map(|s| s.busy).sum();
        prop_assert!(total_busy <= total_offered);
    }

    /// Determinism as a property: running the same sequence twice gives
    /// identical aggregate metrics.
    #[test]
    fn runs_are_deterministic(arrivals in arbitrary_arrivals()) {
        let horizon = Time::from_secs(10);
        let mut a = SimBuilder::new(2).build();
        let ma = a.run(arrivals.clone().into_iter(), horizon).clone();
        let mut b = SimBuilder::new(2).build();
        let mb = b.run(arrivals.into_iter(), horizon).clone();
        prop_assert_eq!(ma.admitted, mb.admitted);
        prop_assert_eq!(ma.completed, mb.completed);
        prop_assert_eq!(ma.response_max, mb.response_max);
        prop_assert_eq!(ma.stages[0].busy, mb.stages[0].busy);
        prop_assert_eq!(ma.stages[1].busy, mb.stages[1].busy);
    }
}

#[test]
fn trace_records_full_task_lifecycle() {
    let mut sim = SimBuilder::new(2).trace(1000).build();
    let arrivals = vec![
        (
            Time::ZERO,
            TaskSpec::pipeline(ms(100), &[ms(5), ms(5)]).unwrap(),
        ),
        // Infeasible arrival: 60 ms on each of 2 stages of a 100 ms deadline.
        (
            Time::from_millis(1),
            TaskSpec::pipeline(ms(100), &[ms(60), ms(60)]).unwrap(),
        ),
    ];
    sim.run(arrivals.into_iter(), Time::from_secs(1));
    let trace = sim.trace().expect("tracing enabled");
    assert!(!trace.is_empty());
    let kinds: Vec<&TraceEvent> = trace.iter().collect();
    assert!(kinds
        .iter()
        .any(|e| matches!(e, TraceEvent::Admitted { .. })));
    assert!(kinds
        .iter()
        .any(|e| matches!(e, TraceEvent::Rejected { .. })));
    assert!(kinds
        .iter()
        .any(|e| matches!(e, TraceEvent::Dispatched { .. })));
    assert!(kinds
        .iter()
        .any(|e| matches!(e, TraceEvent::SubtaskDone { .. })));
    assert!(kinds
        .iter()
        .any(|e| matches!(e, TraceEvent::IdleReset { .. })));
    assert!(kinds
        .iter()
        .any(|e| matches!(e, TraceEvent::TaskDone { missed: false, .. })));
    // Timestamps are monotone.
    let mut prev = Time::ZERO;
    for e in trace.iter() {
        assert!(e.time() >= prev);
        prev = e.time();
    }
    // The successful task's own history is coherent.
    let first = trace
        .iter()
        .find_map(|e| match e {
            TraceEvent::Admitted { task, .. } => Some(*task),
            _ => None,
        })
        .unwrap();
    let history = trace.of_task(first);
    assert!(history.len() >= 4, "admit, 2×dispatch, 2×done, finish");
    let dump = trace.dump();
    assert!(dump.contains("admit"));
    assert!(dump.contains("run"));
}

#[test]
fn trace_is_disabled_by_default() {
    let mut sim = SimBuilder::new(1).build();
    sim.run(
        vec![(Time::ZERO, TaskSpec::pipeline(ms(10), &[ms(1)]).unwrap())].into_iter(),
        Time::from_secs(1),
    );
    assert!(sim.trace().is_none());
}

#[test]
fn response_percentiles_are_ordered() {
    let mut sim = SimBuilder::new(2).build();
    let arrivals: Vec<(Time, TaskSpec)> = (0..500)
        .map(|i| {
            (
                Time::from_micros(i * 3_000),
                TaskSpec::pipeline(ms(200), &[ms(1 + i % 5), ms(2)]).unwrap(),
            )
        })
        .collect();
    let m = sim.run(arrivals.into_iter(), Time::from_secs(10)).clone();
    assert!(m.completed > 400);
    let p50 = m.response_percentile(0.50);
    let p95 = m.response_percentile(0.95);
    let p99 = m.response_percentile(0.99);
    assert!(p50 <= p95 && p95 <= p99);
    assert!(p99 <= m.response_max);
    assert!(p50 >= ms(3), "at least the uncontended service time");
}

#[test]
fn snapshot_reflects_mid_run_state() {
    let mut sim = SimBuilder::new(2).build();
    // Run until t = 5 ms with a 10 ms + 10 ms task in flight.
    let arrivals = vec![(
        Time::ZERO,
        TaskSpec::pipeline(ms(100), &[ms(10), ms(10)]).unwrap(),
    )];
    sim.run(arrivals.into_iter(), Time::from_millis(5));
    let snap = sim.snapshot();
    assert_eq!(snap.clock, Time::from_millis(5));
    assert_eq!(snap.live_tasks, 1);
    assert_eq!(snap.stage_jobs, vec![1, 0], "still executing at stage 0");
    assert!(snap.stage_running[0].is_some());
    assert_eq!(snap.stage_running[1], None);
    assert!(snap.synthetic_utilizations[0] > 0.0);
    assert_eq!(snap.pending_admissions, 0);
}

#[test]
fn snapshot_after_completion_is_empty() {
    let mut sim = SimBuilder::new(1).build();
    let arrivals = vec![(Time::ZERO, TaskSpec::pipeline(ms(100), &[ms(10)]).unwrap())];
    sim.run(arrivals.into_iter(), Time::from_secs(1));
    let snap = sim.snapshot();
    assert_eq!(snap.live_tasks, 0);
    assert_eq!(snap.stage_jobs, vec![0]);
    assert_eq!(
        snap.synthetic_utilizations,
        vec![0.0],
        "idle reset cleared the departed task"
    );
}

#[test]
fn utilization_timeline_sampling() {
    // A 3 ms cadence deliberately not aligned with the 5 ms arrivals, so
    // samples land mid-execution as well as at idle instants.
    let mut sim = SimBuilder::new(2).sample_utilization(ms(3)).build();
    let arrivals: Vec<(Time, TaskSpec)> = (0..20)
        .map(|i| {
            (
                Time::from_millis(i * 5),
                TaskSpec::pipeline(ms(80), &[ms(2), ms(2)]).unwrap(),
            )
        })
        .collect();
    let m = sim
        .run(arrivals.into_iter(), Time::from_millis(200))
        .clone();
    // Samples at t = 0, 3, 6, …, 198.
    assert_eq!(m.utilization_timeline.len(), 67);
    assert_eq!(m.utilization_timeline[0].0, Time::ZERO);
    assert_eq!(m.utilization_timeline[66].0, Time::from_millis(198));
    // Each sample carries one value per stage; values rise while work
    // arrives and return to zero after everything departs and expires.
    for (_, utils) in &m.utilization_timeline {
        assert_eq!(utils.len(), 2);
        assert!(utils.iter().all(|&u| u >= 0.0));
    }
    let mid_max = m.utilization_timeline[..35]
        .iter()
        .map(|(_, u)| u[0])
        .fold(0.0f64, f64::max);
    assert!(mid_max > 0.0, "utilization must be visible while loaded");
    let last = &m.utilization_timeline[66].1;
    assert_eq!(last, &vec![0.0, 0.0], "all contributions expired by 198 ms");
}

#[test]
fn multi_server_stage_improves_responses_and_stays_safe() {
    // An app tier at 1.6× single-server capacity: with one server the
    // admission controller must reject heavily; with two servers behind
    // the same region the extra capacity shows up as faster responses and
    // (thanks to idle resets tracking real departures) higher admission.
    let build_arrivals = || -> Vec<(Time, TaskSpec)> {
        (0..1600u64)
            .map(|i| {
                (
                    Time::from_micros(i * 6_250), // 160/s for 10 s
                    TaskSpec::pipeline(ms(400), &[ms(10)]).unwrap(),
                )
            })
            .collect()
    };
    let horizon = Time::from_secs(11);

    let mut single = SimBuilder::new(1).build();
    let m1 = single.run(build_arrivals().into_iter(), horizon).clone();

    let mut dual = SimBuilder::new(1).stage_servers(0, 2).build();
    let m2 = dual.run(build_arrivals().into_iter(), horizon).clone();

    assert_eq!(m1.missed, 0);
    assert_eq!(m2.missed, 0, "extra servers never hurt the guarantee");
    assert!(
        m2.admitted > m1.admitted,
        "two servers admit more: {} vs {}",
        m2.admitted,
        m1.admitted
    );
    assert!(
        m2.response_percentile(0.95) <= m1.response_percentile(0.95),
        "p95 should not degrade with a second server"
    );
    // Utilization is normalized per server and stays in [0, 1].
    assert!(m2.stage_utilization(0) <= 1.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The accounting identities and the zero-miss guarantee also hold
    /// with a multi-server stage in the pipeline.
    #[test]
    fn multi_server_accounting_identities(arrivals in arbitrary_arrivals()) {
        let horizon = Time::from_secs(10);
        let mut sim = SimBuilder::new(2).stage_servers(1, 3).build();
        let m = sim.run(arrivals.into_iter(), horizon).clone();
        prop_assert_eq!(m.offered, m.admitted + m.rejected);
        prop_assert_eq!(m.admitted, m.completed + m.in_flight_at_end + m.shed);
        prop_assert_eq!(m.missed, 0);
        // Per-server-normalized utilization stays within [0, 1].
        for j in 0..2 {
            let u = m.stage_utilization(j);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "u={u}");
        }
    }
}

#[test]
fn reserved_importance_tasks_bypass_admission() {
    use frap_core::task::Importance;
    let mut sim = SimBuilder::new(1)
        .reservations(vec![0.5])
        .reserved_importance(Importance::CRITICAL)
        .build();
    // A critical task whose contribution (0.9) would fail any test is
    // started anyway: its capacity is covered by the reservation.
    let critical = TaskSpec::pipeline(ms(100), &[ms(90)])
        .unwrap()
        .with_importance(Importance::CRITICAL);
    // A normal task that would fit an empty stage is rejected against the
    // 0.5 reservation floor (0.5 + 0.3 → f(0.8) > 1).
    let normal = TaskSpec::pipeline(ms(100), &[ms(30)]).unwrap();
    let arrivals = vec![(Time::ZERO, critical), (Time::from_millis(1), normal)];
    let m = sim.run(arrivals.into_iter(), Time::from_secs(1)).clone();
    assert_eq!(m.admitted, 1, "only the critical task enters");
    assert_eq!(m.rejected, 1);
    assert_eq!(m.completed, 1);
}
