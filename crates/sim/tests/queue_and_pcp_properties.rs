//! Property tests for the two foundation pieces of the simulator: the
//! deterministic event queue (against a reference model) and the priority
//! ceiling protocol lock manager (structural invariants under random
//! operation scripts).

use frap_core::task::{LockId, Priority};
use frap_core::time::Time;
use frap_sim::events::EventQueue;
use frap_sim::pcp::{Acquire, LockManager};
use proptest::prelude::*;

proptest! {
    /// The queue pops in (time, insertion order) — exactly a stable sort
    /// of the input by timestamp.
    #[test]
    fn event_queue_matches_stable_sort(times in proptest::collection::vec(0u64..1_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_micros(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().zip(0..).collect();
        expected.sort_by_key(|&(t, _)| t); // stable: preserves insertion order
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_micros(), i));
        }
        prop_assert_eq!(got, expected);
    }

    /// Interleaved pushes and pops never emit an event earlier than one
    /// already emitted at a later... i.e. pops are monotone when every
    /// push is at or after the last popped time (the simulator's usage
    /// contract).
    #[test]
    fn event_queue_monotone_under_simulator_contract(
        script in proptest::collection::vec((0u64..50, proptest::bool::ANY), 1..200)
    ) {
        let mut q = EventQueue::new();
        let mut clock = 0u64;
        let mut seq = 0usize;
        for &(dt, push) in &script {
            if push || q.is_empty() {
                q.push(Time::from_micros(clock + dt), seq);
                seq += 1;
            } else if let Some((t, _)) = q.pop() {
                prop_assert!(t.as_micros() >= clock, "time went backwards");
                clock = t.as_micros();
            }
        }
    }

    /// Bulk insertion is behaviourally identical to repeated `push`: the
    /// same events drain in the same order regardless of how they were
    /// inserted or how the insertions were batched.
    #[test]
    fn push_all_equals_repeated_push(
        times in proptest::collection::vec(0u64..1_000, 0..200),
        split in 0.0f64..1.0,
    ) {
        let events: Vec<(Time, usize)> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| (Time::from_micros(t), i))
            .collect();

        let mut pushed = EventQueue::new();
        for &(t, i) in &events {
            pushed.push(t, i);
        }

        // One bulk insert (hits the O(n) heapify-from-empty path).
        let mut bulk = EventQueue::new();
        bulk.push_all(events.clone());

        // Push a prefix, then bulk-insert the rest (hits the non-empty
        // `push_all` path).
        let cut = (events.len() as f64 * split) as usize;
        let mut mixed = EventQueue::new();
        for &(t, i) in &events[..cut] {
            mixed.push(t, i);
        }
        mixed.push_all(events[cut..].iter().copied());

        prop_assert_eq!(pushed.len(), bulk.len());
        prop_assert_eq!(pushed.len(), mixed.len());
        loop {
            let a = pushed.pop();
            prop_assert_eq!(&a, &bulk.pop());
            prop_assert_eq!(&a, &mixed.pop());
            if a.is_none() {
                break;
            }
        }
    }

    /// Pop order is nondecreasing in time with FIFO tie-breaking, and
    /// `len`/`is_empty` stay consistent through arbitrary interleavings
    /// of `push`, `push_all`, `pop`, and `pop_at_or_before`.
    #[test]
    fn queue_invariants_under_interleaving(
        script in proptest::collection::vec(
            (0u64..1_000, 0u8..4, proptest::collection::vec(0u64..1_000, 0..5)),
            1..100,
        )
    ) {
        let mut q = EventQueue::new();
        let mut seq = 0usize;
        let mut live = 0usize;
        for &(t, op, ref batch) in &script {
            match op {
                0 => {
                    q.push(Time::from_micros(t), seq);
                    seq += 1;
                    live += 1;
                }
                1 => {
                    let events: Vec<(Time, usize)> = batch
                        .iter()
                        .map(|&bt| {
                            let e = (Time::from_micros(bt), seq);
                            seq += 1;
                            e
                        })
                        .collect();
                    live += events.len();
                    q.push_all(events);
                }
                2 => {
                    let popped = q.pop();
                    prop_assert_eq!(popped.is_some(), live > 0);
                    if popped.is_some() {
                        live -= 1;
                    }
                    // A fresh queue accepts any times, so the global
                    // monotonicity check only applies per drain below.
                }
                _ => {
                    let before = q.len();
                    let popped = q.pop_at_or_before(Time::from_micros(t));
                    if let Some((pt, _)) = popped {
                        prop_assert!(pt.as_micros() <= t, "bound violated");
                        live -= 1;
                        prop_assert_eq!(q.len(), before - 1);
                    } else {
                        // Nothing at or before the bound: the head (if
                        // any) must be strictly later.
                        if let Some(head) = q.peek_time() {
                            prop_assert!(head.as_micros() > t);
                        }
                        prop_assert_eq!(q.len(), before);
                    }
                }
            }
            prop_assert_eq!(q.len(), live);
            prop_assert_eq!(q.is_empty(), live == 0);
        }
        // Drain what is left: nondecreasing times, FIFO ties.
        let mut last: Option<(u64, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t.as_micros() >= lt, "time went backwards");
                if t.as_micros() == lt {
                    prop_assert!(i > li, "FIFO tie-break violated");
                }
            }
            last = Some((t.as_micros(), i));
            live -= 1;
        }
        prop_assert_eq!(live, 0);
        prop_assert!(q.is_empty());
    }

    /// Random PCP scripts: at most one holder per lock, a job holds at
    /// most one lock (no nesting in our model), blocked jobs stay blocked
    /// until a release wakes them, and every wake hands the lock over.
    #[test]
    fn pcp_structural_invariants(
        script in proptest::collection::vec((0u64..6, 0u64..3, proptest::bool::ANY), 1..120)
    ) {
        let mut m: LockManager<u64> = LockManager::new();
        // Register everyone up front with distinct priorities.
        for job in 0..6u64 {
            for lock in 0..3u64 {
                m.register_user(LockId::new(lock as usize), Priority::new(10 + job), job);
            }
        }
        // held_model[lock] = holder
        let mut held: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut holder_of: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut blocked: std::collections::HashSet<u64> = std::collections::HashSet::new();

        for &(job, lock, do_release) in &script {
            if blocked.contains(&job) {
                continue; // a blocked job cannot issue requests
            }
            if do_release {
                if let Some(&l) = holder_of.get(&job) {
                    let woken = m.release(&job);
                    holder_of.remove(&job);
                    held.remove(&l);
                    for w in woken {
                        prop_assert!(blocked.remove(&w), "woken job {w} was not blocked");
                        // The woken job now holds its requested lock.
                        let now_holds = (0..3u64)
                            .filter(|&lk| m.holds(&w, LockId::new(lk as usize)))
                            .collect::<Vec<_>>();
                        prop_assert_eq!(now_holds.len(), 1, "woken job holds exactly one lock");
                        held.insert(now_holds[0], w);
                        holder_of.insert(w, now_holds[0]);
                    }
                }
            } else if let std::collections::hash_map::Entry::Vacant(e) = holder_of.entry(job) {
                match m.try_acquire(job, Priority::new(10 + job), LockId::new(lock as usize)) {
                    Acquire::Acquired => {
                        prop_assert!(!held.contains_key(&lock), "double grant on lock {lock}");
                        held.insert(lock, job);
                        e.insert(lock);
                    }
                    Acquire::Blocked => {
                        blocked.insert(job);
                    }
                }
            }

            // Cross-check the model against the manager.
            for (&l, &h) in &held {
                prop_assert!(m.holds(&h, LockId::new(l as usize)));
            }
            prop_assert_eq!(m.held_count(), held.len());
            prop_assert_eq!(m.blocked_count(), blocked.len());
            for b in &blocked {
                prop_assert!(m.is_blocked(b));
            }
        }
    }
}
