//! Property tests for the two foundation pieces of the simulator: the
//! deterministic event queue (against a reference model) and the priority
//! ceiling protocol lock manager (structural invariants under random
//! operation scripts).

use frap_core::task::{LockId, Priority};
use frap_core::time::Time;
use frap_sim::events::EventQueue;
use frap_sim::pcp::{Acquire, LockManager};
use proptest::prelude::*;

proptest! {
    /// The queue pops in (time, insertion order) — exactly a stable sort
    /// of the input by timestamp.
    #[test]
    fn event_queue_matches_stable_sort(times in proptest::collection::vec(0u64..1_000, 0..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(Time::from_micros(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().copied().zip(0..).collect();
        expected.sort_by_key(|&(t, _)| t); // stable: preserves insertion order
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t.as_micros(), i));
        }
        prop_assert_eq!(got, expected);
    }

    /// Interleaved pushes and pops never emit an event earlier than one
    /// already emitted at a later... i.e. pops are monotone when every
    /// push is at or after the last popped time (the simulator's usage
    /// contract).
    #[test]
    fn event_queue_monotone_under_simulator_contract(
        script in proptest::collection::vec((0u64..50, proptest::bool::ANY), 1..200)
    ) {
        let mut q = EventQueue::new();
        let mut clock = 0u64;
        let mut seq = 0usize;
        for &(dt, push) in &script {
            if push || q.is_empty() {
                q.push(Time::from_micros(clock + dt), seq);
                seq += 1;
            } else if let Some((t, _)) = q.pop() {
                prop_assert!(t.as_micros() >= clock, "time went backwards");
                clock = t.as_micros();
            }
        }
    }

    /// Random PCP scripts: at most one holder per lock, a job holds at
    /// most one lock (no nesting in our model), blocked jobs stay blocked
    /// until a release wakes them, and every wake hands the lock over.
    #[test]
    fn pcp_structural_invariants(
        script in proptest::collection::vec((0u64..6, 0u64..3, proptest::bool::ANY), 1..120)
    ) {
        let mut m: LockManager<u64> = LockManager::new();
        // Register everyone up front with distinct priorities.
        for job in 0..6u64 {
            for lock in 0..3u64 {
                m.register_user(LockId::new(lock as usize), Priority::new(10 + job), job);
            }
        }
        // held_model[lock] = holder
        let mut held: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut holder_of: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut blocked: std::collections::HashSet<u64> = std::collections::HashSet::new();

        for &(job, lock, do_release) in &script {
            if blocked.contains(&job) {
                continue; // a blocked job cannot issue requests
            }
            if do_release {
                if let Some(&l) = holder_of.get(&job) {
                    let woken = m.release(&job);
                    holder_of.remove(&job);
                    held.remove(&l);
                    for w in woken {
                        prop_assert!(blocked.remove(&w), "woken job {w} was not blocked");
                        // The woken job now holds its requested lock.
                        let now_holds = (0..3u64)
                            .filter(|&lk| m.holds(&w, LockId::new(lk as usize)))
                            .collect::<Vec<_>>();
                        prop_assert_eq!(now_holds.len(), 1, "woken job holds exactly one lock");
                        held.insert(now_holds[0], w);
                        holder_of.insert(w, now_holds[0]);
                    }
                }
            } else if let std::collections::hash_map::Entry::Vacant(e) = holder_of.entry(job) {
                match m.try_acquire(job, Priority::new(10 + job), LockId::new(lock as usize)) {
                    Acquire::Acquired => {
                        prop_assert!(!held.contains_key(&lock), "double grant on lock {lock}");
                        held.insert(lock, job);
                        e.insert(lock);
                    }
                    Acquire::Blocked => {
                        blocked.insert(job);
                    }
                }
            }

            // Cross-check the model against the manager.
            for (&l, &h) in &held {
                prop_assert!(m.holds(&h, LockId::new(l as usize)));
            }
            prop_assert_eq!(m.held_count(), held.len());
            prop_assert_eq!(m.blocked_count(), blocked.len());
            for b in &blocked {
                prop_assert!(m.is_blocked(b));
            }
        }
    }
}
