//! Priority ceiling protocol (PCP) for per-stage critical sections.
//!
//! The paper's non-independent-task extension (Section 3.2) assumes the
//! priority ceiling protocol at each node, which bounds the blocking `B_ij`
//! a subtask can suffer to **one outermost critical section** of a
//! lower-priority task. This module implements classic PCP:
//!
//! * each lock has a *ceiling* — the highest priority of any job that may
//!   use it (tracked dynamically as jobs register at the stage);
//! * a job may acquire a lock only if the lock is free **and** its priority
//!   exceeds the *system ceiling* (the highest ceiling among locks held by
//!   other jobs);
//! * a blocked job's priority is *inherited* by the job responsible for the
//!   block, so medium-priority work cannot extend the blocking.
//!
//! Jobs hold at most one lock at a time (subtask segments are serial and
//! non-nested), which makes deadlock impossible by construction; PCP's
//! single-blocking property is what the feasible region's `β_j` terms rely
//! on and what the property tests in `frap-sim` verify.
//!
//! Lock identifiers are dense per-stage indices, so every per-lock map is a
//! plain vector indexed by `LockId::index()`; the per-job sets (blocked
//! requests, inheritance boosts, held locks) are small sorted or linear
//! vectors. Iteration over these structures is in a fixed deterministic
//! order (ascending lock index, ascending job key), and every tie-break —
//! which waiter wakes first, which holder inherits — resolves exactly as
//! the ordered-map implementation it replaced.

use frap_core::task::{LockId, Priority};
use std::hash::Hash;

/// Outcome of a lock acquisition attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Acquire {
    /// The lock was granted; the job may enter its critical section.
    Acquired,
    /// The job is blocked; it will resume via the unblock list returned by
    /// a later [`LockManager::release`].
    Blocked,
}

#[derive(Debug, Clone, Copy)]
struct BlockedReq {
    lock: usize,
    priority: Priority,
}

/// The PCP state of one stage, generic over the job identifier so it can
/// be unit-tested in isolation.
///
/// `J` is a dense job key (`(TaskId, node)` in the simulator).
///
/// # Examples
///
/// ```
/// use frap_sim::pcp::{Acquire, LockManager};
/// use frap_core::task::{LockId, Priority};
///
/// let mut m: LockManager<u32> = LockManager::new();
/// let l = LockId::new(0);
/// m.register_user(l, Priority::new(10), 1);
/// m.register_user(l, Priority::new(20), 2);
///
/// assert_eq!(m.try_acquire(2, Priority::new(20), l), Acquire::Acquired);
/// // Job 1 is more urgent but the lock is held: blocked, and job 2
/// // inherits job 1's priority.
/// assert_eq!(m.try_acquire(1, Priority::new(10), l), Acquire::Blocked);
/// assert_eq!(m.inherited(&2), Some(Priority::new(10)));
///
/// // Release hands the lock to the blocked job.
/// assert_eq!(m.release(&2), vec![1]);
/// assert!(m.holds(&1, l));
/// ```
#[derive(Debug, Clone)]
pub struct LockManager<J> {
    /// Per-lock registered users, sorted ascending by `(Priority, J)`:
    /// the ceiling is the last element.
    users: Vec<Vec<(Priority, J)>>,
    /// Current holder of each lock, indexed by lock.
    held: Vec<Option<J>>,
    /// The (single, non-nested) lock each holder holds.
    holder_locks: Vec<(J, usize)>,
    /// Jobs blocked at their acquisition point, sorted ascending by `J`.
    blocked: Vec<(J, BlockedReq)>,
    /// Inherited priorities of blockers.
    boosts: Vec<(J, Priority)>,
}

impl<J: Copy + Ord + Hash + std::fmt::Debug> LockManager<J> {
    /// An empty manager.
    pub fn new() -> LockManager<J> {
        LockManager {
            users: Vec::new(),
            held: Vec::new(),
            holder_locks: Vec::new(),
            blocked: Vec::new(),
            boosts: Vec::new(),
        }
    }

    fn users_mut(&mut self, lock: usize) -> &mut Vec<(Priority, J)> {
        if lock >= self.users.len() {
            self.users.resize_with(lock + 1, Vec::new);
        }
        &mut self.users[lock]
    }

    /// The current ceiling of `lock`: the highest priority among registered
    /// users, or `None` if nobody uses it.
    pub fn ceiling(&self, lock: LockId) -> Option<Priority> {
        self.users
            .get(lock.index())
            .and_then(|s| s.last().map(|&(p, _)| p))
    }

    /// Registers a (future) user of `lock`, raising its ceiling if needed.
    /// Call when a lock-using subtask becomes present at the stage.
    pub fn register_user(&mut self, lock: LockId, priority: Priority, job: J) {
        let users = self.users_mut(lock.index());
        if let Err(pos) = users.binary_search(&(priority, job)) {
            users.insert(pos, (priority, job));
        }
    }

    /// Removes a user registration. Call when the subtask leaves the stage.
    pub fn deregister_user(&mut self, lock: LockId, priority: Priority, job: J) {
        if let Some(s) = self.users.get_mut(lock.index()) {
            if let Ok(pos) = s.binary_search(&(priority, job)) {
                s.remove(pos);
            }
        }
    }

    /// Whether `job` currently holds `lock`.
    pub fn holds(&self, job: &J, lock: LockId) -> bool {
        self.held.get(lock.index()).copied().flatten().as_ref() == Some(job)
    }

    /// Whether `job` is blocked at a lock-acquisition point.
    pub fn is_blocked(&self, job: &J) -> bool {
        self.blocked.binary_search_by(|e| e.0.cmp(job)).is_ok()
    }

    /// The priority `job` currently inherits from jobs it blocks, if any.
    pub fn inherited(&self, job: &J) -> Option<Priority> {
        self.boosts.iter().find(|(b, _)| b == job).map(|&(_, p)| p)
    }

    /// The PCP system ceiling from the perspective of `job`: the highest
    /// ceiling among locks held by *other* jobs.
    pub fn system_ceiling_excluding(&self, job: &J) -> Option<Priority> {
        self.held
            .iter()
            .enumerate()
            .filter_map(|(lock, h)| match h {
                Some(holder) if holder != job => self.ceiling(LockId::new(lock)),
                _ => None,
            })
            .max()
    }

    /// Attempts to acquire `lock` for `job` running at base `priority`.
    ///
    /// Grants the lock iff it is free and `priority` exceeds the system
    /// ceiling (the PCP rule). Otherwise the job is recorded as blocked and
    /// the responsible holder inherits `priority`.
    pub fn try_acquire(&mut self, job: J, priority: Priority, lock: LockId) -> Acquire {
        if self.can_acquire(&job, priority, lock) {
            self.grant(job, lock);
            Acquire::Acquired
        } else {
            let req = BlockedReq {
                lock: lock.index(),
                priority,
            };
            match self.blocked.binary_search_by(|e| e.0.cmp(&job)) {
                Ok(pos) => self.blocked[pos] = (job, req),
                Err(pos) => self.blocked.insert(pos, (job, req)),
            }
            self.recompute_boosts();
            Acquire::Blocked
        }
    }

    /// Releases `job`'s held lock (if any) and returns the jobs that
    /// acquire locks as a result, in decreasing priority order. The
    /// returned jobs already hold their requested locks and must be made
    /// runnable by the caller.
    pub fn release(&mut self, job: &J) -> Vec<J> {
        let Some(pos) = self.holder_locks.iter().position(|(h, _)| h == job) else {
            return Vec::new();
        };
        let (_, lock) = self.holder_locks.swap_remove(pos);
        self.held[lock] = None;
        if let Some(bpos) = self.boosts.iter().position(|(b, _)| b == job) {
            self.boosts.swap_remove(bpos);
        }
        self.wake_unblockable()
    }

    /// Removes `job` entirely (kill/shed): drops any block record, releases
    /// any held lock. Returns newly unblocked jobs, as in
    /// [`LockManager::release`]. User registrations must be removed
    /// separately via [`LockManager::deregister_user`].
    pub fn remove_job(&mut self, job: &J) -> Vec<J> {
        if let Ok(pos) = self.blocked.binary_search_by(|e| e.0.cmp(job)) {
            self.blocked.remove(pos);
        }
        let woken = self.release(job);
        self.recompute_boosts();
        woken
    }

    /// Number of currently blocked jobs.
    pub fn blocked_count(&self) -> usize {
        self.blocked.len()
    }

    /// Number of currently held locks.
    pub fn held_count(&self) -> usize {
        self.held.iter().flatten().count()
    }

    fn can_acquire(&self, job: &J, priority: Priority, lock: LockId) -> bool {
        if self.held.get(lock.index()).copied().flatten().is_some() {
            return false;
        }
        match self.system_ceiling_excluding(job) {
            None => true,
            Some(ceiling) => priority > ceiling,
        }
    }

    fn grant(&mut self, job: J, lock: LockId) {
        debug_assert!(
            !self.holder_locks.iter().any(|(h, _)| *h == job),
            "nested locking is not supported"
        );
        if lock.index() >= self.held.len() {
            self.held.resize(lock.index() + 1, None);
        }
        self.held[lock.index()] = Some(job);
        self.holder_locks.push((job, lock.index()));
    }

    fn wake_unblockable(&mut self) -> Vec<J> {
        let mut woken = Vec::new();
        loop {
            // Highest-priority blocked job that can now acquire. Scanning
            // ascending job keys and keeping the last maximum reproduces
            // the ordered-map tie-break: the largest job key wins among
            // equal priorities.
            let mut candidate: Option<(usize, J, BlockedReq)> = None;
            for i in 0..self.blocked.len() {
                let (j, req) = self.blocked[i];
                if self.can_acquire(&j, req.priority, LockId::new(req.lock))
                    && candidate
                        .as_ref()
                        .is_none_or(|&(_, _, best)| req.priority >= best.priority)
                {
                    candidate = Some((i, j, req));
                }
            }
            match candidate {
                Some((pos, j, req)) => {
                    self.blocked.remove(pos);
                    self.grant(j, LockId::new(req.lock));
                    woken.push(j);
                }
                None => break,
            }
        }
        self.recompute_boosts();
        woken
    }

    /// Rebuilds inheritance: every blocked job boosts the holder that
    /// prevents its acquisition (the holder of its requested lock, or of
    /// the highest-ceiling lock held by another job).
    fn recompute_boosts(&mut self) {
        let mut boosts = std::mem::take(&mut self.boosts);
        boosts.clear();
        for i in 0..self.blocked.len() {
            let (job, req) = self.blocked[i];
            let blocker = match self.held.get(req.lock).copied().flatten() {
                Some(holder) => Some(holder),
                None => {
                    // Blocked by the ceiling rule: boost the holder of the
                    // highest-ceiling lock held by another job.
                    self.held
                        .iter()
                        .enumerate()
                        .filter_map(|(l, h)| h.map(|holder| (l, holder)))
                        .filter(|(_, holder)| *holder != job)
                        .max_by_key(|&(l, _)| self.ceiling(LockId::new(l)))
                        .map(|(_, holder)| holder)
                }
            };
            if let Some(b) = blocker {
                match boosts.iter_mut().find(|(h, _)| *h == b) {
                    Some((_, p)) => *p = (*p).max(req.priority),
                    None => boosts.push((b, req.priority)),
                }
            }
        }
        self.boosts = boosts;
    }
}

impl<J: Copy + Ord + Hash + std::fmt::Debug> Default for LockManager<J> {
    fn default() -> Self {
        LockManager::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(key: u64) -> Priority {
        Priority::new(key)
    }

    fn l(i: usize) -> LockId {
        LockId::new(i)
    }

    #[test]
    fn free_lock_with_no_ceiling_is_granted() {
        let mut m: LockManager<u32> = LockManager::new();
        m.register_user(l(0), p(10), 1);
        assert_eq!(m.try_acquire(1, p(10), l(0)), Acquire::Acquired);
        assert!(m.holds(&1, l(0)));
        assert_eq!(m.held_count(), 1);
    }

    #[test]
    fn held_lock_blocks_and_inherits() {
        let mut m: LockManager<u32> = LockManager::new();
        m.register_user(l(0), p(10), 1);
        m.register_user(l(0), p(20), 2);
        assert_eq!(m.try_acquire(2, p(20), l(0)), Acquire::Acquired);
        assert_eq!(m.try_acquire(1, p(10), l(0)), Acquire::Blocked);
        assert!(m.is_blocked(&1));
        // Holder 2 inherits blocked job 1's (higher) priority.
        assert_eq!(m.inherited(&2), Some(p(10)));
        assert_eq!(m.blocked_count(), 1);
    }

    #[test]
    fn release_grants_to_highest_priority_waiter() {
        let mut m: LockManager<u32> = LockManager::new();
        for (job, prio) in [(1, p(10)), (2, p(20)), (3, p(30))] {
            m.register_user(l(0), prio, job);
        }
        assert_eq!(m.try_acquire(3, p(30), l(0)), Acquire::Acquired);
        assert_eq!(m.try_acquire(2, p(20), l(0)), Acquire::Blocked);
        assert_eq!(m.try_acquire(1, p(10), l(0)), Acquire::Blocked);
        let woken = m.release(&3);
        // Job 1 (key 10) is the most urgent waiter.
        assert_eq!(woken, vec![1]);
        assert!(m.holds(&1, l(0)));
        assert!(m.is_blocked(&2));
        assert_eq!(m.inherited(&1), Some(p(20)));
    }

    #[test]
    fn ceiling_rule_blocks_second_lock() {
        // Classic PCP scenario: job H must not be able to suffer two
        // blockings. L1 holds lock A (ceiling = H's priority). M requests
        // free lock B but is blocked by the ceiling rule, because its
        // priority does not exceed ceiling(A).
        let mut m: LockManager<u32> = LockManager::new();
        let (h, mid, lo) = (1, 2, 3);
        m.register_user(l(0), p(10), h); // H uses lock A → ceiling(A) = 10
        m.register_user(l(0), p(30), lo);
        m.register_user(l(1), p(10), h); // H also uses lock B
        m.register_user(l(1), p(20), mid);

        assert_eq!(m.try_acquire(lo, p(30), l(0)), Acquire::Acquired);
        // M's priority (20) does not exceed the system ceiling (10 is more
        // urgent → "higher"), so M is blocked even though lock B is free.
        assert_eq!(m.try_acquire(mid, p(20), l(1)), Acquire::Blocked);
        // The ceiling-lock holder inherits M's priority.
        assert_eq!(m.inherited(&lo), Some(p(20)));
        // H itself *does* exceed the ceiling? No: ceiling includes H's own
        // registration; PCP requires strictly greater, so H blocks on the
        // ceiling too — and inherits through to LO.
        assert_eq!(m.try_acquire(h, p(10), l(1)), Acquire::Blocked);
        assert_eq!(m.inherited(&lo), Some(p(10)));
        // When LO releases A, H gets B first (highest priority waiter).
        let woken = m.release(&lo);
        assert_eq!(woken[0], h);
        assert!(m.holds(&h, l(1)));
    }

    #[test]
    fn single_blocking_property() {
        // Once H has been blocked and resumes, no lower-priority job can
        // acquire a lock H uses while H is live — H never blocks twice.
        let mut m: LockManager<u32> = LockManager::new();
        let (h, lo) = (1, 2);
        m.register_user(l(0), p(10), h);
        m.register_user(l(0), p(30), lo);
        m.register_user(l(1), p(10), h);

        assert_eq!(m.try_acquire(lo, p(30), l(0)), Acquire::Acquired);
        assert_eq!(m.try_acquire(h, p(10), l(1)), Acquire::Blocked); // ceiling rule
        let woken = m.release(&lo);
        assert_eq!(woken, vec![h]);
        // H now holds B; when it later wants A, A is free and ceiling
        // excludes its own lock's users? A's ceiling is 10 (H itself) but
        // held locks by others: none → acquisition allowed after releasing B.
        assert_eq!(m.release(&h), Vec::<u32>::new());
        assert_eq!(m.try_acquire(h, p(10), l(0)), Acquire::Acquired);
    }

    #[test]
    fn remove_job_releases_and_unblocks() {
        let mut m: LockManager<u32> = LockManager::new();
        m.register_user(l(0), p(10), 1);
        m.register_user(l(0), p(20), 2);
        assert_eq!(m.try_acquire(2, p(20), l(0)), Acquire::Acquired);
        assert_eq!(m.try_acquire(1, p(10), l(0)), Acquire::Blocked);
        let woken = m.remove_job(&2);
        assert_eq!(woken, vec![1]);
        assert!(m.holds(&1, l(0)));
        assert_eq!(m.inherited(&1), None);
    }

    #[test]
    fn remove_blocked_job_clears_boost() {
        let mut m: LockManager<u32> = LockManager::new();
        m.register_user(l(0), p(10), 1);
        m.register_user(l(0), p(20), 2);
        m.try_acquire(2, p(20), l(0));
        m.try_acquire(1, p(10), l(0));
        assert_eq!(m.inherited(&2), Some(p(10)));
        let woken = m.remove_job(&1);
        assert!(woken.is_empty());
        assert_eq!(m.inherited(&2), None);
        assert_eq!(m.blocked_count(), 0);
    }

    #[test]
    fn deregistration_lowers_ceiling() {
        let mut m: LockManager<u32> = LockManager::new();
        m.register_user(l(0), p(10), 1);
        m.register_user(l(0), p(30), 2);
        assert_eq!(m.ceiling(l(0)), Some(p(10)));
        m.deregister_user(l(0), p(10), 1);
        assert_eq!(m.ceiling(l(0)), Some(p(30)));
        m.deregister_user(l(0), p(30), 2);
        assert_eq!(m.ceiling(l(0)), None);
    }

    #[test]
    fn release_without_lock_is_noop() {
        let mut m: LockManager<u32> = LockManager::new();
        assert!(m.release(&7).is_empty());
        assert!(m.remove_job(&7).is_empty());
    }

    #[test]
    fn independent_locks_do_not_interfere_below_ceiling() {
        // Two locks with low ceilings: a high-priority job that uses
        // neither lock is irrelevant; two low jobs on different locks with
        // ceilings below each other's priorities must not block.
        let mut m: LockManager<u32> = LockManager::new();
        m.register_user(l(0), p(100), 1);
        m.register_user(l(1), p(90), 2);
        assert_eq!(m.try_acquire(1, p(100), l(0)), Acquire::Acquired);
        // Job 2's priority (90) exceeds ceiling(l0) = 100? Priority 90 is
        // *more urgent* than 100, so yes: acquisition proceeds.
        assert_eq!(m.try_acquire(2, p(90), l(1)), Acquire::Acquired);
        assert_eq!(m.held_count(), 2);
    }

    #[test]
    fn duplicate_registration_is_idempotent() {
        let mut m: LockManager<u32> = LockManager::new();
        m.register_user(l(0), p(10), 1);
        m.register_user(l(0), p(10), 1);
        m.deregister_user(l(0), p(10), 1);
        assert_eq!(m.ceiling(l(0)), None);
    }

    #[test]
    fn equal_priority_waiters_wake_in_descending_key_order() {
        // The tie-break contract the simulator's determinism rests on:
        // among equal-priority waiters the largest job key wakes first.
        let mut m: LockManager<u32> = LockManager::new();
        for job in [1, 2, 9] {
            m.register_user(l(0), p(10), job);
        }
        m.register_user(l(0), p(30), 7);
        assert_eq!(m.try_acquire(7, p(30), l(0)), Acquire::Acquired);
        assert_eq!(m.try_acquire(2, p(10), l(0)), Acquire::Blocked);
        assert_eq!(m.try_acquire(9, p(10), l(0)), Acquire::Blocked);
        assert_eq!(m.try_acquire(1, p(10), l(0)), Acquire::Blocked);
        let woken = m.release(&7);
        assert_eq!(woken, vec![9], "largest key wins among equal priorities");
    }
}
