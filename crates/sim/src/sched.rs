//! Priority-assignment policies.
//!
//! The paper's model fixes a task's priority across all pipeline stages at
//! arrival. [`DeadlineMonotonic`] is the optimal fixed-priority policy for
//! aperiodic tasks (no urgency inversion, `α = 1`). [`RandomPriority`]
//! realizes the worst documented inversion (`α = D_least / D_most`) and
//! [`EarliestDeadlineFirst`] keys priority off the *absolute* deadline —
//! deliberately **not** a fixed-priority policy in the paper's sense (its
//! priority depends on arrival time), provided as an ablation.

use frap_core::graph::TaskSpec;
use frap_core::task::{Priority, TaskId};
use frap_core::time::Time;

/// Assigns the stage-invariant priority of each admitted task.
pub trait PriorityPolicy: std::fmt::Debug {
    /// The priority for `spec`, arriving at `now` with identity `id`.
    fn priority(&mut self, now: Time, spec: &TaskSpec, id: TaskId) -> Priority;

    /// A short, stable policy name for reports.
    fn name(&self) -> &'static str;
}

/// Deadline-monotonic: priority key = relative end-to-end deadline.
///
/// Shorter deadline ⇒ higher priority; no urgency inversion (`α = 1`).
///
/// # Examples
///
/// ```
/// use frap_sim::sched::{DeadlineMonotonic, PriorityPolicy};
/// use frap_core::graph::TaskSpec;
/// use frap_core::task::TaskId;
/// use frap_core::time::{Time, TimeDelta};
///
/// let ms = TimeDelta::from_millis;
/// let mut dm = DeadlineMonotonic;
/// let urgent = TaskSpec::pipeline(ms(10), &[ms(1)])?;
/// let lax = TaskSpec::pipeline(ms(100), &[ms(1)])?;
/// let p_urgent = dm.priority(Time::ZERO, &urgent, TaskId::new(0));
/// let p_lax = dm.priority(Time::ZERO, &lax, TaskId::new(1));
/// assert!(p_urgent > p_lax);
/// # Ok::<(), frap_core::error::GraphError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineMonotonic;

impl PriorityPolicy for DeadlineMonotonic {
    fn priority(&mut self, _now: Time, spec: &TaskSpec, _id: TaskId) -> Priority {
        Priority::new(spec.deadline.as_micros())
    }

    fn name(&self) -> &'static str {
        "deadline-monotonic"
    }
}

/// Random priorities, unrelated to deadlines: the fully urgency-inverted
/// fixed-priority policy with `α = D_least / D_most` (Section 2).
///
/// Uses a small deterministic internal generator so simulations are
/// reproducible from the seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomPriority {
    state: u64,
}

impl RandomPriority {
    /// A policy seeded for reproducibility.
    pub fn new(seed: u64) -> RandomPriority {
        RandomPriority {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64: adequate statistical quality for priority keys.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl PriorityPolicy for RandomPriority {
    fn priority(&mut self, _now: Time, _spec: &TaskSpec, _id: TaskId) -> Priority {
        Priority::new(self.next_u64())
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

/// Earliest-deadline-first: priority key = absolute deadline `A_i + D_i`.
///
/// **Not** a fixed-priority policy in the paper's sense — the key depends
/// on arrival time — so the feasible-region guarantee does not cover it.
/// Provided as an ablation baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EarliestDeadlineFirst;

impl PriorityPolicy for EarliestDeadlineFirst {
    fn priority(&mut self, now: Time, spec: &TaskSpec, _id: TaskId) -> Priority {
        Priority::new((now + spec.deadline).as_micros())
    }

    fn name(&self) -> &'static str {
        "edf"
    }
}

/// Priorities follow semantic importance (most important = most urgent):
/// the suboptimal assignment Section 5 argues admission control makes
/// unnecessary.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByImportance;

impl PriorityPolicy for ByImportance {
    fn priority(&mut self, _now: Time, spec: &TaskSpec, _id: TaskId) -> Priority {
        // Higher importance → smaller key → higher priority.
        Priority::new(u64::from(u32::MAX - spec.importance.level()))
    }

    fn name(&self) -> &'static str {
        "by-importance"
    }
}

/// Empirically estimates the urgency-inversion parameter `α` of a policy
/// over a sample of the workload's task population, by assigning sample
/// priorities and computing the minimum deadline ratio across
/// priority-ordered pairs (Section 2's definition).
///
/// Use this to pick the [`frap_core::region::FeasibleRegion::with_alpha`]
/// budget that makes a non-deadline-monotonic policy safe.
///
/// # Examples
///
/// ```
/// use frap_sim::sched::{estimate_alpha, DeadlineMonotonic, RandomPriority};
/// use frap_core::graph::TaskSpec;
/// use frap_core::time::TimeDelta;
///
/// let ms = TimeDelta::from_millis;
/// let samples: Vec<TaskSpec> = (1..=10)
///     .map(|i| TaskSpec::pipeline(ms(i * 50), &[ms(1)]).unwrap())
///     .collect();
/// assert_eq!(estimate_alpha(&mut DeadlineMonotonic, &samples).value(), 1.0);
/// // Random priorities over deadlines 50..500 ms: α ≈ 0.1.
/// let a = estimate_alpha(&mut RandomPriority::new(7), &samples);
/// assert!(a.value() <= 0.2);
/// ```
pub fn estimate_alpha<P: PriorityPolicy + ?Sized>(
    policy: &mut P,
    samples: &[TaskSpec],
) -> frap_core::alpha::Alpha {
    let pairs: Vec<(Priority, frap_core::time::TimeDelta)> = samples
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            (
                policy.priority(Time::ZERO, spec, TaskId::new(i as u64)),
                spec.deadline,
            )
        })
        .collect();
    frap_core::alpha::alpha_for_assignment(&pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frap_core::task::Importance;
    use frap_core::time::TimeDelta;

    fn spec(deadline_ms: u64) -> TaskSpec {
        TaskSpec::pipeline(
            TimeDelta::from_millis(deadline_ms),
            &[TimeDelta::from_millis(1)],
        )
        .unwrap()
    }

    #[test]
    fn dm_orders_by_relative_deadline() {
        let mut dm = DeadlineMonotonic;
        let a = dm.priority(Time::from_secs(5), &spec(10), TaskId::new(0));
        let b = dm.priority(Time::ZERO, &spec(20), TaskId::new(1));
        assert!(a > b, "shorter deadline wins regardless of arrival time");
        assert_eq!(dm.name(), "deadline-monotonic");
    }

    #[test]
    fn dm_is_arrival_time_invariant() {
        let mut dm = DeadlineMonotonic;
        let early = dm.priority(Time::ZERO, &spec(10), TaskId::new(0));
        let late = dm.priority(Time::from_secs(100), &spec(10), TaskId::new(1));
        assert_eq!(early, late);
    }

    #[test]
    fn random_is_reproducible_and_varied() {
        let mut a = RandomPriority::new(42);
        let mut b = RandomPriority::new(42);
        let s = spec(10);
        let keys_a: Vec<u64> = (0..50)
            .map(|i| a.priority(Time::ZERO, &s, TaskId::new(i)).key())
            .collect();
        let keys_b: Vec<u64> = (0..50)
            .map(|i| b.priority(Time::ZERO, &s, TaskId::new(i)).key())
            .collect();
        assert_eq!(keys_a, keys_b, "same seed, same sequence");
        let mut sorted = keys_a.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() > 45, "keys should be essentially unique");
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RandomPriority::new(1);
        let mut b = RandomPriority::new(2);
        let s = spec(10);
        assert_ne!(
            a.priority(Time::ZERO, &s, TaskId::new(0)),
            b.priority(Time::ZERO, &s, TaskId::new(0))
        );
    }

    #[test]
    fn edf_depends_on_arrival_time() {
        let mut edf = EarliestDeadlineFirst;
        let early = edf.priority(Time::ZERO, &spec(10), TaskId::new(0));
        let late = edf.priority(Time::from_secs(1), &spec(10), TaskId::new(1));
        assert!(early > late, "earlier absolute deadline wins");
    }

    #[test]
    fn estimate_alpha_matches_policy_character() {
        let samples: Vec<TaskSpec> = (1..=20).map(|i| spec(i * 10)).collect();
        assert_eq!(
            estimate_alpha(&mut DeadlineMonotonic, &samples).value(),
            1.0
        );
        let a = estimate_alpha(&mut RandomPriority::new(3), &samples).value();
        // Deadlines span 10..200 ms: random assignment's α approaches
        // D_least/D_most = 0.05 (sampling may not hit the exact extremes).
        assert!(a < 0.3, "a={a}");
        assert!(a >= 0.05 - 1e-12);
    }

    #[test]
    fn by_importance_orders_by_level() {
        let mut pol = ByImportance;
        let hi = spec(10).with_importance(Importance::new(9));
        let lo = spec(10).with_importance(Importance::new(1));
        assert!(
            pol.priority(Time::ZERO, &hi, TaskId::new(0))
                > pol.priority(Time::ZERO, &lo, TaskId::new(1))
        );
    }
}
