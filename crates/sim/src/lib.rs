//! # frap-sim
//!
//! Discrete-event simulation substrate for the feasible-region pipeline
//! analysis of Abdelzaher, Thaker & Lardieri (ICDCS 2004), matching the
//! scheduling model the paper's evaluation assumes:
//!
//! * **per-stage preemptive fixed-priority scheduling** — a task's priority
//!   is assigned once at admission and holds at every stage
//!   ([`sched::DeadlineMonotonic`] is the paper's default; random and EDF
//!   policies are provided for the α-ablation);
//! * **priority ceiling protocol** for per-stage critical sections
//!   ([`pcp::LockManager`]), bounding blocking to one lower-priority
//!   critical section (the `β_j` terms);
//! * **DAG routing** — subtasks release when their precedence
//!   predecessors complete; pipelines are chains;
//! * **synthetic-utilization bookkeeping** — arrivals charge all stages,
//!   deadlines decrement, idle stages reset departed contributions, with
//!   optional reservations, wait queues and importance-based shedding
//!   (Sections 4–5);
//! * **operational tooling** — latency histograms with percentiles
//!   ([`hist`]), bounded scheduling traces ([`trace`]), state snapshots
//!   and synthetic-utilization timelines ([`pipeline::Snapshot`],
//!   [`pipeline::SimBuilder::sample_utilization`]);
//! * **extensions** — multi-server stages behind one queue
//!   ([`pipeline::SimBuilder::stage_servers`]) and admission-time routing
//!   for partitioned replica tiers ([`pipeline::SimBuilder::router`]).
//!
//! Simulations are deterministic: identical arrival sequences and
//! configurations produce identical metrics, which the experiment harness
//! relies on for reproducibility.
//!
//! ## Example
//!
//! ```
//! use frap_core::graph::TaskSpec;
//! use frap_core::time::{Time, TimeDelta};
//! use frap_sim::pipeline::SimBuilder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ms = TimeDelta::from_millis;
//! // Two-stage pipeline; three requests, one of which will not fit.
//! let mut sim = SimBuilder::new(2).build();
//! let arrivals = vec![
//!     (Time::ZERO, TaskSpec::pipeline(ms(100), &[ms(20), ms(20)])?),
//!     (Time::from_millis(1), TaskSpec::pipeline(ms(100), &[ms(20), ms(20)])?),
//!     (Time::from_millis(2), TaskSpec::pipeline(ms(100), &[ms(20), ms(20)])?),
//! ];
//! let metrics = sim.run(arrivals.into_iter(), Time::from_secs(1));
//! assert_eq!(metrics.missed, 0, "admitted tasks always meet deadlines");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod metrics;
pub mod pcp;
pub mod pipeline;
pub mod sched;
pub mod stage;
pub mod trace;

// The histogram moved to `frap-core` so the service layer can reuse it;
// re-exported here to keep `frap_sim::hist` paths working.
pub use frap_core::hist;
pub use frap_core::hist::LatencyHistogram;
pub use metrics::{SimMetrics, StageMetrics, TaskOutcome};
pub use pipeline::{OverloadPolicy, SimBuilder, Simulation, Snapshot, WaitPolicy};
pub use sched::{DeadlineMonotonic, EarliestDeadlineFirst, PriorityPolicy, RandomPriority};
pub use trace::{Trace, TraceEvent};
