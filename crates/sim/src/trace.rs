//! Execution tracing: a bounded ring buffer of scheduling events for
//! debugging and for inspecting small scenarios (who preempted whom, when
//! a stage reset, why an arrival was rejected).
//!
//! Enable with [`crate::pipeline::SimBuilder::trace`]; read back with
//! [`crate::pipeline::Simulation::trace`]. Recording is allocation-light
//! (events are `Copy`) and bounded: when full, the oldest events are
//! dropped and counted.

use frap_core::task::TaskId;
use frap_core::time::Time;
use std::collections::VecDeque;
use std::fmt;

/// One recorded scheduling event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A task was admitted (with its admission-assigned id).
    Admitted {
        /// When.
        time: Time,
        /// The new task.
        task: TaskId,
    },
    /// An arrival was rejected outright.
    Rejected {
        /// When.
        time: Time,
    },
    /// An arrival entered the admission wait queue.
    Queued {
        /// When.
        time: Time,
    },
    /// An admitted task was shed at overload.
    Shed {
        /// When.
        time: Time,
        /// The victim.
        task: TaskId,
    },
    /// A subtask started (or resumed) executing on a stage.
    Dispatched {
        /// When.
        time: Time,
        /// Stage index.
        stage: usize,
        /// The job.
        task: TaskId,
        /// Subtask node index within the task graph.
        node: u32,
    },
    /// A subtask finished at a stage.
    SubtaskDone {
        /// When.
        time: Time,
        /// Stage index.
        stage: usize,
        /// The job.
        task: TaskId,
        /// Subtask node index.
        node: u32,
    },
    /// A stage went idle and its synthetic utilization was reset.
    IdleReset {
        /// When.
        time: Time,
        /// Stage index.
        stage: usize,
    },
    /// A task completed end to end.
    TaskDone {
        /// When.
        time: Time,
        /// The task.
        task: TaskId,
        /// Whether it finished after its absolute deadline.
        missed: bool,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn time(&self) -> Time {
        match *self {
            TraceEvent::Admitted { time, .. }
            | TraceEvent::Rejected { time }
            | TraceEvent::Queued { time }
            | TraceEvent::Shed { time, .. }
            | TraceEvent::Dispatched { time, .. }
            | TraceEvent::SubtaskDone { time, .. }
            | TraceEvent::IdleReset { time, .. }
            | TraceEvent::TaskDone { time, .. } => time,
        }
    }

    /// The task the event concerns, if any.
    pub fn task(&self) -> Option<TaskId> {
        match *self {
            TraceEvent::Admitted { task, .. }
            | TraceEvent::Shed { task, .. }
            | TraceEvent::Dispatched { task, .. }
            | TraceEvent::SubtaskDone { task, .. }
            | TraceEvent::TaskDone { task, .. } => Some(task),
            _ => None,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TraceEvent::Admitted { time, task } => write!(f, "{time} admit    {task}"),
            TraceEvent::Rejected { time } => write!(f, "{time} reject"),
            TraceEvent::Queued { time } => write!(f, "{time} queue"),
            TraceEvent::Shed { time, task } => write!(f, "{time} shed     {task}"),
            TraceEvent::Dispatched {
                time,
                stage,
                task,
                node,
            } => write!(f, "{time} run      {task}.{node} @stage{stage}"),
            TraceEvent::SubtaskDone {
                time,
                stage,
                task,
                node,
            } => write!(f, "{time} done     {task}.{node} @stage{stage}"),
            TraceEvent::IdleReset { time, stage } => {
                write!(f, "{time} idle     stage{stage} (reset)")
            }
            TraceEvent::TaskDone { time, task, missed } => {
                write!(
                    f,
                    "{time} finish   {task}{}",
                    if missed { " MISSED" } else { "" }
                )
            }
        }
    }
}

/// A bounded ring buffer of [`TraceEvent`]s.
#[derive(Debug, Clone)]
pub struct Trace {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl Trace {
    /// A trace holding at most `capacity` events (oldest dropped first).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Trace {
        assert!(capacity > 0, "trace capacity must be positive");
        Trace {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Records an event, dropping the oldest if full.
    pub fn record(&mut self, event: TraceEvent) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(event);
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over retained events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Retained events concerning one task, oldest first.
    pub fn of_task(&self, task: TaskId) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.task() == Some(task))
            .copied()
            .collect()
    }

    /// Renders the whole trace, one event per line.
    pub fn dump(&self) -> String {
        let mut out = String::new();
        if self.dropped > 0 {
            out.push_str(&format!(
                "... {} earlier events dropped ...\n",
                self.dropped
            ));
        }
        for e in &self.events {
            out.push_str(&format!("{e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> Time {
        Time::from_millis(ms)
    }

    #[test]
    fn records_in_order() {
        let mut tr = Trace::new(10);
        tr.record(TraceEvent::Admitted {
            time: t(1),
            task: TaskId::new(0),
        });
        tr.record(TraceEvent::Rejected { time: t(2) });
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.iter().next().unwrap().time(), t(1));
        assert_eq!(tr.dropped(), 0);
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut tr = Trace::new(3);
        for i in 0..5 {
            tr.record(TraceEvent::Rejected { time: t(i) });
        }
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.dropped(), 2);
        assert_eq!(tr.iter().next().unwrap().time(), t(2));
        assert!(tr.dump().contains("2 earlier events dropped"));
    }

    #[test]
    fn filter_by_task() {
        let mut tr = Trace::new(10);
        tr.record(TraceEvent::Admitted {
            time: t(1),
            task: TaskId::new(7),
        });
        tr.record(TraceEvent::Dispatched {
            time: t(2),
            stage: 0,
            task: TaskId::new(7),
            node: 0,
        });
        tr.record(TraceEvent::Admitted {
            time: t(3),
            task: TaskId::new(8),
        });
        let events = tr.of_task(TaskId::new(7));
        assert_eq!(events.len(), 2);
    }

    #[test]
    fn display_formats_are_informative() {
        let samples = [
            TraceEvent::Admitted {
                time: t(1),
                task: TaskId::new(1),
            },
            TraceEvent::Rejected { time: t(1) },
            TraceEvent::Queued { time: t(1) },
            TraceEvent::Shed {
                time: t(1),
                task: TaskId::new(2),
            },
            TraceEvent::Dispatched {
                time: t(1),
                stage: 0,
                task: TaskId::new(3),
                node: 1,
            },
            TraceEvent::SubtaskDone {
                time: t(1),
                stage: 0,
                task: TaskId::new(3),
                node: 1,
            },
            TraceEvent::IdleReset {
                time: t(1),
                stage: 2,
            },
            TraceEvent::TaskDone {
                time: t(1),
                task: TaskId::new(3),
                missed: true,
            },
        ];
        for e in samples {
            assert!(!format!("{e}").is_empty());
        }
        assert!(format!(
            "{}",
            TraceEvent::TaskDone {
                time: t(1),
                task: TaskId::new(3),
                missed: true
            }
        )
        .contains("MISSED"));
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        Trace::new(0);
    }
}
