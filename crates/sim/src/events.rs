//! A deterministic discrete-event queue.
//!
//! Events fire in timestamp order; ties break in insertion order (FIFO),
//! which keeps simulations bit-for-bit reproducible across runs and
//! platforms. The queue is generic so unit tests can exercise it with
//! plain payloads.

use frap_core::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic min-queue of `(Time, E)` entries with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use frap_sim::events::EventQueue;
/// use frap_core::time::Time;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_secs(2), "later");
/// q.push(Time::from_secs(1), "first");
/// q.push(Time::from_secs(1), "second");
/// assert_eq!(q.pop(), Some((Time::from_secs(1), "first")));
/// assert_eq!(q.pop(), Some((Time::from_secs(1), "second")));
/// assert_eq!(q.pop(), Some((Time::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry { time, seq, event }));
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|Reverse(e)| (e.time, e.event))
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Time::from_micros(30), 3);
        q.push(Time::from_micros(10), 1);
        q.push(Time::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_micros(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(Time::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_micros(10), "a");
        q.push(Time::from_micros(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(Time::from_micros(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
    }
}
