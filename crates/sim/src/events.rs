//! A deterministic discrete-event queue.
//!
//! Events fire in timestamp order; ties break in insertion order (FIFO),
//! which keeps simulations bit-for-bit reproducible across runs and
//! platforms. The queue is generic so unit tests can exercise it with
//! plain payloads.
//!
//! This is the hot core of every simulation the experiment harness runs,
//! so the implementation is tuned accordingly:
//!
//! * the `(time, insertion sequence)` ordering pair is packed into a
//!   single `u128` key, so heap sift comparisons are one integer compare
//!   instead of a lexicographic tuple compare;
//! * [`EventQueue::with_capacity`] pre-sizes the heap so steady-state
//!   simulations never reallocate;
//! * [`EventQueue::push_all`] bulk-loads a batch (an `O(n)` heapify when
//!   the queue is empty, reserve-then-push otherwise) with the same FIFO
//!   tie-breaking as repeated [`EventQueue::push`];
//! * [`EventQueue::pop_at_or_before`] fuses the peek-then-pop pattern of
//!   the simulator's main loop into one heap access.

use frap_core::time::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A deterministic min-queue of `(Time, E)` entries with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use frap_sim::events::EventQueue;
/// use frap_core::time::Time;
///
/// let mut q = EventQueue::new();
/// q.push(Time::from_secs(2), "later");
/// q.push(Time::from_secs(1), "first");
/// q.push(Time::from_secs(1), "second");
/// assert_eq!(q.pop(), Some((Time::from_secs(1), "first")));
/// assert_eq!(q.pop(), Some((Time::from_secs(1), "second")));
/// assert_eq!(q.pop(), Some((Time::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
}

/// Time and insertion order packed into one key: the high 64 bits are the
/// microsecond timestamp, the low 64 bits the per-queue sequence number.
/// Comparing keys therefore orders by `(time, seq)` in a single `u128`
/// compare.
#[derive(Debug, Clone)]
struct Entry<E> {
    key: u128,
    event: E,
}

#[inline]
fn pack(time: Time, seq: u64) -> u128 {
    ((time.as_micros() as u128) << 64) | seq as u128
}

#[inline]
fn unpack_time(key: u128) -> Time {
    Time::from_micros((key >> 64) as u64)
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// An empty queue pre-sized for `capacity` pending events.
    pub fn with_capacity(capacity: usize) -> EventQueue<E> {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            seq: 0,
        }
    }

    /// Reserves room for at least `additional` more events.
    pub fn reserve(&mut self, additional: usize) {
        self.heap.reserve(additional);
    }

    /// Schedules `event` at `time`.
    pub fn push(&mut self, time: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Entry {
            key: pack(time, seq),
            event,
        }));
    }

    /// Schedules a batch of events. Equivalent to pushing each `(time,
    /// event)` pair in iteration order (the FIFO tie-break follows the
    /// batch order), but bulk-loads via an `O(n)` heapify when the queue
    /// is empty.
    pub fn push_all<I>(&mut self, events: I)
    where
        I: IntoIterator<Item = (Time, E)>,
    {
        let iter = events.into_iter();
        if self.heap.is_empty() {
            let mut entries: Vec<Reverse<Entry<E>>> = Vec::with_capacity(iter.size_hint().0);
            for (time, event) in iter {
                let seq = self.seq;
                self.seq += 1;
                entries.push(Reverse(Entry {
                    key: pack(time, seq),
                    event,
                }));
            }
            // Preserve any pre-reserved capacity beyond the batch size.
            let mut heap = std::mem::take(&mut self.heap).into_vec();
            heap.append(&mut entries);
            self.heap = BinaryHeap::from(heap);
        } else {
            self.heap.reserve(iter.size_hint().0);
            for (time, event) in iter {
                self.push(time, event);
            }
        }
    }

    /// Removes and returns the earliest event, FIFO among ties.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap
            .pop()
            .map(|Reverse(e)| (unpack_time(e.key), e.event))
    }

    /// Removes and returns the earliest event only if its timestamp is at
    /// or before `bound` — the simulator main loop's peek-then-pop pattern
    /// fused into a single heap access.
    ///
    /// # Examples
    ///
    /// ```
    /// use frap_sim::events::EventQueue;
    /// use frap_core::time::Time;
    ///
    /// let mut q = EventQueue::new();
    /// q.push(Time::from_secs(5), "e");
    /// assert_eq!(q.pop_at_or_before(Time::from_secs(4)), None);
    /// assert_eq!(q.pop_at_or_before(Time::from_secs(5)), Some((Time::from_secs(5), "e")));
    /// ```
    pub fn pop_at_or_before(&mut self, bound: Time) -> Option<(Time, E)> {
        match self.heap.peek() {
            Some(Reverse(e)) if unpack_time(e.key) <= bound => self.pop(),
            _ => None,
        }
    }

    /// The timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|Reverse(e)| unpack_time(e.key))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pending-event capacity before the heap reallocates.
    pub fn capacity(&self) -> usize {
        self.heap.capacity()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Time::from_micros(30), 3);
        q.push(Time::from_micros(10), 1);
        q.push(Time::from_micros(20), 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn fifo_among_equal_times() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_micros(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(Time::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(Time::from_micros(10), "a");
        q.push(Time::from_micros(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        q.push(Time::from_micros(1), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "a");
    }

    #[test]
    fn with_capacity_presizes() {
        let q: EventQueue<u32> = EventQueue::with_capacity(64);
        assert!(q.capacity() >= 64);
        assert!(q.is_empty());
    }

    #[test]
    fn push_all_equals_repeated_push() {
        let batch: Vec<(Time, usize)> = (0..50)
            .map(|i| (Time::from_micros((i * 31) % 97), i as usize))
            .collect();
        let mut bulk = EventQueue::new();
        bulk.push_all(batch.clone());
        let mut single = EventQueue::new();
        for (t, e) in batch {
            single.push(t, e);
        }
        while let (Some(a), b) = (bulk.pop(), single.pop()) {
            assert_eq!(Some(a), b);
        }
        assert!(single.is_empty());
    }

    #[test]
    fn push_all_onto_nonempty_queue_keeps_fifo() {
        let mut q = EventQueue::new();
        q.push(Time::from_micros(5), 0);
        q.push_all(vec![(Time::from_micros(5), 1), (Time::from_micros(5), 2)]);
        q.push(Time::from_micros(5), 3);
        for i in 0..4 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn pop_at_or_before_respects_bound() {
        let mut q = EventQueue::new();
        q.push(Time::from_micros(10), "a");
        q.push(Time::from_micros(20), "b");
        assert_eq!(q.pop_at_or_before(Time::from_micros(9)), None);
        assert_eq!(q.pop_at_or_before(Time::from_micros(10)).unwrap().1, "a");
        assert_eq!(q.pop_at_or_before(Time::from_micros(15)), None);
        assert_eq!(q.pop_at_or_before(Time::MAX).unwrap().1, "b");
        assert_eq!(q.pop_at_or_before(Time::MAX), None);
    }

    #[test]
    fn key_packing_roundtrips_extremes() {
        let mut q = EventQueue::new();
        q.push(Time::MAX, "max");
        q.push(Time::ZERO, "zero");
        assert_eq!(q.pop(), Some((Time::ZERO, "zero")));
        assert_eq!(q.pop(), Some((Time::MAX, "max")));
    }
}
