//! The end-to-end pipeline/DAG simulation (the paper's evaluation substrate).
//!
//! [`Simulation`] wires together:
//!
//! * an [`Admission`] controller from `frap-core` (feasible-region test,
//!   contribution model, reservations, shedding);
//! * one [`Stage`] per independent resource, each a preemptive
//!   fixed-priority processor with PCP critical sections;
//! * DAG routing — a subtask is released to its stage when all its graph
//!   predecessors complete; the task departs when every subtask is done;
//! * the synthetic-utilization bookkeeping rules of Section 4: decrement
//!   at deadlines, mark departures per stage, reset on idle;
//! * an optional admission *wait queue* (Section 5's TSCE experiment lets
//!   track updates wait up to 200 ms for an idle reset to make room).
//!
//! Simulations are deterministic: identical inputs (arrival sequence,
//! configuration, seeds) produce identical metrics.

use crate::events::EventQueue;
use crate::metrics::{AdmitDecision, SimMetrics, TaskOutcome};
use crate::sched::{DeadlineMonotonic, PriorityPolicy};
use crate::stage::{Effect, SegmentSlice, Stage};
use crate::trace::{Trace, TraceEvent};
use frap_core::admission::{Admission, AdmitOutcome, ContributionModel, ExactContributions};
use frap_core::graph::{TaskGraph, TaskSpec};
use frap_core::region::{FeasibleRegion, RegionTest};
use frap_core::task::{Importance, Priority, Segment, StageId, TaskId};
use frap_core::time::{Time, TimeDelta};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

type BoxRegion = Box<dyn RegionTest + Send + Sync>;
type BoxModel = Box<dyn ContributionModel + Send + Sync>;
type BoxPolicy = Box<dyn PriorityPolicy + Send>;
/// Admission-time task rewriting (e.g. binding a logical stage to the
/// least-utilized replica); see [`SimBuilder::router`].
type BoxRouter = Box<dyn FnMut(&frap_core::synthetic::SyntheticState, TaskSpec) -> TaskSpec>;

/// What to do with an arrival the admission controller cannot take now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitPolicy {
    /// Reject immediately (the default; Figures 4–7).
    Reject,
    /// Queue the arrival for up to the given wait; retry whenever capacity
    /// is released (idle reset or deadline expiry). Section 5's TSCE
    /// experiment uses 200 ms.
    WaitUpTo(TimeDelta),
}

/// Whether an infeasible important arrival may evict less important
/// admitted work (Section 5's overload architecture).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Never shed admitted work.
    RejectArrival,
    /// Shed admitted tasks in reverse importance order to make room.
    ShedLessImportant,
}

#[derive(Debug, Clone, Copy)]
enum Event {
    SegmentDone { stage: usize, gen: u64 },
    DeadlineExpiry,
    WaitTimeout { seq: u64 },
    UtilizationSample,
}

/// Per-node run state: outstanding precedence count plus the node's
/// segment range in the task's shared arena.
#[derive(Debug)]
struct NodeRun {
    remaining_preds: u32,
    seg_start: u32,
    seg_len: u32,
}

#[derive(Debug)]
struct TaskRun {
    graph: TaskGraph,
    /// All the task's segments, concatenated in node order; jobs receive
    /// refcounted [`SegmentSlice`] views instead of cloned vectors.
    arena: Rc<[Segment]>,
    priority: Priority,
    arrival: Time,
    abs_deadline: Time,
    nodes: Vec<NodeRun>,
    nodes_done: u32,
    /// `(stage, outstanding subtasks)` — graphs touch a handful of stages,
    /// so a linear scan beats hashing.
    outstanding_per_stage: Vec<(u32, u32)>,
}

#[derive(Debug)]
struct Pending {
    seq: u64,
    spec: TaskSpec,
    expires: Time,
    /// Index into [`Simulation::pending_shapes`]: the interned admission
    /// contribution vector, computed once at enqueue.
    shape: u32,
    /// Index of this arrival's [`AdmitDecision::Queued`] entry in the
    /// decision log (`u32::MAX` when decision logging is off), so the
    /// entry can be upgraded in place when the wait resolves.
    log_idx: u32,
}

/// A point-in-time view of a [`Simulation`]'s state; see
/// [`Simulation::snapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// The simulation clock.
    pub clock: Time,
    /// Admitted tasks not yet complete.
    pub live_tasks: usize,
    /// Arrivals waiting in the admission queue.
    pub pending_admissions: usize,
    /// Jobs present (running, ready, or blocked) per stage.
    pub stage_jobs: Vec<usize>,
    /// The job executing at each stage, if any.
    pub stage_running: Vec<Option<(TaskId, u32)>>,
    /// Current synthetic utilization per stage.
    pub synthetic_utilizations: Vec<f64>,
}

/// Builder for [`Simulation`].
///
/// # Examples
///
/// ```
/// use frap_sim::pipeline::SimBuilder;
/// use frap_core::graph::TaskSpec;
/// use frap_core::time::{Time, TimeDelta};
///
/// let ms = TimeDelta::from_millis;
/// let mut sim = SimBuilder::new(2).build();
/// let arrivals = vec![
///     (Time::ZERO, TaskSpec::pipeline(ms(100), &[ms(5), ms(5)]).unwrap()),
///     (Time::from_millis(1), TaskSpec::pipeline(ms(100), &[ms(5), ms(5)]).unwrap()),
/// ];
/// let metrics = sim.run(arrivals.into_iter(), Time::from_secs(1));
/// assert_eq!(metrics.admitted, 2);
/// assert_eq!(metrics.completed, 2);
/// assert_eq!(metrics.missed, 0);
/// ```
pub struct SimBuilder {
    stages: usize,
    region: BoxRegion,
    model: BoxModel,
    policy: BoxPolicy,
    reservations: Option<Vec<f64>>,
    wait: WaitPolicy,
    overload: OverloadPolicy,
    reserved_importance: Option<Importance>,
    idle_resets: bool,
    record_outcomes: bool,
    record_decisions: bool,
    trace_capacity: Option<usize>,
    sample_period: Option<TimeDelta>,
    router: Option<BoxRouter>,
    servers: Vec<usize>,
}

impl std::fmt::Debug for SimBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimBuilder")
            .field("stages", &self.stages)
            .field("wait", &self.wait)
            .field("overload", &self.overload)
            .field("idle_resets", &self.idle_resets)
            .field("router", &self.router.is_some())
            .finish_non_exhaustive()
    }
}

impl SimBuilder {
    /// Defaults: deadline-monotonic scheduling, the DM feasible region for
    /// `stages` stages, exact contributions, no reservations, reject on
    /// infeasible arrival.
    pub fn new(stages: usize) -> SimBuilder {
        SimBuilder {
            stages,
            region: Box::new(FeasibleRegion::deadline_monotonic(stages)),
            model: Box::new(ExactContributions),
            policy: Box::new(DeadlineMonotonic),
            reservations: None,
            wait: WaitPolicy::Reject,
            overload: OverloadPolicy::RejectArrival,
            reserved_importance: None,
            idle_resets: true,
            record_outcomes: false,
            record_decisions: false,
            trace_capacity: None,
            sample_period: None,
            router: None,
            servers: vec![1; stages],
        }
    }

    /// Sets the admission region test.
    ///
    /// # Panics
    ///
    /// Panics if the region's stage count disagrees with the builder's.
    pub fn region<R: RegionTest + Send + Sync + 'static>(mut self, region: R) -> SimBuilder {
        assert_eq!(region.stages(), self.stages, "region stage count mismatch");
        self.region = Box::new(region);
        self
    }

    /// Sets the contribution model (exact, mean-based, split-deadline …).
    pub fn model<M: ContributionModel + Send + Sync + 'static>(mut self, model: M) -> SimBuilder {
        self.model = Box::new(model);
        self
    }

    /// Sets the priority-assignment policy.
    pub fn policy<P: PriorityPolicy + Send + 'static>(mut self, policy: P) -> SimBuilder {
        self.policy = Box::new(policy);
        self
    }

    /// Pre-loads per-stage synthetic-utilization reservations (Section 5).
    pub fn reservations(mut self, reservations: Vec<f64>) -> SimBuilder {
        self.reservations = Some(reservations);
        self
    }

    /// Sets the wait-queue policy for infeasible arrivals.
    pub fn wait(mut self, wait: WaitPolicy) -> SimBuilder {
        self.wait = wait;
        self
    }

    /// Sets the overload (shedding) policy.
    pub fn overload(mut self, overload: OverloadPolicy) -> SimBuilder {
        self.overload = overload;
        self
    }

    /// Tasks at or above this importance bypass the admission test: they
    /// are *pre-certified* and their capacity is covered by the configured
    /// reservations (Section 5's critical periodic/aperiodic tasks).
    pub fn reserved_importance(mut self, threshold: Importance) -> SimBuilder {
        self.reserved_importance = Some(threshold);
        self
    }

    /// Enables or disables the reset-on-idle rule (Section 4). Disabling
    /// it is the paper's implicit baseline — admission becomes markedly
    /// more pessimistic (the reset ablation quantifies by how much).
    pub fn idle_resets(mut self, enabled: bool) -> SimBuilder {
        self.idle_resets = enabled;
        self
    }

    /// Keeps a per-task [`TaskOutcome`] record (memory ∝ completed tasks).
    pub fn record_outcomes(mut self, record: bool) -> SimBuilder {
        self.record_outcomes = record;
        self
    }

    /// Logs one [`AdmitDecision`] per offered arrival (in arrival order)
    /// into [`SimMetrics::decision_log`], plus every shed task into
    /// [`SimMetrics::shed_log`] (memory ∝ offered tasks). Trace-driven
    /// scenario reports use this to attribute decisions to the tenants and
    /// importance classes of the arrival sequence they supplied.
    pub fn record_decisions(mut self, record: bool) -> SimBuilder {
        self.record_decisions = record;
        self
    }

    /// Records the last `capacity` scheduling events (admissions,
    /// dispatches, completions, idle resets, …) for inspection via
    /// [`Simulation::trace`].
    pub fn trace(mut self, capacity: usize) -> SimBuilder {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Backs stage `stage` with `servers` identical processors sharing
    /// one queue — an empirical extension beyond the paper's model (the
    /// analysis stays per-stage; a single-server region is conservative
    /// for a multi-server stage). Critical sections require one server.
    ///
    /// # Panics
    ///
    /// Panics if `stage` is out of range or `servers` is zero.
    pub fn stage_servers(mut self, stage: usize, servers: usize) -> SimBuilder {
        assert!(stage < self.stages, "stage out of range");
        assert!(servers >= 1);
        self.servers[stage] = servers;
        self
    }

    /// Installs an admission-time router: every arrival is passed through
    /// `route` together with the live synthetic-utilization state before
    /// the admission test. The canonical use is *partitioned multi-server
    /// stages*: rewrite a logical stage to the least-utilized physical
    /// replica (see [`frap_core::graph::TaskSpec::remap_stages`]); the
    /// feasible-region analysis then applies per replica unchanged.
    pub fn router(
        mut self,
        route: impl FnMut(&frap_core::synthetic::SyntheticState, TaskSpec) -> TaskSpec + 'static,
    ) -> SimBuilder {
        self.router = Some(Box::new(route));
        self
    }

    /// Samples the per-stage synthetic-utilization vector every `period`
    /// into [`SimMetrics::utilization_timeline`] (the simulated analogue
    /// of the paper's Figure 1 curve).
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn sample_utilization(mut self, period: TimeDelta) -> SimBuilder {
        assert!(!period.is_zero(), "sample period must be positive");
        self.sample_period = Some(period);
        self
    }

    /// Builds the simulation.
    pub fn build(self) -> Simulation {
        let admission = match &self.reservations {
            Some(res) => Admission::with_reservations(self.region, self.model, res),
            None => Admission::new(self.region, self.model),
        };
        Simulation {
            stages: (0..self.stages)
                .map(|i| Stage::with_servers(StageId::new(i), self.servers[i]))
                .collect(),
            admission,
            policy: self.policy,
            // Steady state carries one deadline-expiry event per live task
            // plus one segment-completion per busy server; pre-size so the
            // heap never reallocates under paper-scale loads.
            queue: EventQueue::with_capacity(1024.max(64 * self.stages)),
            tasks: HashMap::new(),
            pending: VecDeque::new(),
            pending_seq: 0,
            metrics: SimMetrics::new(self.stages),
            clock: Time::ZERO,
            wait: self.wait,
            overload: self.overload,
            reserved_importance: self.reserved_importance,
            idle_resets: self.idle_resets,
            record_outcomes: self.record_outcomes,
            record_decisions: self.record_decisions,
            trace: self.trace_capacity.map(Trace::new),
            sample_period: self.sample_period,
            sampling_started: false,
            router: self.router,
            effects: Vec::new(),
            cascade: VecDeque::new(),
            release_scratch: Vec::new(),
            pending_shapes: Vec::new(),
            contrib_scratch: Vec::new(),
            failed_shapes: Vec::new(),
        }
    }
}

/// A deterministic discrete-event simulation of an `N`-stage system with
/// feasible-region admission control.
///
/// Construct via [`SimBuilder`]; drive with [`Simulation::run`].
pub struct Simulation {
    stages: Vec<Stage>,
    admission: Admission<BoxRegion, BoxModel>,
    policy: BoxPolicy,
    queue: EventQueue<Event>,
    tasks: HashMap<TaskId, TaskRun>,
    pending: VecDeque<Pending>,
    pending_seq: u64,
    metrics: SimMetrics,
    clock: Time,
    wait: WaitPolicy,
    overload: OverloadPolicy,
    reserved_importance: Option<Importance>,
    idle_resets: bool,
    record_outcomes: bool,
    record_decisions: bool,
    trace: Option<Trace>,
    sample_period: Option<TimeDelta>,
    sampling_started: bool,
    router: Option<BoxRouter>,
    /// Reused stage-effect buffer: taken (`std::mem::take`) around each
    /// stage mutation and restored after, so the steady-state event path
    /// never allocates.
    effects: Vec<Effect>,
    /// Reused FIFO for cascading effects in [`Simulation::drain_effects`].
    cascade: VecDeque<(usize, Effect)>,
    /// Reused successor-release list in [`Simulation::subtask_completed`].
    release_scratch: Vec<u32>,
    /// Interned admission contribution vectors of waiting arrivals (one
    /// entry per distinct shape; cleared whenever the queue empties).
    pending_shapes: Vec<Vec<(StageId, f64)>>,
    /// Reused buffer for computing a spec's contributions at enqueue.
    contrib_scratch: Vec<(StageId, f64)>,
    /// Reused per-pass rejection memo in [`Simulation::retry_pending`],
    /// indexed by shape id.
    failed_shapes: Vec<bool>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("clock", &self.clock)
            .field("stages", &self.stages.len())
            .field("live_tasks", &self.tasks.len())
            .field("pending", &self.pending.len())
            .field("router", &self.router.is_some())
            .finish_non_exhaustive()
    }
}

impl Simulation {
    /// Runs the simulation over `arrivals` (which must be sorted by time)
    /// until simulated time `until`, returning the collected metrics.
    ///
    /// Arrivals after `until` are ignored; events after `until` are not
    /// processed (in-flight tasks are counted in
    /// [`SimMetrics::in_flight_at_end`]).
    ///
    /// # Panics
    ///
    /// Panics if an arrival's timestamp precedes the previous one, or if a
    /// task references a stage outside the configured range.
    pub fn run<I>(&mut self, arrivals: I, until: Time) -> &SimMetrics
    where
        I: Iterator<Item = (Time, TaskSpec)>,
    {
        if let (Some(period), false) = (self.sample_period, self.sampling_started) {
            self.sampling_started = true;
            self.take_utilization_sample();
            self.queue
                .push(self.clock + period, Event::UtilizationSample);
        }
        let mut arrivals = arrivals.peekable();
        let mut last_arrival = Time::ZERO;
        loop {
            // Events at time t fire before arrivals at t: deadline expiries
            // and completions free capacity the arrival may then use. The
            // next arrival's timestamp (clamped to the horizon) therefore
            // bounds how far the event queue may be drained, which lets the
            // peek-then-pop pair fuse into one heap access.
            let next_arrival = arrivals.peek().map(|&(t, _)| t);
            let bound = next_arrival.map_or(until, |ta| ta.min(until));
            if let Some((time, event)) = self.queue.pop_at_or_before(bound) {
                self.clock = time;
                self.metrics.events_processed += 1;
                self.handle_event(event);
                continue;
            }
            match next_arrival {
                Some(ta) if ta <= until => {
                    let (time, spec) = arrivals.next().expect("peeked arrival exists");
                    assert!(time >= last_arrival, "arrivals must be sorted by time");
                    last_arrival = time;
                    self.clock = time;
                    self.metrics.events_processed += 1;
                    self.handle_arrival(spec);
                }
                _ => break,
            }
        }

        self.clock = until;
        for stage in &mut self.stages {
            stage.finalize(until);
        }
        self.metrics.horizon = until.saturating_since(Time::ZERO);
        self.metrics.in_flight_at_end = self.tasks.len() as u64;
        for (i, stage) in self.stages.iter().enumerate() {
            self.metrics.stages[i] = stage.metrics.clone();
        }
        &self.metrics
    }

    /// Metrics collected so far (finalized by [`Simulation::run`]).
    pub fn metrics(&self) -> &SimMetrics {
        &self.metrics
    }

    /// The admission controller's view (synthetic utilizations, stats).
    pub fn admission(&self) -> &Admission<BoxRegion, BoxModel> {
        &self.admission
    }

    /// The recorded scheduling trace, if tracing was enabled via
    /// [`SimBuilder::trace`].
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// A point-in-time view of the simulation state (clock, live tasks,
    /// per-stage occupancy, synthetic utilizations). Useful between
    /// [`Simulation::run`] segments and in tests.
    pub fn snapshot(&mut self) -> Snapshot {
        let stage_jobs = self.stages.iter().map(|s| s.job_count()).collect();
        let stage_running = self.stages.iter().map(|s| s.running()).collect();
        Snapshot {
            clock: self.clock,
            live_tasks: self.tasks.len(),
            pending_admissions: self.pending.len(),
            stage_jobs,
            stage_running,
            synthetic_utilizations: self.admission.state_mut().utilizations().to_vec(),
        }
    }

    #[inline]
    fn record(&mut self, event: TraceEvent) {
        if let Some(trace) = &mut self.trace {
            trace.record(event);
        }
    }

    fn handle_arrival(&mut self, spec: TaskSpec) {
        self.metrics.offered += 1;
        let now = self.clock;
        let spec = match self.router.as_mut() {
            Some(route) => {
                // Routing reads fresh utilization state.
                self.admission.advance_to(now);
                route(self.admission.state(), spec)
            }
            None => spec,
        };
        if let Some(threshold) = self.reserved_importance {
            if spec.importance >= threshold {
                let id = self.admission.admit_reserved(now, &spec);
                self.metrics.admitted += 1;
                if self.record_decisions {
                    self.metrics
                        .decision_log
                        .push(AdmitDecision::Admitted { task: id });
                }
                self.record(TraceEvent::Admitted {
                    time: now,
                    task: id,
                });
                self.start_task(id, spec);
                return;
            }
        }
        let admitted = match self.overload {
            OverloadPolicy::RejectArrival => self.admission.try_admit(now, &spec),
            OverloadPolicy::ShedLessImportant => {
                // The executed-work oracle keeps the eviction sound: a
                // victim's already-executed time is interference it has
                // inflicted on queued tasks, so that share of its charge
                // must stay on the counters until its deadline or an idle
                // reset (Theorem 1's invariant). Only unexecuted work is
                // reclaimed for the arrival.
                let tasks = &self.tasks;
                let stages = &self.stages;
                let outcome = self
                    .admission
                    .try_admit_or_shed_with(now, &spec, |victim, out| {
                        let Some(run) = tasks.get(&victim) else {
                            return;
                        };
                        for (node, nr) in run.nodes.iter().enumerate() {
                            if nr.remaining_preds > 0 {
                                continue; // never released: nothing executed
                            }
                            let stage = run.graph.subtask(node).stage;
                            let executed = stages[stage.index()]
                                .executed(now, (victim, node as u32))
                                .unwrap_or_else(|| {
                                    // Completed subtask: its full demand ran.
                                    run.arena[nr.seg_start as usize..][..nr.seg_len as usize]
                                        .iter()
                                        .map(|seg| seg.duration)
                                        .sum()
                                });
                            if executed > TimeDelta::ZERO {
                                out.push((stage, executed));
                            }
                        }
                    });
                match outcome {
                    AdmitOutcome::Admitted(id) => Some(id),
                    AdmitOutcome::AdmittedAfterShedding { task, shed } => {
                        for victim in shed {
                            self.kill_task(victim);
                        }
                        Some(task)
                    }
                    AdmitOutcome::Rejected => None,
                }
            }
        };
        match admitted {
            Some(id) => {
                self.metrics.admitted += 1;
                if self.record_decisions {
                    self.metrics
                        .decision_log
                        .push(AdmitDecision::Admitted { task: id });
                }
                self.record(TraceEvent::Admitted {
                    time: now,
                    task: id,
                });
                self.start_task(id, spec);
            }
            None => match self.wait {
                WaitPolicy::Reject => {
                    self.metrics.rejected += 1;
                    if self.record_decisions {
                        self.metrics.decision_log.push(AdmitDecision::Rejected);
                    }
                    self.record(TraceEvent::Rejected { time: now });
                }
                WaitPolicy::WaitUpTo(wait) => {
                    let seq = self.pending_seq;
                    self.pending_seq += 1;
                    let expires = now + wait;
                    let shape = self.intern_shape(&spec);
                    let log_idx = if self.record_decisions {
                        self.metrics.decision_log.push(AdmitDecision::Queued);
                        (self.metrics.decision_log.len() - 1) as u32
                    } else {
                        u32::MAX
                    };
                    self.pending.push_back(Pending {
                        seq,
                        spec,
                        expires,
                        shape,
                        log_idx,
                    });
                    self.queue.push(expires, Event::WaitTimeout { seq });
                    self.record(TraceEvent::Queued { time: now });
                }
            },
        }
    }

    /// Upgrades a queued arrival's decision-log entry in place.
    #[inline]
    fn resolve_queued(&mut self, log_idx: u32, decision: AdmitDecision) {
        if log_idx != u32::MAX {
            self.metrics.decision_log[log_idx as usize] = decision;
        }
    }

    fn start_task(&mut self, id: TaskId, spec: TaskSpec) {
        let now = self.clock;
        let priority = self.policy.priority(now, &spec, id);
        let abs_deadline = now + spec.deadline;
        let graph = spec.graph;
        let mut outstanding: Vec<(u32, u32)> = Vec::new();
        let mut nodes = Vec::with_capacity(graph.len());
        let mut all_segments: Vec<Segment> = Vec::new();
        for (i, sub) in graph.subtasks().enumerate() {
            assert!(
                sub.stage.index() < self.stages.len(),
                "task references stage {} but the system has {}",
                sub.stage.index(),
                self.stages.len()
            );
            let stage = sub.stage.index() as u32;
            match outstanding.iter_mut().find(|&&mut (s, _)| s == stage) {
                Some((_, count)) => *count += 1,
                None => outstanding.push((stage, 1)),
            }
            let seg_start = all_segments.len() as u32;
            all_segments.extend_from_slice(&sub.segments);
            nodes.push(NodeRun {
                remaining_preds: graph.preds(i).len() as u32,
                seg_start,
                seg_len: all_segments.len() as u32 - seg_start,
            });
        }
        let sources = graph.sources();
        self.tasks.insert(
            id,
            TaskRun {
                graph,
                arena: all_segments.into(),
                priority,
                arrival: now,
                abs_deadline,
                nodes,
                nodes_done: 0,
                outstanding_per_stage: outstanding,
            },
        );
        self.queue.push(abs_deadline, Event::DeadlineExpiry);
        for node in sources {
            self.release_subtask(id, node as u32);
        }
    }

    /// A refcounted view of `node`'s segments plus its stage index.
    fn node_release(run: &TaskRun, node: u32) -> (Priority, SegmentSlice, usize) {
        let nr = &run.nodes[node as usize];
        let slice = SegmentSlice::new(
            Rc::clone(&run.arena),
            nr.seg_start as usize,
            nr.seg_len as usize,
        );
        (
            run.priority,
            slice,
            run.graph.subtask(node as usize).stage.index(),
        )
    }

    fn release_subtask(&mut self, task: TaskId, node: u32) {
        let now = self.clock;
        let (priority, segments, stage_idx) = {
            let run = self.tasks.get(&task).expect("live task");
            Self::node_release(run, node)
        };
        let mut effects = std::mem::take(&mut self.effects);
        effects.clear();
        self.stages[stage_idx].add_job(now, (task, node), priority, segments, &mut effects);
        self.effects = effects;
        self.drain_effects(stage_idx);
    }

    fn handle_event(&mut self, event: Event) {
        match event {
            Event::SegmentDone { stage, gen } => {
                let now = self.clock;
                let mut effects = std::mem::take(&mut self.effects);
                effects.clear();
                self.stages[stage].segment_done(now, gen, &mut effects);
                self.effects = effects;
                self.drain_effects(stage);
            }
            Event::DeadlineExpiry => {
                // Decrement synthetic utilization; waiting arrivals may now fit.
                self.admission.advance_to(self.clock);
                self.retry_pending();
            }
            Event::UtilizationSample => {
                self.take_utilization_sample();
                if let Some(period) = self.sample_period {
                    self.queue
                        .push(self.clock + period, Event::UtilizationSample);
                }
            }
            Event::WaitTimeout { seq } => {
                // `seq` values are strictly increasing along the queue
                // (FIFO order is preserved by retries), so the stale-token
                // miss case costs O(log n) instead of a full scan.
                if let Ok(pos) = self.pending.binary_search_by(|p| p.seq.cmp(&seq)) {
                    let entry = self.pending.remove(pos).expect("entry exists");
                    self.resolve_queued(entry.log_idx, AdmitDecision::TimedOut);
                    self.metrics.wait_timeouts += 1;
                    self.metrics.rejected += 1;
                    if self.pending.is_empty() {
                        self.pending_shapes.clear();
                    }
                }
            }
        }
    }

    /// Consumes the effect buffer produced by a stage mutation.
    fn drain_effects(&mut self, stage_idx: usize) {
        // Effects may cascade (a completion releases a successor on another
        // stage, which produces further effects); process in FIFO order so
        // a Completed departure is recorded before the Idle reset that the
        // same event produced. The FIFO itself is a reused buffer.
        let mut queue = std::mem::take(&mut self.cascade);
        debug_assert!(queue.is_empty());
        for e in self.effects.drain(..) {
            queue.push_back((stage_idx, e));
        }
        while let Some((stage, effect)) = queue.pop_front() {
            match effect {
                Effect::Start { key, gen, finish } => {
                    self.record(TraceEvent::Dispatched {
                        time: self.clock,
                        stage,
                        task: key.0,
                        node: key.1,
                    });
                    self.queue.push(finish, Event::SegmentDone { stage, gen });
                }
                Effect::Completed { key, .. } => {
                    self.record(TraceEvent::SubtaskDone {
                        time: self.clock,
                        stage,
                        task: key.0,
                        node: key.1,
                    });
                    self.subtask_completed(stage, key, &mut queue);
                }
                Effect::Idle => {
                    if self.idle_resets {
                        self.stages[stage].metrics.idle_resets += 1;
                        self.admission
                            .on_stage_idle(self.clock, StageId::new(stage));
                        self.record(TraceEvent::IdleReset {
                            time: self.clock,
                            stage,
                        });
                    }
                    self.retry_pending();
                }
            }
        }
        self.cascade = queue;
    }

    fn subtask_completed(
        &mut self,
        stage_idx: usize,
        key: (TaskId, u32),
        cascade: &mut VecDeque<(usize, Effect)>,
    ) {
        let (task, node) = key;
        let now = self.clock;

        let Some(run) = self.tasks.get_mut(&task) else {
            return;
        };
        // Per-stage departure bookkeeping for idle resets.
        let left = run
            .outstanding_per_stage
            .iter_mut()
            .find_map(|(s, c)| (*s as usize == stage_idx).then_some(c))
            .expect("stage had outstanding subtasks");
        *left -= 1;
        let departed_stage = *left == 0;
        run.nodes_done += 1;
        let graph = run.graph.clone();
        let all_done = run.nodes_done as usize == graph.len();

        if departed_stage {
            self.admission
                .on_stage_departure(StageId::new(stage_idx), task);
        }

        if all_done {
            let run = self.tasks.remove(&task).expect("task just observed");
            self.metrics.completed += 1;
            let response = now.saturating_since(run.arrival);
            self.metrics.response_sum += response;
            self.metrics.response_max = self.metrics.response_max.max(response);
            self.metrics.response_hist.record(response);
            let missed = now > run.abs_deadline;
            if missed {
                self.metrics.missed += 1;
            }
            self.record(TraceEvent::TaskDone {
                time: now,
                task,
                missed,
            });
            if self.record_outcomes {
                self.metrics.outcomes.push(TaskOutcome {
                    task,
                    arrival: run.arrival,
                    completion: now,
                    deadline: run.abs_deadline,
                });
            }
            return;
        }

        // Release successors whose predecessors are all complete.
        let mut to_release = std::mem::take(&mut self.release_scratch);
        to_release.clear();
        {
            let run = self.tasks.get_mut(&task).expect("live task");
            for &succ in graph.succs(node as usize) {
                run.nodes[succ].remaining_preds -= 1;
                if run.nodes[succ].remaining_preds == 0 {
                    to_release.push(succ as u32);
                }
            }
        }
        for &succ in &to_release {
            let (priority, segments, succ_stage) = {
                let run = self.tasks.get(&task).expect("live task");
                Self::node_release(run, succ)
            };
            let mut effects = std::mem::take(&mut self.effects);
            effects.clear();
            self.stages[succ_stage].add_job(now, (task, succ), priority, segments, &mut effects);
            for e in effects.drain(..) {
                cascade.push_back((succ_stage, e));
            }
            self.effects = effects;
        }
        self.release_scratch = to_release;
    }

    /// Kills an admitted task everywhere (used when shed at overload). The
    /// victim may already have finished executing — shedding then only
    /// releases its synthetic-utilization accounting, which the admission
    /// controller has already done.
    fn kill_task(&mut self, task: TaskId) {
        self.metrics.shed += 1;
        if self.record_decisions {
            self.metrics.shed_log.push(task);
        }
        self.record(TraceEvent::Shed {
            time: self.clock,
            task,
        });
        let Some(run) = self.tasks.remove(&task) else {
            return;
        };
        let now = self.clock;
        for node in 0..run.graph.len() {
            let stage_idx = run.graph.subtask(node).stage.index();
            let mut effects = std::mem::take(&mut self.effects);
            effects.clear();
            self.stages[stage_idx].kill(now, (task, node as u32), &mut effects);
            // A kill can start another job or idle the stage.
            self.effects = effects;
            self.drain_effects(stage_idx);
        }
    }

    fn take_utilization_sample(&mut self) {
        self.admission.advance_to(self.clock);
        let utils = self.admission.state_mut().utilizations().to_vec();
        self.metrics.utilization_timeline.push((self.clock, utils));
    }

    /// Interns `spec`'s admission contribution vector among the waiting
    /// arrivals' shapes and returns its dense id. Identical specs (the
    /// common case: a saturated queue of one task family) share an id, so
    /// the retry loop can memoize rejections in O(1) per entry.
    fn intern_shape(&mut self, spec: &TaskSpec) -> u32 {
        let mut contrib = std::mem::take(&mut self.contrib_scratch);
        self.admission.contributions_for(spec, &mut contrib);
        let shape = match self.pending_shapes.iter().position(|s| *s == contrib) {
            Some(i) => i as u32,
            None => {
                self.pending_shapes.push(contrib.clone());
                (self.pending_shapes.len() - 1) as u32
            }
        };
        self.contrib_scratch = contrib;
        shape
    }

    fn retry_pending(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        let now = self.clock;
        // A rejected admission test leaves the controller's counters
        // untouched, so at a fixed `now` an identical contribution vector
        // is rejected again: memoize rejections per shape and skip the
        // re-test. A successful admission does change the counters, so the
        // memo is invalidated there.
        let mut failed = std::mem::take(&mut self.failed_shapes);
        failed.clear();
        failed.resize(self.pending_shapes.len(), false);
        // In-place walk: the common saturated pass admits nobody and
        // removes nothing, so it must not shuffle the queue around.
        let mut i = 0;
        while i < self.pending.len() {
            if self.pending[i].expires <= now {
                // The timeout event will (or already did) account for it;
                // drop it here to avoid double admission.
                let entry = self.pending.remove(i).expect("entry exists");
                self.resolve_queued(entry.log_idx, AdmitDecision::TimedOut);
                self.metrics.wait_timeouts += 1;
                self.metrics.rejected += 1;
                continue;
            }
            let shape = self.pending[i].shape as usize;
            if failed[shape] {
                i += 1;
                continue;
            }
            let admitted = {
                let p = &self.pending[i];
                self.admission
                    .try_admit_with(now, &p.spec, &self.pending_shapes[shape])
            };
            match admitted {
                Some(id) => {
                    failed.iter_mut().for_each(|f| *f = false);
                    let p = self.pending.remove(i).expect("entry exists");
                    self.resolve_queued(p.log_idx, AdmitDecision::AdmittedFromQueue { task: id });
                    self.metrics.admitted += 1;
                    self.record(TraceEvent::Admitted {
                        time: now,
                        task: id,
                    });
                    self.start_task(id, p.spec);
                }
                None => {
                    failed[shape] = true;
                    i += 1;
                }
            }
        }
        self.failed_shapes = failed;
        if self.pending.is_empty() {
            self.pending_shapes.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frap_core::task::{Importance, SubtaskSpec};

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn at(v: u64) -> Time {
        Time::from_millis(v)
    }

    fn task(deadline_ms: u64, comps_ms: &[u64]) -> TaskSpec {
        let comps: Vec<TimeDelta> = comps_ms.iter().map(|&c| ms(c)).collect();
        TaskSpec::pipeline(ms(deadline_ms), &comps).unwrap()
    }

    #[test]
    fn single_task_flows_through_pipeline() {
        let mut sim = SimBuilder::new(3).record_outcomes(true).build();
        let arrivals = vec![(at(0), task(100, &[5, 10, 5]))];
        let m = sim.run(arrivals.into_iter(), Time::from_secs(1));
        assert_eq!(m.admitted, 1);
        assert_eq!(m.completed, 1);
        assert_eq!(m.missed, 0);
        assert_eq!(m.outcomes.len(), 1);
        // Uncontended: response = sum of computations.
        assert_eq!(m.outcomes[0].response(), ms(20));
        assert_eq!(m.stages[0].busy, ms(5));
        assert_eq!(m.stages[1].busy, ms(10));
        assert_eq!(m.stages[2].busy, ms(5));
    }

    #[test]
    fn admission_rejects_when_region_full() {
        let mut sim = SimBuilder::new(1).build();
        // Each task: C/D = 0.5 — one fits (0.5 < 0.586), two don't.
        let arrivals = vec![(at(0), task(100, &[50])), (at(1), task(100, &[50]))];
        let m = sim.run(arrivals.into_iter(), Time::from_secs(1));
        assert_eq!(m.admitted, 1);
        assert_eq!(m.rejected, 1);
        assert_eq!(m.missed, 0);
    }

    #[test]
    fn idle_reset_reopens_capacity() {
        let mut sim = SimBuilder::new(1).build();
        // Task 1 finishes at t=50; its deadline is t=100. The idle reset at
        // t=50 must let task 2 in even though 0.5+0.5 > bound.
        let arrivals = vec![(at(0), task(100, &[50])), (at(60), task(100, &[50]))];
        let m = sim.run(arrivals.into_iter(), Time::from_secs(1));
        assert_eq!(m.admitted, 2);
        assert_eq!(m.completed, 2);
        assert_eq!(m.missed, 0);
        assert!(m.stages[0].idle_resets >= 1);
    }

    #[test]
    fn wait_queue_admits_after_idle_reset() {
        let mut sim = SimBuilder::new(1)
            .wait(WaitPolicy::WaitUpTo(ms(30)))
            .build();
        // Second arrival at t=30 can't fit until the first departs at t=50.
        let arrivals = vec![(at(0), task(100, &[50])), (at(30), task(100, &[50]))];
        let m = sim.run(arrivals.into_iter(), Time::from_secs(1));
        assert_eq!(m.admitted, 2, "waited 20 ms then admitted on idle reset");
        assert_eq!(m.wait_timeouts, 0);
        assert_eq!(m.completed, 2);
        assert_eq!(m.missed, 0);
    }

    #[test]
    fn wait_queue_times_out() {
        let mut sim = SimBuilder::new(1)
            .wait(WaitPolicy::WaitUpTo(ms(10)))
            .build();
        let arrivals = vec![(at(0), task(100, &[50])), (at(30), task(100, &[50]))];
        let m = sim.run(arrivals.into_iter(), Time::from_secs(1));
        assert_eq!(m.admitted, 1);
        assert_eq!(m.wait_timeouts, 1);
        assert_eq!(m.rejected, 1);
    }

    #[test]
    fn dag_task_executes_branches_in_parallel() {
        let mut sim = SimBuilder::new(4).record_outcomes(true).build();
        let g = TaskGraph::fork_join(
            SubtaskSpec::new(StageId::new(0), ms(10)),
            vec![
                SubtaskSpec::new(StageId::new(1), ms(20)),
                SubtaskSpec::new(StageId::new(2), ms(30)),
            ],
            SubtaskSpec::new(StageId::new(3), ms(10)),
        )
        .unwrap();
        let spec = TaskSpec::new(ms(500), g);
        let m = sim.run(vec![(at(0), spec)].into_iter(), Time::from_secs(1));
        assert_eq!(m.completed, 1);
        // Branches overlap: 10 + max(20, 30) + 10 = 50, not 70.
        assert_eq!(m.outcomes[0].response(), ms(50));
    }

    #[test]
    fn deadline_monotonic_prefers_urgent_tasks() {
        let mut sim = SimBuilder::new(1).record_outcomes(true).build();
        // A lax task arrives first, then an urgent one preempts it.
        let arrivals = vec![(at(0), task(1000, &[50])), (at(10), task(100, &[20]))];
        let m = sim.run(arrivals.into_iter(), Time::from_secs(2));
        assert_eq!(m.completed, 2);
        let urgent = m.outcomes.iter().find(|o| o.arrival == at(10)).unwrap();
        assert_eq!(
            urgent.response(),
            ms(20),
            "urgent task preempts immediately"
        );
        let lax = m.outcomes.iter().find(|o| o.arrival == at(0)).unwrap();
        assert_eq!(lax.response(), ms(70), "lax task absorbs the preemption");
    }

    #[test]
    fn no_misses_under_exact_admission_small_burst() {
        // A burst of identical tasks: whoever is admitted must meet the
        // end-to-end deadline (the paper's guarantee).
        let mut sim = SimBuilder::new(2).build();
        let arrivals: Vec<(Time, TaskSpec)> = (0..200)
            .map(|i| (Time::from_micros(i * 137), task(40, &[3, 3])))
            .collect();
        let m = sim.run(arrivals.into_iter(), Time::from_secs(5));
        assert!(m.admitted > 0);
        assert_eq!(m.missed, 0);
        assert_eq!(m.in_flight_at_end, 0);
    }

    #[test]
    fn always_admit_overload_misses_deadlines() {
        use frap_core::admission::AlwaysAdmit;
        let mut sim = SimBuilder::new(1).region(AlwaysAdmit::new(1)).build();
        // 10 tasks of 50 ms each, deadline 100 ms, all at t≈0: gross overload.
        let arrivals: Vec<(Time, TaskSpec)> = (0..10).map(|i| (at(i), task(100, &[50]))).collect();
        let m = sim.run(arrivals.into_iter(), Time::from_secs(5));
        assert_eq!(m.admitted, 10);
        assert!(
            m.missed > 0,
            "without admission control deadlines are missed"
        );
    }

    #[test]
    fn shedding_overload_policy_evicts_low_importance() {
        let mut sim = SimBuilder::new(1)
            .overload(OverloadPolicy::ShedLessImportant)
            .build();
        let mut lax = task(100, &[40]);
        lax.importance = Importance::new(1);
        let mut critical = task(100, &[40]);
        critical.importance = Importance::CRITICAL;
        let arrivals = vec![(at(0), lax), (at(5), critical)];
        let m = sim.run(arrivals.into_iter(), Time::from_secs(1));
        assert_eq!(m.admitted, 2);
        assert_eq!(m.shed, 1, "the lax task was evicted mid-execution");
        assert_eq!(m.completed, 1);
        assert_eq!(m.missed, 0);
    }

    #[test]
    fn decision_log_matches_arrival_order() {
        let mut sim = SimBuilder::new(1).record_decisions(true).build();
        // One fits (C/D = 0.5 < 0.586), the second is rejected.
        let arrivals = vec![(at(0), task(100, &[50])), (at(1), task(100, &[50]))];
        let m = sim.run(arrivals.into_iter(), Time::from_secs(1));
        assert_eq!(m.decision_log.len(), 2);
        assert!(m.decision_log[0].is_admitted());
        assert_eq!(m.decision_log[1], AdmitDecision::Rejected);
        assert!(m.shed_log.is_empty());
    }

    #[test]
    fn decision_log_off_by_default() {
        let mut sim = SimBuilder::new(1).build();
        let arrivals = vec![(at(0), task(100, &[50]))];
        let m = sim.run(arrivals.into_iter(), Time::from_secs(1));
        assert!(m.decision_log.is_empty());
    }

    #[test]
    fn decision_log_records_queue_resolutions() {
        let mut sim = SimBuilder::new(1)
            .wait(WaitPolicy::WaitUpTo(ms(30)))
            .record_decisions(true)
            .build();
        // Arrival 2 waits and is admitted at the idle reset (t=50); arrival
        // 3 (C/D = 0.8, never feasible under the single-stage DM bound)
        // waits and times out.
        let arrivals = vec![
            (at(0), task(100, &[50])),
            (at(30), task(100, &[50])),
            (at(95), task(100, &[80])),
        ];
        let m = sim.run(arrivals.into_iter(), Time::from_secs(1));
        assert_eq!(m.decision_log.len(), 3);
        assert!(m.decision_log[0].is_admitted());
        assert!(matches!(
            m.decision_log[1],
            AdmitDecision::AdmittedFromQueue { .. }
        ));
        assert_eq!(m.decision_log[2], AdmitDecision::TimedOut);
        assert_eq!(m.admitted, 2);
        assert_eq!(m.wait_timeouts, 1);
    }

    #[test]
    fn shed_log_names_the_victim() {
        let mut sim = SimBuilder::new(1)
            .overload(OverloadPolicy::ShedLessImportant)
            .record_decisions(true)
            .build();
        let mut lax = task(100, &[40]);
        lax.importance = Importance::new(1);
        let mut critical = task(100, &[40]);
        critical.importance = Importance::CRITICAL;
        let arrivals = vec![(at(0), lax), (at(5), critical)];
        let m = sim.run(arrivals.into_iter(), Time::from_secs(1));
        assert_eq!(m.shed_log.len(), 1);
        let victim = m.decision_log[0].admitted_task().expect("lax admitted");
        assert_eq!(m.shed_log[0], victim);
    }

    #[test]
    fn deterministic_across_runs() {
        let build = || SimBuilder::new(2).record_outcomes(true).build();
        let arrivals: Vec<(Time, TaskSpec)> = (0..500)
            .map(|i| {
                (
                    Time::from_micros(i * 997),
                    task(30 + (i % 7) * 10, &[2 + i % 3, 3]),
                )
            })
            .collect();
        let mut s1 = build();
        let m1 = s1
            .run(arrivals.clone().into_iter(), Time::from_secs(3))
            .clone();
        let mut s2 = build();
        let m2 = s2.run(arrivals.into_iter(), Time::from_secs(3)).clone();
        assert_eq!(m1.admitted, m2.admitted);
        assert_eq!(m1.completed, m2.completed);
        assert_eq!(m1.outcomes, m2.outcomes);
        assert_eq!(m1.stages[0].busy, m2.stages[0].busy);
    }

    #[test]
    #[should_panic(expected = "sorted by time")]
    fn unsorted_arrivals_panic() {
        let mut sim = SimBuilder::new(1).build();
        let arrivals = vec![(at(10), task(100, &[1])), (at(5), task(100, &[1]))];
        sim.run(arrivals.into_iter(), Time::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_range_stage_panics() {
        let mut sim = SimBuilder::new(1).build();
        let spec = TaskSpec::new(
            ms(100),
            TaskGraph::chain(vec![SubtaskSpec::new(StageId::new(5), ms(1))]).unwrap(),
        );
        // Region has 1 stage; spec uses stage 5: the synthetic-utilization
        // indexing panics (documented on SyntheticState::add_task).
        sim.run(vec![(at(0), spec)].into_iter(), Time::from_secs(1));
    }

    #[test]
    fn horizon_cuts_in_flight_tasks() {
        let mut sim = SimBuilder::new(1).build();
        let arrivals = vec![(at(0), task(1000, &[500]))];
        let m = sim.run(arrivals.into_iter(), at(100));
        assert_eq!(m.completed, 0);
        assert_eq!(m.in_flight_at_end, 1);
        assert_eq!(m.stages[0].busy, ms(100), "busy span closed at horizon");
        assert_eq!(m.horizon, ms(100));
    }
}
