//! Simulation metrics: the quantities the paper's figures report.
//!
//! * **Real stage utilization** — the fraction of simulated time a stage's
//!   processor is busy (Figures 4–6 plot its average after admission
//!   control).
//! * **Miss ratio of admitted tasks** — deadline misses over completed
//!   admitted tasks (Figure 7, approximate admission control).
//! * Response times, admission counters, blocking observations and idle
//!   resets for the ablations.

use crate::hist::LatencyHistogram;
use frap_core::task::TaskId;
use frap_core::time::{Time, TimeDelta};

/// Per-stage accounting.
#[derive(Debug, Clone)]
pub struct StageMetrics {
    /// Number of servers backing this stage (1 in the paper's model).
    pub servers: u32,
    /// Total server-time spent executing subtasks (summed over servers).
    pub busy: TimeDelta,
    /// Subtasks that finished here.
    pub subtasks_completed: u64,
    /// Times the stage went idle (each triggers a synthetic-utilization
    /// reset in the admission controller).
    pub idle_resets: u64,
    /// Total time subtasks spent blocked on locks here.
    pub blocking_total: TimeDelta,
    /// Largest single blocking episode observed here.
    pub blocking_max: TimeDelta,
    /// Number of blocking episodes.
    pub blocking_events: u64,
    /// Largest number of distinct blocking episodes suffered by a single
    /// job (PCP keeps this at 1 for single-lock stages).
    pub max_block_episodes: u32,
    /// Total time subtasks spent at this stage (arrival at the stage to
    /// departure), for average stage-delay reporting.
    pub stage_delay_total: TimeDelta,
    /// Largest single stage delay observed (the simulated `L_j`).
    pub stage_delay_max: TimeDelta,
}

impl Default for StageMetrics {
    fn default() -> StageMetrics {
        StageMetrics {
            servers: 1,
            busy: TimeDelta::ZERO,
            subtasks_completed: 0,
            idle_resets: 0,
            blocking_total: TimeDelta::ZERO,
            blocking_max: TimeDelta::ZERO,
            blocking_events: 0,
            max_block_episodes: 0,
            stage_delay_total: TimeDelta::ZERO,
            stage_delay_max: TimeDelta::ZERO,
        }
    }
}

impl StageMetrics {
    /// Real utilization over a horizon: busy server-time divided by the
    /// total server-time available (`horizon × servers`).
    pub fn utilization(&self, horizon: TimeDelta) -> f64 {
        self.busy.ratio(horizon) / f64::from(self.servers.max(1))
    }
}

/// A completed task's record, kept when per-task output is requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskOutcome {
    /// The task.
    pub task: TaskId,
    /// Arrival time at the system.
    pub arrival: Time,
    /// Completion time (departure from the last stage).
    pub completion: Time,
    /// Absolute deadline.
    pub deadline: Time,
}

impl TaskOutcome {
    /// End-to-end response time.
    pub fn response(&self) -> TimeDelta {
        self.completion.saturating_since(self.arrival)
    }

    /// Whether the end-to-end deadline was missed.
    pub fn missed(&self) -> bool {
        self.completion > self.deadline
    }
}

/// How one offered arrival was resolved by admission control.
///
/// Recorded in arrival order (one entry per offered task) when decision
/// logging is enabled via
/// [`SimBuilder::record_decisions`](crate::pipeline::SimBuilder::record_decisions),
/// so callers that know the arrival sequence (e.g. a trace with per-task
/// tenant labels) can attribute every decision without the simulator
/// carrying workload metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitDecision {
    /// Admitted at arrival (including the reserved-importance bypass).
    Admitted {
        /// The id the admission controller assigned.
        task: TaskId,
    },
    /// Rejected outright.
    Rejected,
    /// Parked in the admission wait queue and still waiting when the
    /// simulation ended (otherwise upgraded in place to
    /// [`AdmitDecision::AdmittedFromQueue`] or [`AdmitDecision::TimedOut`]).
    Queued,
    /// Admitted later from the wait queue.
    AdmittedFromQueue {
        /// The id the admission controller assigned.
        task: TaskId,
    },
    /// The wait-queue stay ended in a timeout (counted as rejected).
    TimedOut,
}

impl AdmitDecision {
    /// The admitted task id, if this decision admitted one.
    pub fn admitted_task(&self) -> Option<TaskId> {
        match self {
            AdmitDecision::Admitted { task } | AdmitDecision::AdmittedFromQueue { task } => {
                Some(*task)
            }
            _ => None,
        }
    }

    /// Whether the arrival ended up admitted.
    pub fn is_admitted(&self) -> bool {
        self.admitted_task().is_some()
    }
}

/// Whole-simulation metrics.
#[derive(Debug, Clone, Default)]
pub struct SimMetrics {
    /// Simulated horizon (time of the last processed event).
    pub horizon: TimeDelta,
    /// Tasks offered to the admission controller.
    pub offered: u64,
    /// Tasks admitted (immediately or after waiting).
    pub admitted: u64,
    /// Tasks rejected outright.
    pub rejected: u64,
    /// Tasks whose admission wait timed out (TSCE-style wait queue).
    pub wait_timeouts: u64,
    /// Admitted tasks shed at overload.
    pub shed: u64,
    /// Admitted tasks that completed all subtasks.
    pub completed: u64,
    /// Completed tasks that finished after their end-to-end deadline.
    pub missed: u64,
    /// Admitted tasks still in flight when the simulation ended.
    pub in_flight_at_end: u64,
    /// Simulator loop iterations (timer events plus arrivals) processed —
    /// the denominator-free "work done" measure behind events/sec
    /// throughput reporting. Deterministic for a given input.
    pub events_processed: u64,
    /// Sum of end-to-end response times of completed tasks.
    pub response_sum: TimeDelta,
    /// Largest end-to-end response time.
    pub response_max: TimeDelta,
    /// Log-bucketed histogram of end-to-end response times.
    pub response_hist: LatencyHistogram,
    /// Per-stage metrics.
    pub stages: Vec<StageMetrics>,
    /// Individual task outcomes (populated only when record-keeping is
    /// enabled in the simulation builder).
    pub outcomes: Vec<TaskOutcome>,
    /// Periodic samples of the per-stage synthetic utilization vector
    /// (populated when sampling is enabled in the simulation builder) —
    /// the simulated analogue of the paper's Figure 1 curve.
    pub utilization_timeline: Vec<(Time, Vec<f64>)>,
    /// One [`AdmitDecision`] per offered arrival, in arrival order
    /// (populated only when decision logging is enabled in the builder).
    pub decision_log: Vec<AdmitDecision>,
    /// Tasks shed at overload, in shedding order (populated only when
    /// decision logging is enabled in the builder).
    pub shed_log: Vec<TaskId>,
}

impl SimMetrics {
    /// Creates metrics for an `n`-stage system.
    pub fn new(stages: usize) -> SimMetrics {
        SimMetrics {
            stages: vec![StageMetrics::default(); stages],
            ..SimMetrics::default()
        }
    }

    /// Real utilization of stage `j` over the simulated horizon.
    pub fn stage_utilization(&self, j: usize) -> f64 {
        self.stages[j].utilization(self.horizon)
    }

    /// Mean real utilization across all stages (Figures 4 and 5 plot this).
    pub fn mean_stage_utilization(&self) -> f64 {
        if self.stages.is_empty() {
            return 0.0;
        }
        let sum: f64 = (0..self.stages.len())
            .map(|j| self.stage_utilization(j))
            .sum();
        sum / self.stages.len() as f64
    }

    /// Miss ratio among completed admitted tasks (Figure 7 plots this).
    pub fn miss_ratio(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.missed as f64 / self.completed as f64
        }
    }

    /// Fraction of offered tasks that were admitted.
    pub fn acceptance_ratio(&self) -> f64 {
        if self.offered == 0 {
            1.0
        } else {
            self.admitted as f64 / self.offered as f64
        }
    }

    /// Mean end-to-end response time of completed tasks.
    pub fn mean_response(&self) -> TimeDelta {
        if self.completed == 0 {
            TimeDelta::ZERO
        } else {
            self.response_sum / self.completed
        }
    }

    /// End-to-end response-time quantile `q ∈ [0, 1]` over completed
    /// tasks (≤ 12.5 % high due to histogram bucketing).
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn response_percentile(&self, q: f64) -> TimeDelta {
        self.response_hist.percentile(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_utilization_is_busy_over_horizon() {
        let mut m = SimMetrics::new(2);
        m.horizon = TimeDelta::from_secs(10);
        m.stages[0].busy = TimeDelta::from_secs(8);
        m.stages[1].busy = TimeDelta::from_secs(4);
        assert!((m.stage_utilization(0) - 0.8).abs() < 1e-12);
        assert!((m.stage_utilization(1) - 0.4).abs() < 1e-12);
        assert!((m.mean_stage_utilization() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ratios_handle_zero_denominators() {
        let m = SimMetrics::new(1);
        assert_eq!(m.miss_ratio(), 0.0);
        assert_eq!(m.acceptance_ratio(), 1.0);
        assert_eq!(m.mean_response(), TimeDelta::ZERO);
        assert_eq!(m.mean_stage_utilization(), 0.0);
        let empty = SimMetrics::new(0);
        assert_eq!(empty.mean_stage_utilization(), 0.0);
    }

    #[test]
    fn miss_ratio_counts_completed_only() {
        let mut m = SimMetrics::new(1);
        m.completed = 10;
        m.missed = 1;
        assert!((m.miss_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn outcome_response_and_miss() {
        let o = TaskOutcome {
            task: TaskId::new(1),
            arrival: Time::from_millis(10),
            completion: Time::from_millis(35),
            deadline: Time::from_millis(30),
        };
        assert_eq!(o.response(), TimeDelta::from_millis(25));
        assert!(o.missed());
        let ok = TaskOutcome {
            completion: Time::from_millis(30),
            ..o
        };
        assert!(!ok.missed(), "finishing exactly at the deadline is a hit");
    }

    #[test]
    fn admit_decision_helpers() {
        let t = TaskId::new(7);
        assert_eq!(AdmitDecision::Admitted { task: t }.admitted_task(), Some(t));
        assert_eq!(
            AdmitDecision::AdmittedFromQueue { task: t }.admitted_task(),
            Some(t)
        );
        assert!(AdmitDecision::Admitted { task: t }.is_admitted());
        for d in [
            AdmitDecision::Rejected,
            AdmitDecision::Queued,
            AdmitDecision::TimedOut,
        ] {
            assert_eq!(d.admitted_task(), None);
            assert!(!d.is_admitted());
        }
    }

    #[test]
    fn mean_response_divides_by_completed() {
        let mut m = SimMetrics::new(1);
        m.completed = 4;
        m.response_sum = TimeDelta::from_millis(100);
        assert_eq!(m.mean_response(), TimeDelta::from_millis(25));
    }
}
