//! One pipeline stage: a preemptive fixed-priority processor with
//! PCP-protected critical sections.
//!
//! A stage executes *jobs* (subtask instances). At every instant the
//! highest effective-priority runnable job runs; effective priority is the
//! task's fixed base priority possibly raised by PCP inheritance. Jobs
//! execute their segments in order, acquiring each segment's lock (if any)
//! under the priority ceiling protocol; a denied acquisition blocks the job
//! until a release wakes it.
//!
//! The stage is a pure state machine: mutations return [`Effect`]s
//! (schedule a completion event, a subtask finished, the stage went idle)
//! that the [`crate::pipeline::Simulation`] turns into events, precedence
//! releases, and synthetic-utilization resets.

use crate::metrics::StageMetrics;
use crate::pcp::{Acquire, LockManager};
use frap_core::task::{LockId, Priority, Segment, StageId, TaskId};
use frap_core::time::{Time, TimeDelta};
use std::cmp::Reverse;
use std::collections::{BTreeSet, HashMap};

/// Identifies one job (a subtask instance) at a stage: `(task, node)`.
pub type JobKey = (TaskId, u32);

/// Ready-queue ordering: highest priority first, then lowest task id, then
/// lowest node index — a deterministic total order.
type ReadyKey = (Priority, Reverse<TaskId>, Reverse<u32>);

fn ready_key(priority: Priority, key: JobKey) -> ReadyKey {
    (priority, Reverse(key.0), Reverse(key.1))
}

fn job_of(k: &ReadyKey) -> JobKey {
    ((k.1).0, (k.2).0)
}

/// What the simulation must do after a stage mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// A job (re)started executing: schedule a `SegmentDone` at `finish`
    /// carrying `gen` (stale generations are ignored).
    Start {
        /// The running job.
        key: JobKey,
        /// Generation token for the completion event.
        gen: u64,
        /// Absolute finish time of the current segment remainder.
        finish: Time,
    },
    /// A job finished its last segment: the subtask is complete.
    Completed {
        /// The finished job.
        key: JobKey,
        /// Total time this job spent blocked on locks here (`B_nj`).
        blocked_for: TimeDelta,
        /// Time from the job's arrival at the stage to completion (`L_j`).
        stage_delay: TimeDelta,
    },
    /// The stage transitioned to idle (no jobs present).
    Idle,
}

#[derive(Debug, Clone)]
struct Job {
    base: Priority,
    segments: Vec<Segment>,
    seg_idx: usize,
    remaining: TimeDelta,
    acquired_current: bool,
    entered_at: Time,
    block_started: Option<Time>,
    blocked_total: TimeDelta,
    block_episodes: u32,
    ready_entry: Option<ReadyKey>,
}

impl Job {
    fn current_lock(&self) -> Option<LockId> {
        self.segments.get(self.seg_idx).and_then(|s| s.lock)
    }
}

#[derive(Debug, Clone, Copy)]
struct RunInfo {
    gen: u64,
    started: Time,
}

/// The execution state of one stage: one or more identical servers
/// draining a shared fixed-priority ready queue.
///
/// Multi-server stages (`servers > 1`) model a tier of identical
/// processors behind one queue — an empirical extension beyond the
/// paper's single-resource stages (the *sound* multi-server construction
/// is partitioning: one analyzed stage per replica, bound at admission;
/// see `frap_core::graph::TaskSpec::remap_stages`). Critical sections
/// require a single server (PCP is a uniprocessor protocol).
#[derive(Debug)]
pub struct Stage {
    id: StageId,
    servers: usize,
    jobs: HashMap<JobKey, Job>,
    ready: BTreeSet<ReadyKey>,
    running: HashMap<JobKey, RunInfo>,
    gen_index: HashMap<u64, JobKey>,
    next_gen: u64,
    locks: LockManager<JobKey>,
    /// Local accounting; harvested by the simulation at the end.
    pub metrics: StageMetrics,
}

impl Stage {
    /// A single-server stage (the paper's model).
    pub fn new(id: StageId) -> Stage {
        Stage::with_servers(id, 1)
    }

    /// A stage backed by `servers` identical processors sharing one
    /// fixed-priority queue.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn with_servers(id: StageId, servers: usize) -> Stage {
        assert!(servers >= 1, "a stage needs at least one server");
        let metrics = StageMetrics {
            servers: servers as u32,
            ..StageMetrics::default()
        };
        Stage {
            id,
            servers,
            jobs: HashMap::new(),
            ready: BTreeSet::new(),
            running: HashMap::new(),
            gen_index: HashMap::new(),
            next_gen: 0,
            locks: LockManager::new(),
            metrics,
        }
    }

    /// This stage's identifier.
    pub fn id(&self) -> StageId {
        self.id
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Whether no job is present (running, ready, or blocked).
    pub fn is_idle(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of jobs present at the stage.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// One currently executing job (the one with the lowest task id), if
    /// any — exact for single-server stages; see
    /// [`Stage::running_jobs`] for the full set.
    pub fn running(&self) -> Option<JobKey> {
        self.running.keys().min().copied()
    }

    /// All currently executing jobs, in deterministic (key) order.
    pub fn running_jobs(&self) -> Vec<JobKey> {
        let mut v: Vec<JobKey> = self.running.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// The running job with the least effective priority (the preemption
    /// victim), with its ordering key.
    fn min_running(&self) -> Option<(ReadyKey, JobKey)> {
        self.running
            .keys()
            .map(|&k| (ready_key(self.effective(k, self.jobs[&k].base), k), k))
            .min()
    }

    /// Starts `key` on a free server; the caller ensures capacity.
    fn start(&mut self, now: Time, key: JobKey, effects: &mut Vec<Effect>) {
        let gen = self.next_gen;
        self.next_gen += 1;
        self.gen_index.insert(gen, key);
        self.running.insert(key, RunInfo { gen, started: now });
        let finish = now + self.jobs[&key].remaining;
        effects.push(Effect::Start { key, gen, finish });
    }

    /// Stops `key` if running, banking its busy span; returns the elapsed
    /// span if it was running.
    fn stop(&mut self, now: Time, key: JobKey) -> Option<TimeDelta> {
        let info = self.running.remove(&key)?;
        self.gen_index.remove(&info.gen);
        let elapsed = now.saturating_since(info.started);
        self.metrics.busy += elapsed;
        Some(elapsed)
    }

    fn effective(&self, key: JobKey, base: Priority) -> Priority {
        match self.locks.inherited(&key) {
            Some(boost) => base.max(boost),
            None => base,
        }
    }

    fn make_ready(&mut self, key: JobKey) {
        let base = self.jobs[&key].base;
        let eff = self.effective(key, base);
        let rk = ready_key(eff, key);
        self.ready.insert(rk);
        self.jobs.get_mut(&key).expect("job exists").ready_entry = Some(rk);
    }

    fn unready(&mut self, key: JobKey) {
        if let Some(job) = self.jobs.get_mut(&key) {
            if let Some(rk) = job.ready_entry.take() {
                self.ready.remove(&rk);
            }
        }
    }

    /// Re-keys ready entries whose effective priority changed due to
    /// inheritance updates.
    fn refresh_ready_keys(&mut self) {
        let stale: Vec<(JobKey, ReadyKey, Priority)> = self
            .jobs
            .iter()
            .filter_map(|(&key, job)| {
                let rk = job.ready_entry?;
                let eff = match self.locks.inherited(&key) {
                    Some(boost) => job.base.max(boost),
                    None => job.base,
                };
                if rk.0 != eff {
                    Some((key, rk, eff))
                } else {
                    None
                }
            })
            .collect();
        for (key, old, eff) in stale {
            self.ready.remove(&old);
            let new = ready_key(eff, key);
            self.ready.insert(new);
            self.jobs.get_mut(&key).expect("job exists").ready_entry = Some(new);
        }
    }

    /// Admits a subtask instance to this stage's ready queue.
    ///
    /// # Panics
    ///
    /// Panics if `key` is already present or `segments` is empty.
    pub fn add_job(
        &mut self,
        now: Time,
        key: JobKey,
        base: Priority,
        segments: Vec<Segment>,
        effects: &mut Vec<Effect>,
    ) {
        assert!(!segments.is_empty(), "jobs need at least one segment");
        assert!(
            self.servers == 1 || segments.iter().all(|seg| seg.lock.is_none()),
            "critical sections require a single-server stage (PCP is a \
             uniprocessor protocol)"
        );
        let first_remaining = segments[0].duration;
        // Register this job as a future user of every lock it touches, so
        // PCP ceilings are in place before anyone can block on it.
        let lock_set: Vec<LockId> = {
            let mut v: Vec<LockId> = segments.iter().filter_map(|s| s.lock).collect();
            v.sort_unstable();
            v.dedup();
            v
        };
        for l in &lock_set {
            self.locks.register_user(*l, base, key);
        }
        let prev = self.jobs.insert(
            key,
            Job {
                base,
                segments,
                seg_idx: 0,
                remaining: first_remaining,
                acquired_current: false,
                entered_at: now,
                block_started: None,
                blocked_total: TimeDelta::ZERO,
                block_episodes: 0,
                ready_entry: None,
            },
        );
        assert!(prev.is_none(), "job {key:?} added twice");
        self.make_ready(key);
        self.reschedule(now, effects);
    }

    /// Handles a `SegmentDone` event. Stale generations (from preempted
    /// runs) are ignored.
    pub fn segment_done(&mut self, now: Time, gen: u64, effects: &mut Vec<Effect>) {
        let Some(&key) = self.gen_index.get(&gen) else {
            return; // stale
        };
        self.stop(now, key);

        // Release the segment's lock, waking any PCP-blocked jobs.
        let job = self.jobs.get_mut(&key).expect("running job exists");
        let finished_lock = job.acquired_current && job.current_lock().is_some();
        job.remaining = TimeDelta::ZERO;
        job.seg_idx += 1;
        job.acquired_current = false;
        let done = job.seg_idx >= job.segments.len();
        if !done {
            job.remaining = job.segments[job.seg_idx].duration;
        }
        if finished_lock {
            let woken = self.locks.release(&key);
            self.wake(now, &woken);
        }

        if done {
            let job = self.jobs.remove(&key).expect("job exists");
            for l in locks_used(&job.segments) {
                self.locks.deregister_user(l, job.base, key);
            }
            let stage_delay = now.saturating_since(job.entered_at);
            self.metrics.subtasks_completed += 1;
            self.metrics.blocking_total += job.blocked_total;
            self.metrics.blocking_max = self.metrics.blocking_max.max(job.blocked_total);
            self.metrics.max_block_episodes =
                self.metrics.max_block_episodes.max(job.block_episodes);
            self.metrics.stage_delay_total += stage_delay;
            self.metrics.stage_delay_max = self.metrics.stage_delay_max.max(stage_delay);
            effects.push(Effect::Completed {
                key,
                blocked_for: job.blocked_total,
                stage_delay,
            });
        } else {
            // More segments: contend for the processor again (and possibly
            // a new lock) under normal scheduling rules.
            self.make_ready(key);
        }
        self.reschedule(now, effects);
        if self.jobs.is_empty() {
            effects.push(Effect::Idle);
        }
    }

    /// Removes a job outright (task shed/killed). Releases its lock and
    /// wakes blocked jobs as needed.
    pub fn kill(&mut self, now: Time, key: JobKey, effects: &mut Vec<Effect>) {
        if !self.jobs.contains_key(&key) {
            return;
        }
        self.stop(now, key); // also invalidates the in-flight SegmentDone
        self.unready(key);
        let woken = self.locks.remove_job(&key);
        self.wake(now, &woken);
        let job = self.jobs.remove(&key).expect("job exists");
        for l in locks_used(&job.segments) {
            self.locks.deregister_user(l, job.base, key);
        }
        self.refresh_ready_keys();
        self.reschedule(now, effects);
        if self.jobs.is_empty() {
            effects.push(Effect::Idle);
        }
    }

    /// Closes the running busy spans at the end of the simulation.
    pub fn finalize(&mut self, until: Time) {
        for info in self.running.values_mut() {
            self.metrics.busy += until.saturating_since(info.started);
            info.started = until;
        }
    }

    fn wake(&mut self, now: Time, woken: &[JobKey]) {
        for &w in woken {
            let job = self.jobs.get_mut(&w).expect("woken job exists");
            if let Some(started) = job.block_started.take() {
                let blocked = now.saturating_since(started);
                job.blocked_total += blocked;
                job.block_episodes += 1;
                self.metrics.blocking_events += 1;
            }
            // The woken job already holds its lock (granted by PCP wake).
            job.acquired_current = true;
            self.make_ready(w);
        }
        self.refresh_ready_keys();
    }

    /// Ensures the `servers` highest effective-priority runnable jobs are
    /// executing.
    fn reschedule(&mut self, now: Time, effects: &mut Vec<Effect>) {
        while let Some(best_rk) = self.ready.iter().next_back().copied() {
            if self.running.len() >= self.servers {
                // All servers busy: preempt the least urgent runner only
                // for a strictly higher priority (ties never preempt).
                let (min_rk, victim) = self.min_running().expect("servers are busy");
                if best_rk.0 > min_rk.0 {
                    let elapsed = self.stop(now, victim).expect("victim was running");
                    let job = self.jobs.get_mut(&victim).expect("running job exists");
                    job.remaining = job.remaining.saturating_sub(elapsed);
                    self.make_ready(victim);
                    continue;
                }
                break;
            }

            // A server is free: start the best ready job.
            let key = job_of(&best_rk);
            self.ready.remove(&best_rk);
            self.jobs
                .get_mut(&key)
                .expect("ready job exists")
                .ready_entry = None;

            // Acquire the current segment's lock if needed.
            let (needs_lock, base, acquired) = {
                let j = &self.jobs[&key];
                (j.current_lock(), j.base, j.acquired_current)
            };
            if let (Some(lock), false) = (needs_lock, acquired) {
                match self.locks.try_acquire(key, base, lock) {
                    Acquire::Acquired => {
                        self.jobs
                            .get_mut(&key)
                            .expect("job exists")
                            .acquired_current = true;
                    }
                    Acquire::Blocked => {
                        self.jobs.get_mut(&key).expect("job exists").block_started = Some(now);
                        // Inheritance may have boosted a ready holder.
                        self.refresh_ready_keys();
                        continue;
                    }
                }
            }
            self.start(now, key, effects);
        }
    }
}

fn locks_used(segments: &[Segment]) -> Vec<LockId> {
    let mut v: Vec<LockId> = segments.iter().filter_map(|s| s.lock).collect();
    v.sort_unstable();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn at(v: u64) -> Time {
        Time::from_millis(v)
    }

    fn key(task: u64) -> JobKey {
        (TaskId::new(task), 0)
    }

    fn plain(c: TimeDelta) -> Vec<Segment> {
        vec![Segment::compute(c)]
    }

    fn start_of(effects: &[Effect]) -> (JobKey, u64, Time) {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Start { key, gen, finish } => Some((*key, *gen, *finish)),
                _ => None,
            })
            .next_back()
            .expect("a Start effect")
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        let (k, gen, finish) = start_of(&fx);
        assert_eq!(k, key(1));
        assert_eq!(finish, at(10));
        fx.clear();
        st.segment_done(at(10), gen, &mut fx);
        assert!(matches!(fx[0], Effect::Completed { key: k, .. } if k == key(1)));
        assert!(fx.contains(&Effect::Idle));
        assert!(st.is_idle());
        assert_eq!(st.metrics.busy, ms(10));
        assert_eq!(st.metrics.subtasks_completed, 1);
        assert_eq!(st.metrics.stage_delay_max, ms(10));
    }

    #[test]
    fn higher_priority_preempts() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        fx.clear();
        // At t=4 a more urgent job arrives and preempts.
        st.add_job(at(4), key(2), Priority::new(50), plain(ms(3)), &mut fx);
        let (k, gen2, finish) = start_of(&fx);
        assert_eq!(k, key(2));
        assert_eq!(finish, at(7));
        fx.clear();
        st.segment_done(at(7), gen2, &mut fx);
        // Job 1 resumes with 6 ms left.
        let (k, gen1b, finish) = start_of(&fx);
        assert_eq!(k, key(1));
        assert_eq!(finish, at(13));
        fx.clear();
        st.segment_done(at(13), gen1b, &mut fx);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Completed { key: k, .. } if *k == key(1))));
        // Busy the whole time: 13 ms.
        assert_eq!(st.metrics.busy, ms(13));
    }

    #[test]
    fn stale_generation_is_ignored() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        let (_, gen1, _) = start_of(&fx);
        fx.clear();
        st.add_job(at(4), key(2), Priority::new(50), plain(ms(3)), &mut fx);
        fx.clear();
        // The original completion event for job 1 is now stale.
        st.segment_done(at(10), gen1, &mut fx);
        assert!(fx.is_empty());
        assert_eq!(st.job_count(), 2);
    }

    #[test]
    fn equal_priority_does_not_preempt() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(2), Priority::new(100), plain(ms(10)), &mut fx);
        fx.clear();
        st.add_job(at(1), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        assert!(fx.is_empty(), "no Start effect: the running job continues");
        assert_eq!(st.running(), Some(key(2)));
    }

    #[test]
    fn tie_break_by_task_id_in_ready_queue() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(9), Priority::new(10), plain(ms(5)), &mut fx);
        let (_, gen, _) = start_of(&fx);
        fx.clear();
        st.add_job(at(0), key(3), Priority::new(100), plain(ms(5)), &mut fx);
        st.add_job(at(0), key(2), Priority::new(100), plain(ms(5)), &mut fx);
        fx.clear();
        st.segment_done(at(5), gen, &mut fx);
        let (k, _, _) = start_of(&fx);
        assert_eq!(k, key(2), "lower task id wins among equal priorities");
    }

    #[test]
    fn lock_blocking_and_inheritance() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        let lock = LockId::new(0);
        // Low-priority job takes the lock for its whole 10 ms.
        st.add_job(
            at(0),
            key(2),
            Priority::new(200),
            vec![Segment::critical(ms(10), lock)],
            &mut fx,
        );
        fx.clear();
        // High-priority job arrives at t=2 wanting the same lock.
        st.add_job(
            at(2),
            key(1),
            Priority::new(50),
            vec![Segment::critical(ms(4), lock)],
            &mut fx,
        );
        // Job 1 preempts, tries the lock, blocks; job 2 resumes (inherited)
        // with its remaining 8 ms.
        let (k, gen2, finish) = start_of(&fx);
        assert_eq!(k, key(2));
        assert_eq!(finish, at(10));
        fx.clear();
        st.segment_done(at(10), gen2, &mut fx);
        // Job 2 completes; job 1 wakes holding the lock and runs 4 ms.
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Completed { key: k, .. } if *k == key(2))));
        let (k, gen1, finish) = start_of(&fx);
        assert_eq!(k, key(1));
        assert_eq!(finish, at(14));
        fx.clear();
        st.segment_done(at(14), gen1, &mut fx);
        match fx
            .iter()
            .find(|e| matches!(e, Effect::Completed { key: k, .. } if *k == key(1)))
        {
            Some(Effect::Completed { blocked_for, .. }) => {
                assert_eq!(*blocked_for, ms(8), "blocked from t=2 to t=10");
            }
            _ => panic!("job 1 should complete"),
        }
        assert_eq!(st.metrics.blocking_events, 1);
        assert_eq!(st.metrics.blocking_max, ms(8));
    }

    #[test]
    fn multi_segment_job_releases_lock_between_segments() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        let lock = LockId::new(0);
        st.add_job(
            at(0),
            key(1),
            Priority::new(100),
            vec![
                Segment::compute(ms(2)),
                Segment::critical(ms(3), lock),
                Segment::compute(ms(1)),
            ],
            &mut fx,
        );
        let (_, g1, f1) = start_of(&fx);
        assert_eq!(f1, at(2));
        fx.clear();
        st.segment_done(at(2), g1, &mut fx);
        let (_, g2, f2) = start_of(&fx);
        assert_eq!(f2, at(5));
        fx.clear();
        st.segment_done(at(5), g2, &mut fx);
        let (_, g3, f3) = start_of(&fx);
        assert_eq!(f3, at(6));
        fx.clear();
        st.segment_done(at(6), g3, &mut fx);
        assert!(fx.iter().any(|e| matches!(e, Effect::Completed { .. })));
        assert_eq!(st.metrics.busy, ms(6));
    }

    #[test]
    fn kill_running_job_frees_stage() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        let (_, gen, _) = start_of(&fx);
        fx.clear();
        st.kill(at(4), key(1), &mut fx);
        assert!(fx.contains(&Effect::Idle));
        assert!(st.is_idle());
        assert_eq!(st.metrics.busy, ms(4));
        // The stale completion is ignored.
        st.segment_done(at(10), gen, &mut fx);
        assert!(st.is_idle());
    }

    #[test]
    fn kill_lock_holder_unblocks_waiter() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        let lock = LockId::new(0);
        st.add_job(
            at(0),
            key(2),
            Priority::new(200),
            vec![Segment::critical(ms(10), lock)],
            &mut fx,
        );
        st.add_job(
            at(1),
            key(1),
            Priority::new(50),
            vec![Segment::critical(ms(4), lock)],
            &mut fx,
        );
        fx.clear();
        st.kill(at(3), key(2), &mut fx);
        // Waiter acquires and starts.
        let (k, _, finish) = start_of(&fx);
        assert_eq!(k, key(1));
        assert_eq!(finish, at(7));
    }

    #[test]
    fn kill_ready_job() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(50), plain(ms(10)), &mut fx);
        st.add_job(at(0), key(2), Priority::new(100), plain(ms(10)), &mut fx);
        fx.clear();
        st.kill(at(1), key(2), &mut fx);
        assert_eq!(st.job_count(), 1);
        assert_eq!(st.running(), Some(key(1)));
        assert!(!fx.contains(&Effect::Idle));
    }

    #[test]
    fn finalize_closes_busy_span() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(100)), &mut fx);
        st.finalize(at(30));
        assert_eq!(st.metrics.busy, ms(30));
    }

    #[test]
    fn preempted_job_tracks_remaining_correctly() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        fx.clear();
        // Preempt twice.
        st.add_job(at(2), key(2), Priority::new(10), plain(ms(1)), &mut fx);
        let (_, g2, _) = start_of(&fx);
        fx.clear();
        st.segment_done(at(3), g2, &mut fx);
        let (_, g1b, f) = start_of(&fx);
        assert_eq!(
            f,
            at(11),
            "8 ms left after 2 ms executed and 1 ms preempted"
        );
        fx.clear();
        st.add_job(at(5), key(3), Priority::new(10), plain(ms(2)), &mut fx);
        let (_, g3, _) = start_of(&fx);
        fx.clear();
        st.segment_done(at(7), g3, &mut fx);
        let (_, g1c, f) = start_of(&fx);
        assert_eq!(f, at(13), "6 ms left");
        fx.clear();
        st.segment_done(at(11), g1b, &mut fx);
        assert!(fx.is_empty(), "stale");
        st.segment_done(at(13), g1c, &mut fx);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Completed { key: k, .. } if *k == key(1))));
        assert_eq!(st.metrics.busy, ms(13));
    }

    #[test]
    fn two_servers_run_concurrently() {
        let mut st = Stage::with_servers(StageId::new(0), 2);
        assert_eq!(st.servers(), 2);
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        st.add_job(at(0), key(2), Priority::new(100), plain(ms(10)), &mut fx);
        // Both start immediately.
        let starts: Vec<_> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Start { key, gen, finish } => Some((*key, *gen, *finish)),
                _ => None,
            })
            .collect();
        assert_eq!(starts.len(), 2);
        assert!(starts.iter().all(|&(_, _, f)| f == at(10)));
        assert_eq!(st.running_jobs(), vec![key(1), key(2)]);
        fx.clear();
        for (_, gen, _) in starts {
            st.segment_done(at(10), gen, &mut fx);
        }
        assert!(st.is_idle());
        // Two servers, each busy 10 ms → 20 ms of server-time.
        assert_eq!(st.metrics.busy, ms(20));
        assert!((st.metrics.utilization(ms(10)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_server_preempts_least_urgent_runner() {
        let mut st = Stage::with_servers(StageId::new(0), 2);
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(50), plain(ms(10)), &mut fx);
        st.add_job(at(0), key(2), Priority::new(200), plain(ms(10)), &mut fx);
        fx.clear();
        // A mid-priority job arrives: it preempts job 2 (the least urgent),
        // not job 1.
        st.add_job(at(4), key(3), Priority::new(100), plain(ms(2)), &mut fx);
        let started: Vec<_> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Start { key, .. } => Some(*key),
                _ => None,
            })
            .collect();
        assert_eq!(started, vec![key(3)]);
        let mut running = st.running_jobs();
        running.sort_unstable();
        assert_eq!(running, vec![key(1), key(3)]);
    }

    #[test]
    fn multi_server_third_equal_priority_job_waits() {
        let mut st = Stage::with_servers(StageId::new(0), 2);
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(5)), &mut fx);
        st.add_job(at(0), key(2), Priority::new(100), plain(ms(5)), &mut fx);
        fx.clear();
        st.add_job(at(1), key(3), Priority::new(100), plain(ms(5)), &mut fx);
        assert!(fx.is_empty(), "equal priority never preempts");
        assert_eq!(st.running_jobs().len(), 2);
        assert_eq!(st.job_count(), 3);
    }

    #[test]
    #[should_panic(expected = "single-server")]
    fn critical_sections_need_single_server() {
        let mut st = Stage::with_servers(StageId::new(0), 2);
        let mut fx = Vec::new();
        st.add_job(
            at(0),
            key(1),
            Priority::new(1),
            vec![Segment::critical(ms(1), LockId::new(0))],
            &mut fx,
        );
    }

    #[test]
    fn multi_server_finalize_closes_all_spans() {
        let mut st = Stage::with_servers(StageId::new(0), 3);
        let mut fx = Vec::new();
        for i in 0..3 {
            st.add_job(at(0), key(i), Priority::new(100), plain(ms(100)), &mut fx);
        }
        st.finalize(at(40));
        assert_eq!(st.metrics.busy, ms(120));
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_job_panics() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(1), plain(ms(1)), &mut fx);
        st.add_job(at(0), key(1), Priority::new(1), plain(ms(1)), &mut fx);
    }

    #[test]
    fn zero_length_segment_completes_immediately_on_run() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(
            at(0),
            key(1),
            Priority::new(1),
            plain(TimeDelta::ZERO),
            &mut fx,
        );
        let (_, gen, finish) = start_of(&fx);
        assert_eq!(finish, at(0));
        fx.clear();
        st.segment_done(at(0), gen, &mut fx);
        assert!(fx.iter().any(|e| matches!(e, Effect::Completed { .. })));
    }
}
