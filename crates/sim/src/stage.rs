//! One pipeline stage: a preemptive fixed-priority processor with
//! PCP-protected critical sections.
//!
//! A stage executes *jobs* (subtask instances). At every instant the
//! highest effective-priority runnable job runs; effective priority is the
//! task's fixed base priority possibly raised by PCP inheritance. Jobs
//! execute their segments in order, acquiring each segment's lock (if any)
//! under the priority ceiling protocol; a denied acquisition blocks the job
//! until a release wakes it.
//!
//! The stage is a pure state machine: mutations return [`Effect`]s
//! (schedule a completion event, a subtask finished, the stage went idle)
//! that the [`crate::pipeline::Simulation`] turns into events, precedence
//! releases, and synthetic-utilization resets.
//!
//! # Data layout
//!
//! This is the simulator's hottest state, so it is kept dense and
//! allocation-free on the steady-state event path (see DESIGN.md §11):
//!
//! * jobs live in a **slab** (`Vec<Slot>` plus a free list) addressed by a
//!   dense `u32` index; the only by-key map is consulted at admission and
//!   kill time, never per event;
//! * the ready queue is a **binary max-heap of packed keys** with lazy
//!   deletion: the bit-inverted `(priority, task, node)` fields compare as
//!   one integer pair, reproducing the previous ordered-set total order
//!   (highest priority, then lowest task id, then lowest node) exactly;
//! * completion events carry a **generation token that embeds the slot
//!   index** plus a per-slot start counter, so stale-event detection is two
//!   array reads instead of a hash lookup;
//! * the running set is a tiny vector (`servers` is 1–3);
//! * per-job segments are a [`SegmentSlice`] view into a shared per-task
//!   arena instead of an owned clone.

use crate::metrics::StageMetrics;
use crate::pcp::{Acquire, LockManager};
use frap_core::task::{LockId, Priority, Segment, StageId, TaskId};
use frap_core::time::{Time, TimeDelta};
use std::collections::{BinaryHeap, HashMap};
use std::rc::Rc;

/// Identifies one job (a subtask instance) at a stage: `(task, node)`.
pub type JobKey = (TaskId, u32);

/// A shared, cheaply clonable view of a job's segment list: a reference
/// into a per-task segment arena. Cloning bumps a refcount; no segment
/// data is copied.
///
/// `From<Vec<Segment>>` covers the common whole-list case (and keeps unit
/// tests free of arena plumbing).
#[derive(Debug, Clone)]
pub struct SegmentSlice {
    arena: Rc<[Segment]>,
    start: u32,
    len: u32,
}

impl SegmentSlice {
    /// A view of `arena[start..start + len]`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn new(arena: Rc<[Segment]>, start: usize, len: usize) -> SegmentSlice {
        assert!(start + len <= arena.len(), "segment slice out of bounds");
        SegmentSlice {
            arena,
            start: start as u32,
            len: len as u32,
        }
    }

    /// The viewed segments.
    #[inline]
    pub fn as_slice(&self) -> &[Segment] {
        &self.arena[self.start as usize..(self.start + self.len) as usize]
    }

    /// Number of segments in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl From<Vec<Segment>> for SegmentSlice {
    fn from(v: Vec<Segment>) -> SegmentSlice {
        let len = v.len();
        SegmentSlice::new(v.into(), 0, len)
    }
}

/// The ready queue's packed ordering key. The heap pops the lexicographic
/// maximum of `(hi, lo)`; with every field bit-inverted this is exactly
/// the old ordered-set order `(Priority, Reverse<TaskId>, Reverse<node>)`
/// popped from the back — highest priority first (smaller raw priority key
/// = more urgent = larger inverted value), then lowest task id, then
/// lowest node — for *all* value ranges, not just small ones.
///
/// `stamp` is the lazy-deletion token: an entry is live iff it equals the
/// slot's current `ready_stamp`. It participates in `Ord` only among
/// entries for the same job, where order is irrelevant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ReadyEntry {
    /// `!priority.key() << 64 | !task.seq()`.
    hi: u128,
    /// `!node << 32 | slot`.
    lo: u64,
    /// Copy of the slot's `ready_stamp` at push time.
    stamp: u64,
}

impl ReadyEntry {
    #[inline]
    fn slot(self) -> usize {
        (self.lo & u64::from(u32::MAX)) as usize
    }
}

#[inline]
fn pack_hi(priority: Priority, task: TaskId) -> u128 {
    (u128::from(!priority.key()) << 64) | u128::from(!task.seq())
}

#[inline]
fn pack_lo(node: u32, slot: u32) -> u64 {
    (u64::from(!node) << 32) | u64::from(slot)
}

/// What the simulation must do after a stage mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Effect {
    /// A job (re)started executing: schedule a `SegmentDone` at `finish`
    /// carrying `gen` (stale generations are ignored).
    Start {
        /// The running job.
        key: JobKey,
        /// Generation token for the completion event.
        gen: u64,
        /// Absolute finish time of the current segment remainder.
        finish: Time,
    },
    /// A job finished its last segment: the subtask is complete.
    Completed {
        /// The finished job.
        key: JobKey,
        /// Total time this job spent blocked on locks here (`B_nj`).
        blocked_for: TimeDelta,
        /// Time from the job's arrival at the stage to completion (`L_j`).
        stage_delay: TimeDelta,
    },
    /// The stage transitioned to idle (no jobs present).
    Idle,
}

/// One slab slot. `ready_stamp` and `run_count` are monotone across slot
/// reuse, so heap entries and generation tokens from a previous occupant
/// can never validate against a new one.
#[derive(Debug, Clone)]
struct Slot {
    key: JobKey,
    base: Priority,
    segments: SegmentSlice,
    seg_idx: u32,
    remaining: TimeDelta,
    acquired_current: bool,
    entered_at: Time,
    block_started: Option<Time>,
    blocked_total: TimeDelta,
    block_episodes: u32,
    occupied: bool,
    ready: bool,
    /// Effective priority of the live ready entry (re-key detection).
    ready_prio: Priority,
    /// Lazy-deletion token for ready entries; bumped on every transition.
    ready_stamp: u64,
    running: bool,
    /// Start counter; the low 32 bits are the generation token payload.
    run_count: u64,
    started: Time,
}

impl Slot {
    fn vacant(empty: &SegmentSlice) -> Slot {
        Slot {
            key: (TaskId::new(0), 0),
            base: Priority::LOWEST,
            segments: empty.clone(),
            seg_idx: 0,
            remaining: TimeDelta::ZERO,
            acquired_current: false,
            entered_at: Time::ZERO,
            block_started: None,
            blocked_total: TimeDelta::ZERO,
            block_episodes: 0,
            occupied: false,
            ready: false,
            ready_prio: Priority::LOWEST,
            ready_stamp: 0,
            running: false,
            run_count: 0,
            started: Time::ZERO,
        }
    }

    #[inline]
    fn current_lock(&self) -> Option<LockId> {
        self.segments
            .as_slice()
            .get(self.seg_idx as usize)
            .and_then(|s| s.lock)
    }
}

/// The execution state of one stage: one or more identical servers
/// draining a shared fixed-priority ready queue.
///
/// Multi-server stages (`servers > 1`) model a tier of identical
/// processors behind one queue — an empirical extension beyond the
/// paper's single-resource stages (the *sound* multi-server construction
/// is partitioning: one analyzed stage per replica, bound at admission;
/// see `frap_core::graph::TaskSpec::remap_stages`). Critical sections
/// require a single server (PCP is a uniprocessor protocol).
#[derive(Debug)]
pub struct Stage {
    id: StageId,
    servers: usize,
    slots: Vec<Slot>,
    free: Vec<u32>,
    /// By-key entry points (admission, kill, queries) only — never
    /// consulted on the per-event path.
    index: HashMap<JobKey, u32>,
    job_count: usize,
    ready: BinaryHeap<ReadyEntry>,
    running_slots: Vec<u32>,
    locks: LockManager<JobKey>,
    /// Scratch for lock registration/deregistration (reused, no per-job
    /// allocation).
    lock_scratch: Vec<LockId>,
    /// Cached empty slice so freeing a slot drops its arena reference
    /// without allocating.
    empty_segments: SegmentSlice,
    /// Local accounting; harvested by the simulation at the end.
    pub metrics: StageMetrics,
}

impl Stage {
    /// A single-server stage (the paper's model).
    pub fn new(id: StageId) -> Stage {
        Stage::with_servers(id, 1)
    }

    /// A stage backed by `servers` identical processors sharing one
    /// fixed-priority queue.
    ///
    /// # Panics
    ///
    /// Panics if `servers` is zero.
    pub fn with_servers(id: StageId, servers: usize) -> Stage {
        assert!(servers >= 1, "a stage needs at least one server");
        let metrics = StageMetrics {
            servers: servers as u32,
            ..StageMetrics::default()
        };
        Stage {
            id,
            servers,
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            job_count: 0,
            ready: BinaryHeap::new(),
            running_slots: Vec::with_capacity(servers),
            locks: LockManager::new(),
            lock_scratch: Vec::new(),
            empty_segments: Vec::new().into(),
            metrics,
        }
    }

    /// This stage's identifier.
    pub fn id(&self) -> StageId {
        self.id
    }

    /// Number of servers.
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// Whether no job is present (running, ready, or blocked).
    pub fn is_idle(&self) -> bool {
        self.job_count == 0
    }

    /// Number of jobs present at the stage.
    pub fn job_count(&self) -> usize {
        self.job_count
    }

    /// One currently executing job (the one with the lowest task id), if
    /// any — exact for single-server stages; see
    /// [`Stage::running_jobs`] for the full set.
    pub fn running(&self) -> Option<JobKey> {
        self.running_slots
            .iter()
            .map(|&r| self.slots[r as usize].key)
            .min()
    }

    /// All currently executing jobs, in deterministic (key) order.
    pub fn running_jobs(&self) -> Vec<JobKey> {
        let mut v: Vec<JobKey> = self
            .running_slots
            .iter()
            .map(|&r| self.slots[r as usize].key)
            .collect();
        v.sort_unstable();
        v
    }

    #[inline]
    fn effective_of(&self, slot: usize) -> Priority {
        let s = &self.slots[slot];
        match self.locks.inherited(&s.key) {
            Some(boost) => s.base.max(boost),
            None => s.base,
        }
    }

    /// The running job with the least effective priority (the preemption
    /// victim): its packed priority word and slot.
    fn min_running(&self) -> Option<(u128, usize)> {
        self.running_slots
            .iter()
            .map(|&r| {
                let slot = r as usize;
                let s = &self.slots[slot];
                let eff = self.effective_of(slot);
                ((pack_hi(eff, s.key.0), pack_lo(s.key.1, r)), slot)
            })
            .min()
            .map(|((hi, _), slot)| (hi, slot))
    }

    /// Starts the job in `slot` on a free server; the caller ensures
    /// capacity.
    fn start(&mut self, now: Time, slot: usize, effects: &mut Vec<Effect>) {
        let s = &mut self.slots[slot];
        s.run_count += 1;
        s.running = true;
        s.started = now;
        let gen = ((slot as u64) << 32) | (s.run_count & u64::from(u32::MAX));
        let finish = now + s.remaining;
        let key = s.key;
        self.running_slots.push(slot as u32);
        effects.push(Effect::Start { key, gen, finish });
    }

    /// Stops the job in `slot` if running, banking its busy span; returns
    /// the elapsed span if it was running.
    fn stop(&mut self, now: Time, slot: usize) -> Option<TimeDelta> {
        let s = &mut self.slots[slot];
        if !s.running {
            return None;
        }
        s.running = false;
        let elapsed = now.saturating_since(s.started);
        self.metrics.busy += elapsed;
        let pos = self
            .running_slots
            .iter()
            .position(|&r| r as usize == slot)
            .expect("running slot is listed");
        self.running_slots.swap_remove(pos);
        Some(elapsed)
    }

    fn make_ready(&mut self, slot: usize) {
        let eff = self.effective_of(slot);
        let s = &mut self.slots[slot];
        s.ready = true;
        s.ready_prio = eff;
        s.ready_stamp += 1;
        let entry = ReadyEntry {
            hi: pack_hi(eff, s.key.0),
            lo: pack_lo(s.key.1, slot as u32),
            stamp: s.ready_stamp,
        };
        self.ready.push(entry);
    }

    fn unready(&mut self, slot: usize) {
        let s = &mut self.slots[slot];
        if s.ready {
            s.ready = false;
            s.ready_stamp += 1;
        }
    }

    /// The highest-ordered live ready entry, discarding stale heap tops.
    fn peek_best(&mut self) -> Option<ReadyEntry> {
        while let Some(&top) = self.ready.peek() {
            let s = &self.slots[top.slot()];
            if s.occupied && s.ready && s.ready_stamp == top.stamp {
                return Some(top);
            }
            self.ready.pop();
        }
        None
    }

    /// Re-keys ready entries whose effective priority changed due to
    /// inheritance updates (the old entry goes stale; a fresh one is
    /// pushed).
    fn refresh_ready_keys(&mut self) {
        for slot in 0..self.slots.len() {
            if !(self.slots[slot].occupied && self.slots[slot].ready) {
                continue;
            }
            let eff = self.effective_of(slot);
            if eff != self.slots[slot].ready_prio {
                let s = &mut self.slots[slot];
                s.ready_prio = eff;
                s.ready_stamp += 1;
                let entry = ReadyEntry {
                    hi: pack_hi(eff, s.key.0),
                    lo: pack_lo(s.key.1, slot as u32),
                    stamp: s.ready_stamp,
                };
                self.ready.push(entry);
            }
        }
    }

    /// Registers (`register = true`) or removes this job's lock-user
    /// entries, deduplicating via the reused scratch buffer.
    fn update_lock_users(&mut self, slot: usize, register: bool) {
        let mut scratch = std::mem::take(&mut self.lock_scratch);
        scratch.clear();
        let (base, key) = {
            let s = &self.slots[slot];
            scratch.extend(s.segments.as_slice().iter().filter_map(|seg| seg.lock));
            (s.base, s.key)
        };
        scratch.sort_unstable();
        scratch.dedup();
        for &l in &scratch {
            if register {
                self.locks.register_user(l, base, key);
            } else {
                self.locks.deregister_user(l, base, key);
            }
        }
        self.lock_scratch = scratch;
    }

    /// Returns the job's slot to the free list. Stamps and counters stay
    /// monotone so stale heap entries and generation tokens from this
    /// occupant never validate against the next one.
    fn free_slot(&mut self, slot: usize) {
        let empty = self.empty_segments.clone();
        let s = &mut self.slots[slot];
        debug_assert!(s.occupied && !s.running);
        s.occupied = false;
        s.ready = false;
        s.ready_stamp += 1;
        s.segments = empty; // drop the arena reference
        let key = s.key;
        self.index.remove(&key);
        self.free.push(slot as u32);
        self.job_count -= 1;
    }

    /// Admits a subtask instance to this stage's ready queue.
    ///
    /// # Panics
    ///
    /// Panics if `key` is already present or `segments` is empty.
    pub fn add_job(
        &mut self,
        now: Time,
        key: JobKey,
        base: Priority,
        segments: impl Into<SegmentSlice>,
        effects: &mut Vec<Effect>,
    ) {
        let segments = segments.into();
        assert!(!segments.is_empty(), "jobs need at least one segment");
        assert!(
            self.servers == 1 || segments.as_slice().iter().all(|seg| seg.lock.is_none()),
            "critical sections require a single-server stage (PCP is a \
             uniprocessor protocol)"
        );
        let first_remaining = segments.as_slice()[0].duration;
        let slot = match self.free.pop() {
            Some(s) => s as usize,
            None => {
                let empty = self.empty_segments.clone();
                self.slots.push(Slot::vacant(&empty));
                self.slots.len() - 1
            }
        };
        {
            let s = &mut self.slots[slot];
            debug_assert!(!s.occupied, "free-listed slot is vacant");
            s.key = key;
            s.base = base;
            s.segments = segments;
            s.seg_idx = 0;
            s.remaining = first_remaining;
            s.acquired_current = false;
            s.entered_at = now;
            s.block_started = None;
            s.blocked_total = TimeDelta::ZERO;
            s.block_episodes = 0;
            s.occupied = true;
        }
        let prev = self.index.insert(key, slot as u32);
        assert!(prev.is_none(), "job {key:?} added twice");
        // Register this job as a future user of every lock it touches, so
        // PCP ceilings are in place before anyone can block on it.
        self.update_lock_users(slot, true);
        self.job_count += 1;
        self.make_ready(slot);
        self.reschedule(now, effects);
    }

    /// Handles a `SegmentDone` event. Stale generations (from preempted
    /// runs or freed slots) are ignored.
    pub fn segment_done(&mut self, now: Time, gen: u64, effects: &mut Vec<Effect>) {
        let slot = (gen >> 32) as usize;
        let count = gen & u64::from(u32::MAX);
        let live = self.slots.get(slot).is_some_and(|s| {
            s.occupied && s.running && (s.run_count & u64::from(u32::MAX)) == count
        });
        if !live {
            return; // stale
        }
        self.stop(now, slot);

        // Release the segment's lock, waking any PCP-blocked jobs.
        let s = &mut self.slots[slot];
        let finished_lock = s.acquired_current && s.current_lock().is_some();
        let key = s.key;
        s.remaining = TimeDelta::ZERO;
        s.seg_idx += 1;
        s.acquired_current = false;
        let done = s.seg_idx as usize >= s.segments.len();
        if !done {
            s.remaining = s.segments.as_slice()[s.seg_idx as usize].duration;
        }
        if finished_lock {
            let woken = self.locks.release(&key);
            self.wake(now, &woken);
        }

        if done {
            self.update_lock_users(slot, false);
            let (blocked_total, block_episodes, entered_at) = {
                let s = &self.slots[slot];
                (s.blocked_total, s.block_episodes, s.entered_at)
            };
            self.free_slot(slot);
            let stage_delay = now.saturating_since(entered_at);
            self.metrics.subtasks_completed += 1;
            self.metrics.blocking_total += blocked_total;
            self.metrics.blocking_max = self.metrics.blocking_max.max(blocked_total);
            self.metrics.max_block_episodes = self.metrics.max_block_episodes.max(block_episodes);
            self.metrics.stage_delay_total += stage_delay;
            self.metrics.stage_delay_max = self.metrics.stage_delay_max.max(stage_delay);
            effects.push(Effect::Completed {
                key,
                blocked_for: blocked_total,
                stage_delay,
            });
        } else {
            // More segments: contend for the processor again (and possibly
            // a new lock) under normal scheduling rules.
            self.make_ready(slot);
        }
        self.reschedule(now, effects);
        if self.job_count == 0 {
            self.ready.clear();
            effects.push(Effect::Idle);
        }
    }

    /// Execution time the job has received so far at `now`: completed
    /// segments in full plus the executed share of the current one (live
    /// for a running job). Blocked and queued time contributes nothing.
    /// `None` if the job is not at this stage (never released, or already
    /// completed).
    pub fn executed(&self, now: Time, key: JobKey) -> Option<TimeDelta> {
        let &slot = self.index.get(&key)?;
        let s = &self.slots[slot as usize];
        let segs = s.segments.as_slice();
        let mut done: TimeDelta = segs[..s.seg_idx as usize]
            .iter()
            .map(|seg| seg.duration)
            .sum();
        if let Some(cur) = segs.get(s.seg_idx as usize) {
            let mut remaining = s.remaining;
            if s.running {
                remaining = remaining.saturating_sub(now.saturating_since(s.started));
            }
            done += cur.duration.saturating_sub(remaining);
        }
        Some(done)
    }

    /// Removes a job outright (task shed/killed). Releases its lock and
    /// wakes blocked jobs as needed.
    pub fn kill(&mut self, now: Time, key: JobKey, effects: &mut Vec<Effect>) {
        let Some(&slot32) = self.index.get(&key) else {
            return;
        };
        let slot = slot32 as usize;
        self.stop(now, slot); // also invalidates the in-flight SegmentDone
        self.unready(slot);
        let woken = self.locks.remove_job(&key);
        self.wake(now, &woken);
        self.update_lock_users(slot, false);
        self.free_slot(slot);
        self.refresh_ready_keys();
        self.reschedule(now, effects);
        if self.job_count == 0 {
            self.ready.clear();
            effects.push(Effect::Idle);
        }
    }

    /// Closes the running busy spans at the end of the simulation.
    pub fn finalize(&mut self, until: Time) {
        for i in 0..self.running_slots.len() {
            let slot = self.running_slots[i] as usize;
            let s = &mut self.slots[slot];
            self.metrics.busy += until.saturating_since(s.started);
            s.started = until;
        }
    }

    fn wake(&mut self, now: Time, woken: &[JobKey]) {
        for w in woken {
            let slot = self.index[w] as usize;
            let s = &mut self.slots[slot];
            if let Some(started) = s.block_started.take() {
                let blocked = now.saturating_since(started);
                s.blocked_total += blocked;
                s.block_episodes += 1;
                self.metrics.blocking_events += 1;
            }
            // The woken job already holds its lock (granted by PCP wake).
            s.acquired_current = true;
            self.make_ready(slot);
        }
        self.refresh_ready_keys();
    }

    /// Ensures the `servers` highest effective-priority runnable jobs are
    /// executing.
    fn reschedule(&mut self, now: Time, effects: &mut Vec<Effect>) {
        while let Some(best) = self.peek_best() {
            if self.running_slots.len() >= self.servers {
                // All servers busy: preempt the least urgent runner only
                // for a strictly higher priority (ties never preempt).
                let (min_hi, victim) = self.min_running().expect("servers are busy");
                if best.hi >> 64 > min_hi >> 64 {
                    let elapsed = self.stop(now, victim).expect("victim was running");
                    let s = &mut self.slots[victim];
                    s.remaining = s.remaining.saturating_sub(elapsed);
                    self.make_ready(victim);
                    continue;
                }
                break;
            }

            // A server is free: start the best ready job.
            let slot = best.slot();
            self.ready.pop(); // `best` was the validated top
            {
                let s = &mut self.slots[slot];
                s.ready = false;
                s.ready_stamp += 1;
            }

            // Acquire the current segment's lock if needed.
            let (needs_lock, base, acquired, key) = {
                let s = &self.slots[slot];
                (s.current_lock(), s.base, s.acquired_current, s.key)
            };
            if let (Some(lock), false) = (needs_lock, acquired) {
                match self.locks.try_acquire(key, base, lock) {
                    Acquire::Acquired => {
                        self.slots[slot].acquired_current = true;
                    }
                    Acquire::Blocked => {
                        self.slots[slot].block_started = Some(now);
                        // Inheritance may have boosted a ready holder.
                        self.refresh_ready_keys();
                        continue;
                    }
                }
            }
            self.start(now, slot, effects);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> TimeDelta {
        TimeDelta::from_millis(v)
    }

    fn at(v: u64) -> Time {
        Time::from_millis(v)
    }

    fn key(task: u64) -> JobKey {
        (TaskId::new(task), 0)
    }

    fn plain(c: TimeDelta) -> Vec<Segment> {
        vec![Segment::compute(c)]
    }

    fn start_of(effects: &[Effect]) -> (JobKey, u64, Time) {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Start { key, gen, finish } => Some((*key, *gen, *finish)),
                _ => None,
            })
            .next_back()
            .expect("a Start effect")
    }

    #[test]
    fn single_job_runs_to_completion() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        let (k, gen, finish) = start_of(&fx);
        assert_eq!(k, key(1));
        assert_eq!(finish, at(10));
        fx.clear();
        st.segment_done(at(10), gen, &mut fx);
        assert!(matches!(fx[0], Effect::Completed { key: k, .. } if k == key(1)));
        assert!(fx.contains(&Effect::Idle));
        assert!(st.is_idle());
        assert_eq!(st.metrics.busy, ms(10));
        assert_eq!(st.metrics.subtasks_completed, 1);
        assert_eq!(st.metrics.stage_delay_max, ms(10));
    }

    #[test]
    fn higher_priority_preempts() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        fx.clear();
        // At t=4 a more urgent job arrives and preempts.
        st.add_job(at(4), key(2), Priority::new(50), plain(ms(3)), &mut fx);
        let (k, gen2, finish) = start_of(&fx);
        assert_eq!(k, key(2));
        assert_eq!(finish, at(7));
        fx.clear();
        st.segment_done(at(7), gen2, &mut fx);
        // Job 1 resumes with 6 ms left.
        let (k, gen1b, finish) = start_of(&fx);
        assert_eq!(k, key(1));
        assert_eq!(finish, at(13));
        fx.clear();
        st.segment_done(at(13), gen1b, &mut fx);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Completed { key: k, .. } if *k == key(1))));
        // Busy the whole time: 13 ms.
        assert_eq!(st.metrics.busy, ms(13));
    }

    #[test]
    fn stale_generation_is_ignored() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        let (_, gen1, _) = start_of(&fx);
        fx.clear();
        st.add_job(at(4), key(2), Priority::new(50), plain(ms(3)), &mut fx);
        fx.clear();
        // The original completion event for job 1 is now stale.
        st.segment_done(at(10), gen1, &mut fx);
        assert!(fx.is_empty());
        assert_eq!(st.job_count(), 2);
    }

    #[test]
    fn equal_priority_does_not_preempt() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(2), Priority::new(100), plain(ms(10)), &mut fx);
        fx.clear();
        st.add_job(at(1), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        assert!(fx.is_empty(), "no Start effect: the running job continues");
        assert_eq!(st.running(), Some(key(2)));
    }

    #[test]
    fn tie_break_by_task_id_in_ready_queue() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(9), Priority::new(10), plain(ms(5)), &mut fx);
        let (_, gen, _) = start_of(&fx);
        fx.clear();
        st.add_job(at(0), key(3), Priority::new(100), plain(ms(5)), &mut fx);
        st.add_job(at(0), key(2), Priority::new(100), plain(ms(5)), &mut fx);
        fx.clear();
        st.segment_done(at(5), gen, &mut fx);
        let (k, _, _) = start_of(&fx);
        assert_eq!(k, key(2), "lower task id wins among equal priorities");
    }

    #[test]
    fn tie_break_by_node_within_a_task() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(9), Priority::new(10), plain(ms(5)), &mut fx);
        let (_, gen, _) = start_of(&fx);
        fx.clear();
        st.add_job(
            at(0),
            (TaskId::new(3), 7),
            Priority::new(100),
            plain(ms(5)),
            &mut fx,
        );
        st.add_job(
            at(0),
            (TaskId::new(3), 2),
            Priority::new(100),
            plain(ms(5)),
            &mut fx,
        );
        fx.clear();
        st.segment_done(at(5), gen, &mut fx);
        let (k, _, _) = start_of(&fx);
        assert_eq!(
            k,
            (TaskId::new(3), 2),
            "lower node wins among equal priorities and task ids"
        );
    }

    #[test]
    fn lock_blocking_and_inheritance() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        let lock = LockId::new(0);
        // Low-priority job takes the lock for its whole 10 ms.
        st.add_job(
            at(0),
            key(2),
            Priority::new(200),
            vec![Segment::critical(ms(10), lock)],
            &mut fx,
        );
        fx.clear();
        // High-priority job arrives at t=2 wanting the same lock.
        st.add_job(
            at(2),
            key(1),
            Priority::new(50),
            vec![Segment::critical(ms(4), lock)],
            &mut fx,
        );
        // Job 1 preempts, tries the lock, blocks; job 2 resumes (inherited)
        // with its remaining 8 ms.
        let (k, gen2, finish) = start_of(&fx);
        assert_eq!(k, key(2));
        assert_eq!(finish, at(10));
        fx.clear();
        st.segment_done(at(10), gen2, &mut fx);
        // Job 2 completes; job 1 wakes holding the lock and runs 4 ms.
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Completed { key: k, .. } if *k == key(2))));
        let (k, gen1, finish) = start_of(&fx);
        assert_eq!(k, key(1));
        assert_eq!(finish, at(14));
        fx.clear();
        st.segment_done(at(14), gen1, &mut fx);
        match fx
            .iter()
            .find(|e| matches!(e, Effect::Completed { key: k, .. } if *k == key(1)))
        {
            Some(Effect::Completed { blocked_for, .. }) => {
                assert_eq!(*blocked_for, ms(8), "blocked from t=2 to t=10");
            }
            _ => panic!("job 1 should complete"),
        }
        assert_eq!(st.metrics.blocking_events, 1);
        assert_eq!(st.metrics.blocking_max, ms(8));
    }

    #[test]
    fn multi_segment_job_releases_lock_between_segments() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        let lock = LockId::new(0);
        st.add_job(
            at(0),
            key(1),
            Priority::new(100),
            vec![
                Segment::compute(ms(2)),
                Segment::critical(ms(3), lock),
                Segment::compute(ms(1)),
            ],
            &mut fx,
        );
        let (_, g1, f1) = start_of(&fx);
        assert_eq!(f1, at(2));
        fx.clear();
        st.segment_done(at(2), g1, &mut fx);
        let (_, g2, f2) = start_of(&fx);
        assert_eq!(f2, at(5));
        fx.clear();
        st.segment_done(at(5), g2, &mut fx);
        let (_, g3, f3) = start_of(&fx);
        assert_eq!(f3, at(6));
        fx.clear();
        st.segment_done(at(6), g3, &mut fx);
        assert!(fx.iter().any(|e| matches!(e, Effect::Completed { .. })));
        assert_eq!(st.metrics.busy, ms(6));
    }

    #[test]
    fn kill_running_job_frees_stage() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        let (_, gen, _) = start_of(&fx);
        fx.clear();
        st.kill(at(4), key(1), &mut fx);
        assert!(fx.contains(&Effect::Idle));
        assert!(st.is_idle());
        assert_eq!(st.metrics.busy, ms(4));
        // The stale completion is ignored.
        st.segment_done(at(10), gen, &mut fx);
        assert!(st.is_idle());
    }

    #[test]
    fn kill_lock_holder_unblocks_waiter() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        let lock = LockId::new(0);
        st.add_job(
            at(0),
            key(2),
            Priority::new(200),
            vec![Segment::critical(ms(10), lock)],
            &mut fx,
        );
        st.add_job(
            at(1),
            key(1),
            Priority::new(50),
            vec![Segment::critical(ms(4), lock)],
            &mut fx,
        );
        fx.clear();
        st.kill(at(3), key(2), &mut fx);
        // Waiter acquires and starts.
        let (k, _, finish) = start_of(&fx);
        assert_eq!(k, key(1));
        assert_eq!(finish, at(7));
    }

    #[test]
    fn kill_ready_job() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(50), plain(ms(10)), &mut fx);
        st.add_job(at(0), key(2), Priority::new(100), plain(ms(10)), &mut fx);
        fx.clear();
        st.kill(at(1), key(2), &mut fx);
        assert_eq!(st.job_count(), 1);
        assert_eq!(st.running(), Some(key(1)));
        assert!(!fx.contains(&Effect::Idle));
    }

    #[test]
    fn finalize_closes_busy_span() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(100)), &mut fx);
        st.finalize(at(30));
        assert_eq!(st.metrics.busy, ms(30));
    }

    #[test]
    fn preempted_job_tracks_remaining_correctly() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        fx.clear();
        // Preempt twice.
        st.add_job(at(2), key(2), Priority::new(10), plain(ms(1)), &mut fx);
        let (_, g2, _) = start_of(&fx);
        fx.clear();
        st.segment_done(at(3), g2, &mut fx);
        let (_, g1b, f) = start_of(&fx);
        assert_eq!(
            f,
            at(11),
            "8 ms left after 2 ms executed and 1 ms preempted"
        );
        fx.clear();
        st.add_job(at(5), key(3), Priority::new(10), plain(ms(2)), &mut fx);
        let (_, g3, _) = start_of(&fx);
        fx.clear();
        st.segment_done(at(7), g3, &mut fx);
        let (_, g1c, f) = start_of(&fx);
        assert_eq!(f, at(13), "6 ms left");
        fx.clear();
        st.segment_done(at(11), g1b, &mut fx);
        assert!(fx.is_empty(), "stale");
        st.segment_done(at(13), g1c, &mut fx);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Completed { key: k, .. } if *k == key(1))));
        assert_eq!(st.metrics.busy, ms(13));
    }

    #[test]
    fn two_servers_run_concurrently() {
        let mut st = Stage::with_servers(StageId::new(0), 2);
        assert_eq!(st.servers(), 2);
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        st.add_job(at(0), key(2), Priority::new(100), plain(ms(10)), &mut fx);
        // Both start immediately.
        let starts: Vec<_> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Start { key, gen, finish } => Some((*key, *gen, *finish)),
                _ => None,
            })
            .collect();
        assert_eq!(starts.len(), 2);
        assert!(starts.iter().all(|&(_, _, f)| f == at(10)));
        assert_eq!(st.running_jobs(), vec![key(1), key(2)]);
        fx.clear();
        for (_, gen, _) in starts {
            st.segment_done(at(10), gen, &mut fx);
        }
        assert!(st.is_idle());
        // Two servers, each busy 10 ms → 20 ms of server-time.
        assert_eq!(st.metrics.busy, ms(20));
        assert!((st.metrics.utilization(ms(10)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multi_server_preempts_least_urgent_runner() {
        let mut st = Stage::with_servers(StageId::new(0), 2);
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(50), plain(ms(10)), &mut fx);
        st.add_job(at(0), key(2), Priority::new(200), plain(ms(10)), &mut fx);
        fx.clear();
        // A mid-priority job arrives: it preempts job 2 (the least urgent),
        // not job 1.
        st.add_job(at(4), key(3), Priority::new(100), plain(ms(2)), &mut fx);
        let started: Vec<_> = fx
            .iter()
            .filter_map(|e| match e {
                Effect::Start { key, .. } => Some(*key),
                _ => None,
            })
            .collect();
        assert_eq!(started, vec![key(3)]);
        let mut running = st.running_jobs();
        running.sort_unstable();
        assert_eq!(running, vec![key(1), key(3)]);
    }

    #[test]
    fn multi_server_third_equal_priority_job_waits() {
        let mut st = Stage::with_servers(StageId::new(0), 2);
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(5)), &mut fx);
        st.add_job(at(0), key(2), Priority::new(100), plain(ms(5)), &mut fx);
        fx.clear();
        st.add_job(at(1), key(3), Priority::new(100), plain(ms(5)), &mut fx);
        assert!(fx.is_empty(), "equal priority never preempts");
        assert_eq!(st.running_jobs().len(), 2);
        assert_eq!(st.job_count(), 3);
    }

    #[test]
    #[should_panic(expected = "single-server")]
    fn critical_sections_need_single_server() {
        let mut st = Stage::with_servers(StageId::new(0), 2);
        let mut fx = Vec::new();
        st.add_job(
            at(0),
            key(1),
            Priority::new(1),
            vec![Segment::critical(ms(1), LockId::new(0))],
            &mut fx,
        );
    }

    #[test]
    fn multi_server_finalize_closes_all_spans() {
        let mut st = Stage::with_servers(StageId::new(0), 3);
        let mut fx = Vec::new();
        for i in 0..3 {
            st.add_job(at(0), key(i), Priority::new(100), plain(ms(100)), &mut fx);
        }
        st.finalize(at(40));
        assert_eq!(st.metrics.busy, ms(120));
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn duplicate_job_panics() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(1), plain(ms(1)), &mut fx);
        st.add_job(at(0), key(1), Priority::new(1), plain(ms(1)), &mut fx);
    }

    #[test]
    fn zero_length_segment_completes_immediately_on_run() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(
            at(0),
            key(1),
            Priority::new(1),
            plain(TimeDelta::ZERO),
            &mut fx,
        );
        let (_, gen, finish) = start_of(&fx);
        assert_eq!(finish, at(0));
        fx.clear();
        st.segment_done(at(0), gen, &mut fx);
        assert!(fx.iter().any(|e| matches!(e, Effect::Completed { .. })));
    }

    #[test]
    fn slot_reuse_invalidates_prior_generations() {
        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        // Job 1 occupies slot 0; kill it while its SegmentDone is in flight.
        st.add_job(at(0), key(1), Priority::new(100), plain(ms(10)), &mut fx);
        let (_, gen1, _) = start_of(&fx);
        fx.clear();
        st.kill(at(2), key(1), &mut fx);
        // Job 2 reuses slot 0.
        fx.clear();
        st.add_job(at(3), key(2), Priority::new(100), plain(ms(5)), &mut fx);
        let (_, gen2, _) = start_of(&fx);
        assert_ne!(gen1, gen2, "slot reuse must mint a fresh generation");
        // The dead job's completion must not touch the new occupant.
        fx.clear();
        st.segment_done(at(10), gen1, &mut fx);
        assert!(fx.is_empty(), "stale generation from the prior occupant");
        assert_eq!(st.job_count(), 1);
        st.segment_done(at(8), gen2, &mut fx);
        assert!(fx
            .iter()
            .any(|e| matches!(e, Effect::Completed { key: k, .. } if *k == key(2))));
    }

    #[test]
    fn segment_slice_shares_one_arena() {
        let arena: Rc<[Segment]> = vec![
            Segment::compute(ms(1)),
            Segment::compute(ms(2)),
            Segment::compute(ms(3)),
        ]
        .into();
        let head = SegmentSlice::new(Rc::clone(&arena), 0, 1);
        let tail = SegmentSlice::new(Rc::clone(&arena), 1, 2);
        assert_eq!(head.len(), 1);
        assert_eq!(tail.as_slice()[1].duration, ms(3));
        // Three live references: both views plus the local handle.
        assert_eq!(Rc::strong_count(&arena), 3);

        let mut st = Stage::new(StageId::new(0));
        let mut fx = Vec::new();
        st.add_job(at(0), key(1), Priority::new(100), tail, &mut fx);
        let (_, gen, finish) = start_of(&fx);
        assert_eq!(finish, at(2), "first segment of the view is 2 ms");
        fx.clear();
        st.segment_done(at(2), gen, &mut fx);
        let (_, gen, finish) = start_of(&fx);
        assert_eq!(finish, at(5));
        fx.clear();
        st.segment_done(at(5), gen, &mut fx);
        assert!(fx.iter().any(|e| matches!(e, Effect::Completed { .. })));
        // The stage dropped its reference when the job completed.
        assert_eq!(Rc::strong_count(&arena), 2);
        drop(head);
        assert_eq!(Rc::strong_count(&arena), 1);
    }
}
