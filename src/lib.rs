//! # frap
//!
//! **F**easible-**R**egion **A**dmission control for resource **P**ipelines
//! — a complete Rust implementation of
//!
//! > T. Abdelzaher, G. Thaker, P. Lardieri, *"A Feasible Region for Meeting
//! > Aperiodic End-to-End Deadlines in Resource Pipelines"*, ICDCS 2004.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] ([`frap_core`]) — the analysis: synthetic utilization, the
//!   stage delay theorem, feasible regions for pipelines and DAGs,
//!   urgency inversion, blocking terms, and the `O(N)` admission
//!   controllers (exact, approximate, reservations, shedding, baselines);
//! * [`sim`] ([`frap_sim`]) — a deterministic discrete-event simulator:
//!   preemptive fixed-priority stages, the priority ceiling protocol,
//!   DAG routing, wait queues, metrics;
//! * [`workload`] ([`frap_workload`]) — seeded workload generation and the
//!   Navy Total Ship Computing Environment scenario of the paper's
//!   Section 5;
//! * [`service`] ([`frap_service`]) — a concurrent, sharded wall-clock
//!   admission-control service over the region test: RAII tickets,
//!   timer-wheel deadline decrements, shedding, and service metrics.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `frap-experiments` for the harness that regenerates every figure and
//! table of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use frap::core::admission::{Admission, ExactContributions};
//! use frap::core::graph::TaskSpec;
//! use frap::core::region::FeasibleRegion;
//! use frap::core::time::{Time, TimeDelta};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ms = TimeDelta::from_millis;
//! let region = FeasibleRegion::deadline_monotonic(3);
//! let mut ac = Admission::new(region, ExactContributions);
//! let request = TaskSpec::pipeline(ms(500), &[ms(5), ms(10), ms(5)])?;
//! assert!(ac.try_admit(Time::ZERO, &request).is_some());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use frap_core as core;
pub use frap_service as service;
pub use frap_sim as sim;
pub use frap_workload as workload;
