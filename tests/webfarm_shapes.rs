//! Heterogeneous task shapes end to end: the web-farm scenario mixes
//! three graph shapes, the admission controller enforces the shape
//! catalog's intersection region (one Theorem 2 region per shape), and
//! every admitted request still meets its deadline.

use frap::core::region::FeasibleRegion;
use frap::core::time::Time;
use frap::sim::pipeline::SimBuilder;
use frap::workload::webfarm::{WebFarmConfig, STAGES};

#[test]
fn shape_catalog_admission_is_safe_for_mixed_shapes() {
    let horizon = Time::from_secs(15);
    for seed in [1u64, 2] {
        let cfg = WebFarmConfig {
            rate: 400.0, // overloads the farm: admission must throttle
            seed,
            ..WebFarmConfig::default()
        };
        let mut sim = SimBuilder::new(STAGES).region(cfg.shape_region()).build();
        let m = sim.run(cfg.arrivals(horizon).into_iter(), horizon).clone();
        assert!(m.admitted > 1000, "seed {seed}: admitted {}", m.admitted);
        assert_eq!(m.missed, 0, "seed {seed}");
    }
}

#[test]
fn shape_region_admits_at_least_as_much_as_chain_region() {
    // The conservative alternative treats every request as if it visited
    // all four stages in a chain (Σ f over all stages) — sound but
    // blinder than the per-shape regions.
    let horizon = Time::from_secs(15);
    let cfg = WebFarmConfig {
        rate: 400.0,
        seed: 5,
        ..WebFarmConfig::default()
    };

    let mut chain_sim = SimBuilder::new(STAGES)
        .region(FeasibleRegion::deadline_monotonic(STAGES))
        .idle_resets(false)
        .build();
    let chain = chain_sim
        .run(cfg.arrivals(horizon).into_iter(), horizon)
        .clone();

    let mut shape_sim = SimBuilder::new(STAGES)
        .region(cfg.shape_region())
        .idle_resets(false)
        .build();
    let shaped = shape_sim
        .run(cfg.arrivals(horizon).into_iter(), horizon)
        .clone();

    assert_eq!(chain.missed, 0);
    assert_eq!(shaped.missed, 0);
    assert!(
        shaped.admitted > chain.admitted,
        "shape-aware admission should accept more: {} vs {}",
        shaped.admitted,
        chain.admitted
    );
}

#[test]
fn front_end_is_shared_and_visible_in_metrics() {
    let horizon = Time::from_secs(10);
    let cfg = WebFarmConfig {
        rate: 300.0,
        seed: 9,
        ..WebFarmConfig::default()
    };
    let mut sim = SimBuilder::new(STAGES).region(cfg.shape_region()).build();
    let m = sim.run(cfg.arrivals(horizon).into_iter(), horizon).clone();
    // Every request touches the front end; only ~half proceed deeper.
    assert!(m.stage_utilization(0) > 0.0);
    let deep = m.stage_utilization(1) + m.stage_utilization(2) + m.stage_utilization(3);
    assert!(deep > 0.0);
    // The database sees roughly the non-static fraction of requests.
    assert!(
        m.stages[3].subtasks_completed < m.stages[0].subtasks_completed,
        "statics never reach the database"
    );
}
