//! Capacity planning vs reality: the demand-weighted allocation computed
//! analytically by `frap_core::capacity` predicts the synthetic-utilization
//! operating point an overloaded admission controller actually settles at.

use frap::core::capacity::{stage_headroom, weighted_allocation};
use frap::core::region::FeasibleRegion;
use frap::core::task::StageId;
use frap::core::time::Time;
use frap::sim::pipeline::SimBuilder;
use frap::workload::taskgen::PipelineWorkloadBuilder;

#[test]
fn overloaded_controller_settles_at_the_weighted_allocation() {
    // Stage demand ratio 2:1 (mean computations 20 ms vs 10 ms). Under
    // heavy overload with idle resets disabled and *mean-based* charging
    // (each task charges exactly the 2:1 mean mix — the model capacity
    // planning assumes), the controller fills the region and settles at
    // the analytic allocation. (With exact charging a selection effect
    // appears: near the surface, small-C0 tasks are admitted more often,
    // flattening the mix — which is itself the reason provisioning math
    // pairs with mean-based charging.)
    let region = FeasibleRegion::deadline_monotonic(2);
    let predicted = weighted_allocation(&region, &[2.0, 1.0]).unwrap();

    use frap::core::admission::MeanContributions;
    use frap::core::time::TimeDelta;
    let horizon = Time::from_secs(20);
    let mut sim = SimBuilder::new(2)
        .idle_resets(false)
        .model(MeanContributions::new(vec![
            TimeDelta::from_millis(20),
            TimeDelta::from_millis(10),
        ]))
        .build();
    let wl = PipelineWorkloadBuilder::new(2)
        .stage_means_ms(&[20.0, 10.0])
        .resolution(100.0)
        .load(3.0) // gross overload: the region is the binding constraint
        .seed(31)
        .build()
        .until(horizon);
    let m = sim.run(wl, horizon).clone();
    assert!(m.rejected > 0, "the region must be binding");

    let u0 = sim.admission().state().stage(StageId::new(0)).value();
    let u1 = sim.admission().state().stage(StageId::new(1)).value();

    // On (or just inside) the surface…
    let value = region.value(&[u0, u1]).unwrap();
    assert!(
        value <= region.budget() + 1e-9,
        "never outside the region: {value}"
    );
    assert!(value > 0.9 * region.budget(), "region nearly full: {value}");
    // …at approximately the predicted mix.
    assert!(
        (u0 / u1 - 2.0).abs() < 0.3,
        "utilization ratio ≈ demand ratio: {u0:.3}/{u1:.3}"
    );
    assert!(
        (u0 - predicted[0]).abs() < 0.06 && (u1 - predicted[1]).abs() < 0.06,
        "operating point ({u0:.3}, {u1:.3}) ≈ allocation ({:.3}, {:.3})",
        predicted[0],
        predicted[1]
    );
}

#[test]
fn headroom_query_agrees_with_admission_decisions() {
    // If the headroom at a stage says ΔU fits, a task charging slightly
    // less than ΔU there (and nothing elsewhere) is admitted; slightly
    // more is rejected.
    use frap::core::graph::TaskSpec;
    use frap::core::time::TimeDelta;

    let region = FeasibleRegion::deadline_monotonic(2);
    let mut sim = SimBuilder::new(2).idle_resets(false).build();
    // Pre-load some utilization.
    let ms = TimeDelta::from_millis;
    let preload = vec![
        (
            Time::ZERO,
            TaskSpec::pipeline(ms(1000), &[ms(150), ms(100)]).unwrap(),
        ),
        (
            Time::from_millis(1),
            TaskSpec::pipeline(ms(1000), &[ms(100), ms(50)]).unwrap(),
        ),
    ];

    // Probe stage 1 headroom at t = 2 ms via two single-stage tasks.
    let utils_after_preload = [0.25, 0.15];
    let h = stage_headroom(&region, &utils_after_preload, StageId::new(1)).unwrap();
    let fits = (h - 0.02).max(0.001);
    let overflows = h + 0.02;
    let d = ms(1000);
    let mk = |frac: f64| {
        let mut graph = frap::core::graph::TaskGraph::builder();
        graph.add(frap::core::task::SubtaskSpec::new(
            StageId::new(1),
            d.mul_f64(frac),
        ));
        TaskSpec::new(d, graph.build().unwrap())
    };
    let mut arrivals = preload;
    arrivals.push((Time::from_millis(2), mk(fits)));
    arrivals.push((Time::from_millis(3), mk(overflows)));

    let m = sim.run(arrivals.into_iter(), Time::from_secs(2)).clone();
    assert_eq!(
        m.admitted, 3,
        "preload (2) + the fitting probe; the overflowing probe is rejected"
    );
    assert_eq!(m.rejected, 1);
}
