//! The paper's central guarantee, end to end: **every task admitted by the
//! feasible-region controller meets its end-to-end deadline**, across
//! pipeline lengths, loads, resolutions, DAG shapes, scheduling policies
//! (with their matching α), and critical-section workloads (with their
//! matching β).

use frap::core::alpha::Alpha;
use frap::core::region::{FeasibleRegion, GraphRegion};
use frap::core::time::Time;
use frap::sim::pipeline::SimBuilder;
use frap::sim::RandomPriority;
use frap::workload::taskgen::{CriticalSectionConfig, DagWorkload, PipelineWorkloadBuilder};

const HORIZON_SECS: u64 = 12;

#[test]
fn pipelines_across_lengths_and_loads() {
    let horizon = Time::from_secs(HORIZON_SECS);
    for stages in [1usize, 2, 3, 5] {
        for load in [0.7, 1.0, 1.6] {
            for seed in [11u64, 22, 33] {
                let mut sim = SimBuilder::new(stages).build();
                let wl = PipelineWorkloadBuilder::new(stages)
                    .load(load)
                    .resolution(50.0)
                    .seed(seed)
                    .build()
                    .until(horizon);
                let m = sim.run(wl, horizon);
                assert!(m.admitted > 0, "stages={stages} load={load}");
                assert_eq!(
                    m.missed, 0,
                    "miss under exact AC: stages={stages} load={load} seed={seed}"
                );
            }
        }
    }
}

#[test]
fn coarse_resolution_is_still_safe() {
    // Even with large tasks (resolution 3) exact admission never misses.
    let horizon = Time::from_secs(HORIZON_SECS);
    for seed in 0..5u64 {
        let mut sim = SimBuilder::new(2).build();
        let wl = PipelineWorkloadBuilder::new(2)
            .load(1.3)
            .resolution(3.0)
            .seed(seed)
            .build()
            .until(horizon);
        let m = sim.run(wl, horizon);
        assert_eq!(m.missed, 0, "seed={seed}");
    }
}

#[test]
fn random_priorities_with_matching_alpha_are_safe() {
    // Deadlines span [0.5, 1.5]× the mean → α = 1/3 covers any
    // deadline-oblivious fixed-priority assignment (Equation 12).
    let horizon = Time::from_secs(HORIZON_SECS);
    let alpha = Alpha::new(1.0 / 3.0).expect("valid alpha");
    for seed in [5u64, 6, 7] {
        let mut sim = SimBuilder::new(2)
            .region(FeasibleRegion::with_alpha(2, alpha))
            .policy(RandomPriority::new(seed))
            .build();
        let wl = PipelineWorkloadBuilder::new(2)
            .load(1.2)
            .resolution(50.0)
            .seed(seed)
            .build()
            .until(horizon);
        let m = sim.run(wl, horizon);
        assert!(m.admitted > 0);
        assert_eq!(m.missed, 0, "seed={seed}");
    }
}

#[test]
fn critical_sections_with_matching_beta_are_safe() {
    // Exponential computations are unbounded, so a β that covers the
    // *generated* maximum cannot be fixed a priori; instead use a generous
    // β and verify no admitted task misses. (The β-exact experiment with
    // deterministic computations lives in the ablations.)
    let horizon = Time::from_secs(HORIZON_SECS);
    for seed in [1u64, 2] {
        let region = FeasibleRegion::deadline_monotonic(2)
            .with_blocking(vec![0.05, 0.05])
            .expect("valid blocking");
        let mut sim = SimBuilder::new(2).region(region).build();
        let wl = PipelineWorkloadBuilder::new(2)
            .load(1.0)
            .resolution(100.0)
            .critical_sections(CriticalSectionConfig {
                probability: 0.7,
                fraction: 0.25,
                locks_per_stage: 2,
            })
            .seed(seed)
            .build()
            .until(horizon);
        let m = sim.run(wl, horizon);
        assert!(m.admitted > 0);
        assert_eq!(m.missed, 0, "seed={seed}");
    }
}

#[test]
fn dag_workloads_are_safe_under_both_region_forms() {
    let horizon = Time::from_secs(HORIZON_SECS);
    for seed in [3u64, 4] {
        // Conservative chain-form region.
        let mut sim = SimBuilder::new(5).build();
        let m = sim.run(
            DagWorkload::new(5, 0.008, 60.0, 150.0, seed).until(horizon),
            horizon,
        );
        assert_eq!(m.missed, 0, "chain-form, seed={seed}");

        // Theorem 2 graph-form region (canonical full-branch shape
        // dominates every generated subset shape).
        use frap::core::task::{StageId, SubtaskSpec};
        use frap::core::time::TimeDelta;
        let ms1 = TimeDelta::from_millis(1);
        let canonical = frap::core::graph::TaskGraph::fork_join(
            SubtaskSpec::new(StageId::new(0), ms1),
            (1..=3)
                .map(|i| SubtaskSpec::new(StageId::new(i), ms1))
                .collect(),
            SubtaskSpec::new(StageId::new(4), ms1),
        )
        .expect("valid");
        let mut sim = SimBuilder::new(5)
            .region(GraphRegion::new(
                FeasibleRegion::deadline_monotonic(5),
                canonical,
            ))
            .build();
        let m = sim.run(
            DagWorkload::new(5, 0.008, 60.0, 150.0, seed).until(horizon),
            horizon,
        );
        assert_eq!(m.missed, 0, "graph-form, seed={seed}");
    }
}

#[test]
fn jittery_periodic_streams_are_safe() {
    // The paper's motivation: periodic tasks with 100 % release jitter
    // (minimum interarrival → 0) analyzed aperiodically.
    use frap::core::graph::TaskSpec;
    use frap::core::time::TimeDelta;
    use frap::workload::arrivals::{ArrivalProcess, PeriodicWithJitter};
    use frap::workload::rng::Rng;
    use frap::workload::taskgen::merge_arrivals;

    let horizon = Time::from_secs(HORIZON_SECS);
    let ms = TimeDelta::from_millis;
    let mut rng = Rng::new(99);
    let mut streams = Vec::new();
    for s in 0..20u64 {
        let mut proc = PeriodicWithJitter::new(ms(100), 1.0);
        let mut stream_rng = Rng::new(s * 31 + 1);
        let mut t = Time::ZERO + proc.next_gap(&mut stream_rng);
        let mut stream = Vec::new();
        while t <= horizon {
            let deadline = ms(60 + rng.range_u64(120));
            stream.push((
                t,
                TaskSpec::pipeline(deadline, &[ms(2), ms(2)]).expect("valid"),
            ));
            t += proc.next_gap(&mut stream_rng);
        }
        streams.push(stream);
    }
    let arrivals = merge_arrivals(streams);
    let mut sim = SimBuilder::new(2).build();
    let m = sim.run(arrivals.into_iter(), horizon);
    assert!(m.admitted > 100);
    assert_eq!(m.missed, 0, "jittery periodics must be safe as aperiodics");
}
