//! Baseline comparisons backing the paper's claims:
//!
//! * the end-to-end feasible region admits more work than the classical
//!   intermediate-deadline per-stage analysis;
//! * without admission control, overload causes deadline misses;
//! * mean-based approximate admission approaches exact admission in the
//!   high-resolution (liquid) regime.

use frap::core::admission::{
    AlwaysAdmit, MeanContributions, PerStageBound, SplitDeadlineContributions,
};
use frap::core::delay::UNIPROCESSOR_BOUND;
use frap::core::time::{Time, TimeDelta};
use frap::sim::pipeline::SimBuilder;
use frap::sim::SimMetrics;
use frap::workload::taskgen::PipelineWorkloadBuilder;

const STAGES: usize = 2;

fn run(sim: &mut frap::sim::Simulation, load: f64, resolution: f64, seed: u64) -> SimMetrics {
    let horizon = Time::from_secs(10);
    let wl = PipelineWorkloadBuilder::new(STAGES)
        .load(load)
        .resolution(resolution)
        .seed(seed)
        .build()
        .until(horizon);
    sim.run(wl, horizon).clone()
}

#[test]
fn end_to_end_beats_intermediate_deadlines() {
    for seed in [1u64, 2, 3] {
        let mut e2e = SimBuilder::new(STAGES).build();
        let m_e2e = run(&mut e2e, 1.2, 100.0, seed);

        let mut split = SimBuilder::new(STAGES)
            .region(PerStageBound::new(STAGES, UNIPROCESSOR_BOUND))
            .model(SplitDeadlineContributions)
            .build();
        let m_split = run(&mut split, 1.2, 100.0, seed);

        assert_eq!(m_e2e.missed, 0);
        assert_eq!(m_split.missed, 0, "the baseline is sound, just pessimistic");
        assert!(
            m_e2e.mean_stage_utilization() > m_split.mean_stage_utilization(),
            "seed {seed}: end-to-end {:.3} should beat split-deadline {:.3}",
            m_e2e.mean_stage_utilization(),
            m_split.mean_stage_utilization()
        );
    }
}

#[test]
fn no_admission_control_misses_at_overload() {
    let mut none = SimBuilder::new(STAGES)
        .region(AlwaysAdmit::new(STAGES))
        .build();
    let m = run(&mut none, 1.5, 100.0, 9);
    assert_eq!(m.rejected, 0);
    assert!(
        m.missed > 0,
        "150% load with no admission control must blow deadlines"
    );
}

#[test]
fn approximate_admission_tracks_exact_at_high_resolution() {
    let mut exact = SimBuilder::new(STAGES).build();
    let m_exact = run(&mut exact, 1.0, 200.0, 5);

    let mut approx = SimBuilder::new(STAGES)
        .model(MeanContributions::new(vec![
            TimeDelta::from_millis(10);
            STAGES
        ]))
        .build();
    let m_approx = run(&mut approx, 1.0, 200.0, 5);

    assert_eq!(m_exact.missed, 0);
    // The paper's Section 4.4 finding: at high resolution the mean-based
    // controller behaves like the exact one — almost no misses, similar
    // utilization.
    assert!(
        m_approx.miss_ratio() < 0.01,
        "miss ratio {:.4} should be negligible",
        m_approx.miss_ratio()
    );
    let diff = (m_approx.mean_stage_utilization() - m_exact.mean_stage_utilization()).abs();
    assert!(
        diff < 0.1,
        "utilizations should be close: exact {:.3} vs approx {:.3}",
        m_exact.mean_stage_utilization(),
        m_approx.mean_stage_utilization()
    );
}

#[test]
fn reservations_trade_dynamic_capacity_for_guarantees() {
    let mut plain = SimBuilder::new(STAGES).build();
    let m_plain = run(&mut plain, 1.2, 100.0, 7);

    let mut reserved = SimBuilder::new(STAGES).reservations(vec![0.3, 0.3]).build();
    let m_reserved = run(&mut reserved, 1.2, 100.0, 7);

    assert!(
        m_reserved.admitted < m_plain.admitted,
        "reservations must reduce dynamically admitted work: {} vs {}",
        m_reserved.admitted,
        m_plain.admitted
    );
    assert_eq!(m_reserved.missed, 0);
}
