//! PCP blocking properties, end to end.
//!
//! Under the priority ceiling protocol a job suffers at most **one**
//! blocking episode, and the *blocking* portion of its wait is at most one
//! critical section of another task. The wall-clock wait we measure also
//! contains higher-priority interference that lands while the (inherited)
//! lock holder runs — interference is accounted separately by the
//! analysis — so the wall-clock assertions below allow that slack while
//! the episode count is exact.

use frap::core::time::{Time, TimeDelta};
use frap::sim::pipeline::SimBuilder;
use frap::workload::taskgen::{CriticalSectionConfig, PipelineWorkloadBuilder};

#[test]
fn at_most_one_blocking_episode_per_job_single_lock() {
    let horizon = Time::from_secs(10);
    for seed in [1u64, 2, 3] {
        let mut sim = SimBuilder::new(2).build();
        let wl = PipelineWorkloadBuilder::new(2)
            .load(1.2)
            .resolution(60.0)
            .critical_sections(CriticalSectionConfig {
                probability: 0.8,
                fraction: 0.4,
                locks_per_stage: 1, // single lock per stage: one acquisition point
            })
            .seed(seed)
            .build()
            .until(horizon);
        let m = sim.run(wl, horizon).clone();
        assert!(m.admitted > 0);
        assert_eq!(m.missed, 0);
        for (j, st) in m.stages.iter().enumerate() {
            assert!(
                st.max_block_episodes <= 1,
                "seed {seed} stage {j}: a job blocked {} times; PCP allows one",
                st.max_block_episodes
            );
        }
    }
}

#[test]
fn wall_clock_blocking_stays_near_one_critical_section() {
    let horizon = Time::from_secs(10);
    for seed in [1u64, 2, 3] {
        let wl: Vec<_> = PipelineWorkloadBuilder::new(2)
            .load(1.0)
            .resolution(60.0)
            .critical_sections(CriticalSectionConfig {
                probability: 0.8,
                fraction: 0.4,
                locks_per_stage: 1,
            })
            .seed(seed)
            .build()
            .until(horizon)
            .collect();

        let max_cs: TimeDelta = wl
            .iter()
            .flat_map(|(_, s)| s.graph.subtasks())
            .map(|sub| sub.max_critical_section())
            .fold(TimeDelta::ZERO, TimeDelta::max);
        assert!(!max_cs.is_zero());

        let mut sim = SimBuilder::new(2).build();
        let m = sim.run(wl.into_iter(), horizon).clone();
        for (j, st) in m.stages.iter().enumerate() {
            // One critical section of blocking, plus bounded interference
            // slack (higher-priority arrivals during the inheritance
            // window). A broken protocol (e.g. unbounded priority
            // inversion or FIFO lock queues) blows far past this.
            let allowance = max_cs * 3;
            assert!(
                st.blocking_max <= allowance,
                "seed {seed} stage {j}: per-job wait {} far exceeds one \
                 critical section ({max_cs})",
                st.blocking_max
            );
        }
    }
}

#[test]
fn contention_actually_happens() {
    // The bounds above would be vacuous if nothing ever blocked; verify
    // the workload actually produces blocking events.
    let horizon = Time::from_secs(10);
    let mut sim = SimBuilder::new(1).build();
    let wl = PipelineWorkloadBuilder::new(1)
        .load(1.8)
        .resolution(20.0)
        .critical_sections(CriticalSectionConfig {
            probability: 1.0,
            fraction: 0.6,
            locks_per_stage: 1,
        })
        .seed(4)
        .build()
        .until(horizon);
    let m = sim.run(wl, horizon).clone();
    let events: u64 = m.stages.iter().map(|s| s.blocking_events).sum();
    assert!(events > 0, "expected lock contention under this workload");
}
