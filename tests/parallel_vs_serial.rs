//! Differential suite for the parallel replication runner: on
//! representative parameter points from the figure 1/2, figure 3 (DAG),
//! and Table 1 experiments, the parallel runner must produce aggregates
//! **bit-identical** to the serial runner given the same base seed — and
//! two parallel runs with different worker counts must agree with each
//! other, since the seed derivation and merge order depend only on
//! replication indices, never on thread scheduling.

use frap::core::region::{FeasibleRegion, GraphRegion};
use frap::core::time::{Time, TimeDelta};
use frap::sim::pipeline::{SimBuilder, WaitPolicy};
use frap::workload::taskgen::PipelineWorkloadBuilder;
use frap::workload::tsce::{self, TsceScenario};
use frap_experiments::common::Scale;
use frap_experiments::fig3_dag;
use frap_experiments::runner::{run_point_cfg, PointResult, RunConfig};

/// A four-replication scale at the given worker count.
fn scale(jobs: usize) -> Scale {
    Scale {
        horizon_secs: 4,
        replications: 4,
        jobs,
    }
}

/// The figure 1/2 style point: a single-stage pipeline under Poisson
/// load 0.9 (what `fig1_2::figure1_simulated` drives).
fn fig1_2_point(jobs: usize) -> PointResult {
    let horizon = Time::from_secs(4);
    run_point_cfg(
        RunConfig::new(scale(jobs)).point(0),
        || SimBuilder::new(1).build(),
        |seed| {
            PipelineWorkloadBuilder::new(1)
                .load(0.9)
                .resolution(20.0)
                .seed(seed)
                .build()
                .until(horizon)
        },
    )
}

/// The figure 3 point: fork-join tasks admitted with the Theorem 2 graph
/// region (`fig3_dag::run` part 2, point 1).
fn fig3_dag_point(jobs: usize) -> PointResult {
    let horizon = Time::from_secs(4);
    run_point_cfg(
        RunConfig::new(scale(jobs)).point(1),
        || {
            SimBuilder::new(fig3_dag::STAGES)
                .idle_resets(false)
                .region(GraphRegion::new(
                    FeasibleRegion::deadline_monotonic(fig3_dag::STAGES),
                    fig3_dag::figure3_graph(),
                ))
                .build()
        },
        |seed| fig3_dag::branch_heavy_arrivals(horizon, seed).into_iter(),
    )
}

/// The Table 1 point: the TSCE scenario at 400 tracks with reserved
/// critical capacity and a 200 ms admission wait queue.
fn table1_point(jobs: usize) -> PointResult {
    let horizon = Time::from_secs(4);
    run_point_cfg(
        RunConfig::new(scale(jobs)).point(5),
        || {
            SimBuilder::new(tsce::STAGES)
                .reservations(tsce::reservations().to_vec())
                .reserved_importance(tsce::CRITICAL)
                .wait(WaitPolicy::WaitUpTo(TimeDelta::from_millis(200)))
                .build()
        },
        |seed| {
            let scenario = TsceScenario {
                seed,
                ..TsceScenario::new(400)
            };
            scenario.arrivals(horizon).into_iter()
        },
    )
}

/// Asserts full bitwise agreement plus sanity on a pair of runs.
fn assert_identical(serial: &PointResult, parallel: &PointResult, what: &str) {
    assert!(
        serial.offered > 0,
        "{what}: the point must actually offer work"
    );
    assert_eq!(
        serial.fingerprint(),
        parallel.fingerprint(),
        "{what}: parallel aggregates must be bit-identical to serial"
    );
}

#[test]
fn fig1_2_point_parallel_matches_serial() {
    assert_identical(&fig1_2_point(1), &fig1_2_point(4), "fig1_2");
}

#[test]
fn fig3_dag_point_parallel_matches_serial() {
    assert_identical(&fig3_dag_point(1), &fig3_dag_point(4), "fig3_dag");
}

#[test]
fn table1_point_parallel_matches_serial() {
    assert_identical(&table1_point(1), &table1_point(4), "table1");
}

#[test]
fn different_worker_counts_agree_with_each_other() {
    // Worker count only changes which thread runs a replication, never
    // its seed or merge position: 2 and 5 workers must agree bitwise
    // (5 > replications also exercises the jobs clamp).
    let two = fig3_dag_point(2);
    let five = fig3_dag_point(5);
    assert_eq!(
        two.fingerprint(),
        five.fingerprint(),
        "jobs=2 and jobs=5 must agree bitwise"
    );
}

#[test]
fn events_and_wall_clock_are_recorded() {
    let r = fig1_2_point(2);
    assert!(r.events > 0, "event count must be recorded");
    assert!(r.wall_secs > 0.0, "wall clock must be recorded");
    assert!(r.events_per_sec() > 0.0);
    // The nondeterministic wall clock must not leak into the fingerprint.
    let fp = r.fingerprint();
    assert!(!fp.contains(&r.wall_secs.to_bits()));
}
