//! Admission wait-queue semantics (the TSCE experiment's 200 ms queue):
//! retries on idle resets *and* deadline expiries, arrival-order fairness,
//! and exact timeout accounting.

use frap::core::graph::TaskSpec;
use frap::core::time::{Time, TimeDelta};
use frap::sim::pipeline::{SimBuilder, WaitPolicy};

fn ms(v: u64) -> TimeDelta {
    TimeDelta::from_millis(v)
}

fn at(v: u64) -> Time {
    Time::from_millis(v)
}

fn task(deadline_ms: u64, comp_ms: u64) -> TaskSpec {
    TaskSpec::pipeline(ms(deadline_ms), &[ms(comp_ms)]).unwrap()
}

#[test]
fn deadline_expiry_alone_releases_waiting_arrivals() {
    // Idle resets disabled: the only capacity-release signal is the first
    // task's deadline at t = 50 ms.
    let mut sim = SimBuilder::new(1)
        .idle_resets(false)
        .wait(WaitPolicy::WaitUpTo(ms(200)))
        .record_outcomes(true)
        .build();
    let arrivals = vec![
        (at(0), task(50, 25)), // C/D = 0.5
        (at(1), task(50, 25)), // together 1.0 > 0.586 → waits
    ];
    let m = sim.run(arrivals.into_iter(), Time::from_secs(1)).clone();
    assert_eq!(m.admitted, 2);
    assert_eq!(m.wait_timeouts, 0);
    assert_eq!(m.missed, 0);
    // The second task entered at the first one's deadline expiry (t = 50).
    // (A waiter's recorded arrival is its admission instant.)
    let completions: Vec<Time> = m.outcomes.iter().map(|o| o.completion).collect();
    assert!(completions.contains(&at(25)), "first task ran immediately");
    assert!(
        completions.contains(&at(75)),
        "second task admitted at the t=50 expiry, ran 25 ms: {completions:?}"
    );
}

#[test]
fn waiting_arrivals_admit_in_arrival_order_when_capacity_frees() {
    let mut sim = SimBuilder::new(1)
        .wait(WaitPolicy::WaitUpTo(ms(500)))
        .record_outcomes(true)
        .build();
    // One blocking task, then three identical waiters.
    let arrivals = vec![
        (at(0), task(100, 50)),
        (at(1), task(400, 50)),
        (at(2), task(400, 50)),
        (at(3), task(400, 50)),
    ];
    let m = sim.run(arrivals.into_iter(), Time::from_secs(2)).clone();
    assert_eq!(m.admitted, 4);
    assert_eq!(m.missed, 0);
    // The waiters are retried in queue order, so their admission times
    // (recorded as outcome arrivals) are non-decreasing with completion.
    let mut waiters: Vec<_> = m
        .outcomes
        .iter()
        .filter(|o| o.deadline.saturating_since(o.arrival) == ms(400))
        .collect();
    assert_eq!(waiters.len(), 3);
    waiters.sort_by_key(|o| o.arrival);
    for pair in waiters.windows(2) {
        assert!(
            pair[0].completion <= pair[1].completion,
            "earlier-admitted waiter finishes no later"
        );
    }
}

#[test]
fn timeouts_are_counted_exactly_once() {
    let mut sim = SimBuilder::new(1)
        .wait(WaitPolicy::WaitUpTo(ms(20)))
        .build();
    // The blocker holds the region past every waiter's patience.
    let arrivals = vec![
        (at(0), task(500, 290)), // util 0.58, runs 290 ms
        (at(1), task(500, 290)),
        (at(2), task(500, 290)),
    ];
    let m = sim.run(arrivals.into_iter(), Time::from_secs(2)).clone();
    assert_eq!(m.admitted, 1);
    assert_eq!(m.wait_timeouts, 2);
    assert_eq!(m.rejected, 2);
    assert_eq!(m.offered, 3);
    assert_eq!(m.missed, 0);
}

#[test]
fn smaller_later_arrival_may_overtake_a_large_waiter() {
    // Documented queue semantics: waiters are retried front-to-back but a
    // small task can be admitted while a larger, earlier waiter still does
    // not fit (no head-of-line blocking).
    let mut sim = SimBuilder::new(1)
        .wait(WaitPolicy::WaitUpTo(ms(300)))
        .record_outcomes(true)
        .build();
    let arrivals = vec![
        (at(0), task(200, 80)),  // blocker: util 0.4
        (at(1), task(200, 100)), // large waiter: needs 0.5 more — waits
        (at(2), task(200, 20)),  // small: 0.1 — fits alongside the blocker
    ];
    let m = sim.run(arrivals.into_iter(), Time::from_secs(2)).clone();
    assert_eq!(m.admitted, 3);
    // Identify by uncontended service demand: small responds fast.
    let small = m
        .outcomes
        .iter()
        .min_by_key(|o| o.response())
        .expect("outcomes exist");
    let large = m
        .outcomes
        .iter()
        .max_by_key(|o| o.completion)
        .expect("outcomes exist");
    assert!(
        small.completion < large.completion,
        "the small task is not head-of-line blocked"
    );
    assert_eq!(m.missed, 0);
}

#[test]
fn zero_wait_is_equivalent_to_reject() {
    let run = |wait: WaitPolicy| {
        let mut sim = SimBuilder::new(1).wait(wait).build();
        let arrivals = vec![(at(0), task(100, 50)), (at(1), task(100, 50))];
        sim.run(arrivals.into_iter(), Time::from_secs(1)).clone()
    };
    let rejected = run(WaitPolicy::Reject);
    let zero_wait = run(WaitPolicy::WaitUpTo(TimeDelta::ZERO));
    assert_eq!(rejected.admitted, zero_wait.admitted);
    // Timeouts are counted within `rejected` (they are a kind of
    // rejection), so the totals match across policies.
    assert_eq!(rejected.rejected, zero_wait.rejected);
    assert_eq!(zero_wait.wait_timeouts, zero_wait.rejected);
    assert_eq!(zero_wait.admitted, 1);
}
