//! Soak test: a long simulated horizon under sustained load. Verifies the
//! system is stable over time — bounded live state, no misses, sane
//! utilization — i.e. nothing leaks or drifts across hundreds of
//! thousands of events.

use frap::core::task::StageId;
use frap::core::time::Time;
use frap::sim::pipeline::SimBuilder;
use frap::workload::taskgen::PipelineWorkloadBuilder;

#[test]
fn two_minutes_at_full_load_is_stable() {
    let horizon = Time::from_secs(120);
    let mut sim = SimBuilder::new(2).build();
    let wl = PipelineWorkloadBuilder::new(2)
        .load(1.0)
        .resolution(100.0)
        .seed(2026)
        .build()
        .until(horizon);
    let m = sim.run(wl, horizon).clone();

    // Sustained throughput: ~100 offered/s for 120 s.
    assert!(m.offered > 10_000, "offered {}", m.offered);
    assert!(m.acceptance_ratio() > 0.7);
    assert_eq!(m.missed, 0);

    // Live state is bounded by the deadline window, not the run length:
    // deadlines are ≤ 3 s, so at most ~3 s × rate tasks can be live.
    let snap = sim.snapshot();
    assert!(
        snap.live_tasks < 1_000,
        "live tasks {} should be bounded by the deadline window",
        snap.live_tasks
    );
    for j in 0..2 {
        let live = sim.admission().state().stage(StageId::new(j)).live_tasks();
        assert!(
            live < 1_000,
            "stage {j} tracker holds {live} entries after 120 s"
        );
    }

    // Utilization in the steady-state band the paper reports (>80 % at
    // 100 % load).
    let u = m.mean_stage_utilization();
    assert!(u > 0.8 && u < 1.0, "u={u}");

    // The histogram saw every completion.
    assert_eq!(m.response_hist.count(), m.completed);
}

#[test]
fn sustained_overload_sheds_gracefully() {
    // 3× overload for a minute: the controller saturates near the region
    // boundary and stays there — no drift, no misses, stable acceptance.
    let horizon = Time::from_secs(60);
    let mut sim = SimBuilder::new(2).build();
    let wl = PipelineWorkloadBuilder::new(2)
        .load(3.0)
        .resolution(100.0)
        .seed(99)
        .build()
        .until(horizon);
    let m = sim.run(wl, horizon).clone();
    assert!(m.offered > 15_000);
    assert_eq!(m.missed, 0);
    let acc = m.acceptance_ratio();
    assert!(
        acc > 0.2 && acc < 0.6,
        "acceptance {acc} ≈ capacity/offered"
    );
    assert!(m.mean_stage_utilization() > 0.85);
}
