//! Cross-validation of the holistic RTA baseline against the simulator:
//! for periodic task sets, the analysis' worst-case response bound must
//! dominate every simulated response.

use frap::core::admission::AlwaysAdmit;
use frap::core::graph::TaskSpec;
use frap::core::rta::{HolisticAnalysis, PeriodicTask};
use frap::core::time::{Time, TimeDelta};
use frap::sim::pipeline::SimBuilder;

fn ms(v: u64) -> TimeDelta {
    TimeDelta::from_millis(v)
}

/// Builds synchronous periodic arrivals for a set of (period, deadline,
/// comps) streams over the horizon.
fn periodic_arrivals(streams: &[(u64, u64, Vec<u64>)], horizon: Time) -> Vec<(Time, TaskSpec)> {
    let mut out = Vec::new();
    for (period, deadline, comps) in streams {
        let comps: Vec<TimeDelta> = comps.iter().map(|&c| ms(c)).collect();
        let mut t = Time::ZERO;
        while t <= horizon {
            out.push((t, TaskSpec::pipeline(ms(*deadline), &comps).unwrap()));
            t += ms(*period);
        }
    }
    out.sort_by_key(|&(t, _)| t);
    out
}

#[test]
fn rta_bound_dominates_simulated_responses() {
    // Three streams with distinct deadlines (so outcomes are attributable)
    // sharing a two-stage pipeline, all synchronous at t = 0 — the
    // critical instant the analysis is built around.
    let streams: Vec<(u64, u64, Vec<u64>)> = vec![
        (20, 20, vec![2, 3]),
        (50, 50, vec![5, 4]),
        (100, 100, vec![10, 8]),
    ];

    let mut rta = HolisticAnalysis::new(2);
    for (p, d, comps) in &streams {
        rta.add(PeriodicTask::deadline_monotonic(
            ms(*p),
            ms(*d),
            comps.iter().map(|&c| ms(c)).collect(),
        ));
    }
    let analysis = rta.analyze();
    assert!(analysis.schedulable, "the set must certify under RTA");

    // Simulate the identical set with DM scheduling and no admission
    // filtering (the set is statically certified).
    let horizon = Time::from_secs(10);
    let mut sim = SimBuilder::new(2)
        .region(AlwaysAdmit::new(2))
        .record_outcomes(true)
        .build();
    let m = sim
        .run(periodic_arrivals(&streams, horizon).into_iter(), horizon)
        .clone();
    assert_eq!(m.missed, 0, "an RTA-certified set never misses");
    assert!(m.completed > 500);

    // Per-stream worst observed response ≤ the analysis bound.
    for (i, (_, d, _)) in streams.iter().enumerate() {
        let bound = analysis.tasks[i].total;
        let worst = m
            .outcomes
            .iter()
            .filter(|o| o.deadline.saturating_since(o.arrival) == ms(*d))
            .map(|o| o.response())
            .max()
            .expect("stream completed tasks");
        assert!(
            worst <= bound,
            "stream {i}: simulated worst response {worst} exceeds RTA bound {bound}"
        );
    }
}

#[test]
fn rta_is_tight_for_the_lowest_priority_task_at_the_critical_instant() {
    // With the synchronous release at t = 0, the first job of the lowest
    // priority task experiences exactly the analysis' stage-0 scenario.
    let streams: Vec<(u64, u64, Vec<u64>)> = vec![(10, 10, vec![3, 0]), (30, 30, vec![8, 0])];
    let mut rta = HolisticAnalysis::new(2);
    for (p, d, comps) in &streams {
        rta.add(PeriodicTask::deadline_monotonic(
            ms(*p),
            ms(*d),
            comps.iter().map(|&c| ms(c)).collect(),
        ));
    }
    let analysis = rta.analyze();
    // R = 8 + ⌈R/10⌉·3 → 14.
    assert_eq!(analysis.tasks[1].total, ms(14));

    let horizon = Time::from_secs(1);
    let mut sim = SimBuilder::new(2)
        .region(AlwaysAdmit::new(2))
        .record_outcomes(true)
        .build();
    let m = sim
        .run(periodic_arrivals(&streams, horizon).into_iter(), horizon)
        .clone();
    let first_low = m
        .outcomes
        .iter()
        .filter(|o| o.deadline.saturating_since(o.arrival) == ms(30))
        .min_by_key(|o| o.arrival)
        .unwrap();
    assert_eq!(
        first_low.response(),
        ms(14),
        "the critical-instant job should achieve the bound exactly"
    );
}

#[test]
fn unschedulable_set_misses_in_simulation_too() {
    // RTA rejects this set; simulation confirms misses actually occur
    // (i.e., RTA is not just conservative here).
    let streams: Vec<(u64, u64, Vec<u64>)> = vec![(10, 10, vec![6, 0]), (20, 20, vec![10, 0])];
    let mut rta = HolisticAnalysis::new(2);
    for (p, d, comps) in &streams {
        rta.add(PeriodicTask::deadline_monotonic(
            ms(*p),
            ms(*d),
            comps.iter().map(|&c| ms(c)).collect(),
        ));
    }
    assert!(!rta.analyze().schedulable);

    let horizon = Time::from_secs(2);
    let mut sim = SimBuilder::new(2).region(AlwaysAdmit::new(2)).build();
    let m = sim
        .run(periodic_arrivals(&streams, horizon).into_iter(), horizon)
        .clone();
    assert!(m.missed > 0, "110% utilization on stage 0 must miss");
}

#[test]
fn feasible_region_admission_handles_what_rta_cannot_analyze() {
    // Full-jitter periodics (minimum interarrival → 0) break holistic
    // RTA, the paper's opening motivation. The same demand offered to the
    // feasible-region controller is served with zero misses — whatever is
    // admitted is guaranteed.
    let mut rta = HolisticAnalysis::new(2);
    for _ in 0..6 {
        rta.add(
            PeriodicTask::deadline_monotonic(ms(100), ms(100), vec![ms(8), ms(8)])
                .with_jitter(ms(95)),
        );
    }
    assert!(
        !rta.analyze().schedulable,
        "near-period jitter wrecks the holistic analysis"
    );

    // The same six streams, fully jittered, under online admission.
    use frap::workload::arrivals::{ArrivalProcess, PeriodicWithJitter};
    use frap::workload::rng::Rng;
    use frap::workload::taskgen::merge_arrivals;
    let horizon = Time::from_secs(12);
    let mut streams = Vec::new();
    for s in 0..6u64 {
        let mut proc = PeriodicWithJitter::new(ms(100), 0.95);
        let mut rng = Rng::new(s + 1);
        let mut t = Time::ZERO + proc.next_gap(&mut rng);
        let mut stream = Vec::new();
        while t <= horizon {
            stream.push((t, TaskSpec::pipeline(ms(100), &[ms(8), ms(8)]).unwrap()));
            t += proc.next_gap(&mut rng);
        }
        streams.push(stream);
    }
    let mut sim = SimBuilder::new(2).build();
    let m = sim
        .run(merge_arrivals(streams).into_iter(), horizon)
        .clone();
    assert!(m.admitted > 300, "most of the stream is served");
    assert_eq!(m.missed, 0, "admitted jittery work is still guaranteed");
}
