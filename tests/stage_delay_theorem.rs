//! Empirical validation of Theorem 1 (the stage delay theorem): the time
//! any task spends at stage `j` never exceeds `f(U_j) · D_max`, where
//! `U_j` is the observed peak synthetic utilization at the stage and
//! `D_max` the largest admitted relative deadline.

use frap::core::delay::stage_delay_factor;
use frap::core::task::StageId;
use frap::core::time::{Time, TimeDelta};
use frap::sim::pipeline::SimBuilder;
use frap::workload::taskgen::PipelineWorkloadBuilder;

fn check(stages: usize, load: f64, resolution: f64, seed: u64) {
    let horizon = Time::from_secs(12);
    let builder = PipelineWorkloadBuilder::new(stages)
        .load(load)
        .resolution(resolution)
        .seed(seed);
    // Deadlines are uniform in [0.5, 1.5] × mean deadline.
    let d_max = TimeDelta::from_secs_f64(1.5 * builder.mean_deadline());
    let mut sim = SimBuilder::new(stages).build();
    let m = sim.run(builder.build().until(horizon), horizon).clone();
    assert!(m.admitted > 0);

    for j in 0..stages {
        let peak = sim.admission().state().stage(StageId::new(j)).peak();
        let bound = d_max.mul_f64(stage_delay_factor(peak));
        let observed = m.stages[j].stage_delay_max;
        assert!(
            observed <= bound,
            "Theorem 1 violated at stage {j}: observed L_j = {observed}, \
             bound f({peak:.4})·D_max = {bound} (stages={stages}, load={load}, \
             resolution={resolution}, seed={seed})"
        );
    }
}

#[test]
fn stage_delays_respect_theorem_bound_balanced() {
    for seed in [1u64, 2, 3] {
        check(2, 1.0, 50.0, seed);
    }
}

#[test]
fn stage_delays_respect_theorem_bound_deep_pipeline() {
    check(5, 1.2, 80.0, 4);
}

#[test]
fn stage_delays_respect_theorem_bound_coarse_tasks() {
    check(2, 1.5, 5.0, 5);
}

#[test]
fn stage_delays_respect_theorem_bound_single_stage() {
    check(1, 1.8, 30.0, 6);
}

/// Theorem 1 on a DAG topology, across replications, under the parallel
/// runner: every per-stage delay aggregated by [`PointResult`] must
/// respect `f(U_j) · D_max`. The aggregates are max-merged over
/// replications, which only relaxes the comparison: the merged peak is at
/// least the peak of whichever replication produced the merged delay,
/// and `f` is increasing.
fn check_dag_point<A, I>(stages: usize, d_max: TimeDelta, what: &str, make_arrivals: A)
where
    A: Fn(u64) -> I + Sync,
    I: Iterator<Item = (Time, frap::core::graph::TaskSpec)>,
{
    use frap_experiments::common::Scale;
    use frap_experiments::runner::{run_point_cfg, RunConfig};

    let scale = Scale {
        horizon_secs: 6,
        replications: 3,
        jobs: 3,
    };
    let r = run_point_cfg(
        RunConfig::new(scale).point(0),
        || SimBuilder::new(stages).build(),
        make_arrivals,
    );
    assert!(r.admitted > 0, "{what}: the point must admit work");
    for j in 0..stages {
        let peak = r.per_stage_peak_synth[j];
        let bound = d_max.mul_f64(stage_delay_factor(peak));
        let observed = r.per_stage_delay_max[j];
        assert!(
            observed <= bound,
            "{what}: Theorem 1 violated at stage {j}: observed L_j = {observed}, \
             bound f({peak:.4})·D_max = {bound}"
        );
    }
}

#[test]
fn stage_delays_respect_theorem_bound_fork_join_dag() {
    // The Figure 3 fork-join graph; deadlines are uniform in
    // [1.3, 3.9] s (see `branch_heavy_arrivals`).
    let horizon = Time::from_secs(6);
    check_dag_point(
        frap_experiments::fig3_dag::STAGES,
        TimeDelta::from_secs_f64(3.9),
        "fork-join",
        |seed| frap_experiments::fig3_dag::branch_heavy_arrivals(horizon, seed).into_iter(),
    );
}

#[test]
fn stage_delays_respect_theorem_bound_wide_fork_dag() {
    // A wider DAG: ingest forks into three parallel branches that rejoin.
    use frap::core::graph::{TaskGraph, TaskSpec};
    use frap::core::task::SubtaskSpec;
    use frap::workload::arrivals::{ArrivalProcess, PoissonProcess};
    use frap::workload::dist::{Distribution, Exponential, Uniform};
    use frap::workload::rng::Rng;

    let horizon = Time::from_secs(6);
    let d_lo = 0.8;
    let d_hi = 2.4;
    check_dag_point(5, TimeDelta::from_secs_f64(d_hi), "wide-fork", |seed| {
        let mut rng = Rng::new(seed);
        let mut poisson = PoissonProcess::new(80.0);
        let branch = Exponential::new(0.010);
        let deadline = Uniform::new(d_lo, d_hi);
        let ms1 = TimeDelta::from_millis(1);
        let mut out = Vec::new();
        let mut t = Time::ZERO;
        loop {
            t += poisson.next_gap(&mut rng);
            if t > horizon {
                break;
            }
            let g = TaskGraph::fork_join(
                SubtaskSpec::new(StageId::new(0), ms1),
                vec![
                    SubtaskSpec::new(StageId::new(1), branch.sample_delta(&mut rng)),
                    SubtaskSpec::new(StageId::new(2), branch.sample_delta(&mut rng)),
                    SubtaskSpec::new(StageId::new(3), branch.sample_delta(&mut rng)),
                ],
                SubtaskSpec::new(StageId::new(4), ms1),
            )
            .expect("valid fork-join");
            out.push((t, TaskSpec::new(deadline.sample_delta(&mut rng), g)));
        }
        out.into_iter()
    });
}

/// The bound is not vacuous: at meaningful loads the observed maximum
/// stage delay is a substantial fraction of the theorem bound.
#[test]
fn bound_is_reasonably_tight_under_load() {
    let horizon = Time::from_secs(12);
    let builder = PipelineWorkloadBuilder::new(1)
        .load(2.0)
        .resolution(20.0)
        .seed(7);
    let d_max = TimeDelta::from_secs_f64(1.5 * builder.mean_deadline());
    let mut sim = SimBuilder::new(1).build();
    let m = sim.run(builder.build().until(horizon), horizon).clone();
    let peak = sim.admission().state().stage(StageId::new(0)).peak();
    let bound = d_max.mul_f64(stage_delay_factor(peak));
    let observed = m.stages[0].stage_delay_max;
    let tightness = observed.ratio(bound);
    assert!(
        tightness > 0.05,
        "observed {observed} should be a visible fraction of bound {bound}"
    );
}
