//! Empirical validation of Theorem 1 (the stage delay theorem): the time
//! any task spends at stage `j` never exceeds `f(U_j) · D_max`, where
//! `U_j` is the observed peak synthetic utilization at the stage and
//! `D_max` the largest admitted relative deadline.

use frap::core::delay::stage_delay_factor;
use frap::core::task::StageId;
use frap::core::time::{Time, TimeDelta};
use frap::sim::pipeline::SimBuilder;
use frap::workload::taskgen::PipelineWorkloadBuilder;

fn check(stages: usize, load: f64, resolution: f64, seed: u64) {
    let horizon = Time::from_secs(12);
    let builder = PipelineWorkloadBuilder::new(stages)
        .load(load)
        .resolution(resolution)
        .seed(seed);
    // Deadlines are uniform in [0.5, 1.5] × mean deadline.
    let d_max = TimeDelta::from_secs_f64(1.5 * builder.mean_deadline());
    let mut sim = SimBuilder::new(stages).build();
    let m = sim.run(builder.build().until(horizon), horizon).clone();
    assert!(m.admitted > 0);

    for j in 0..stages {
        let peak = sim.admission().state().stage(StageId::new(j)).peak();
        let bound = d_max.mul_f64(stage_delay_factor(peak));
        let observed = m.stages[j].stage_delay_max;
        assert!(
            observed <= bound,
            "Theorem 1 violated at stage {j}: observed L_j = {observed}, \
             bound f({peak:.4})·D_max = {bound} (stages={stages}, load={load}, \
             resolution={resolution}, seed={seed})"
        );
    }
}

#[test]
fn stage_delays_respect_theorem_bound_balanced() {
    for seed in [1u64, 2, 3] {
        check(2, 1.0, 50.0, seed);
    }
}

#[test]
fn stage_delays_respect_theorem_bound_deep_pipeline() {
    check(5, 1.2, 80.0, 4);
}

#[test]
fn stage_delays_respect_theorem_bound_coarse_tasks() {
    check(2, 1.5, 5.0, 5);
}

#[test]
fn stage_delays_respect_theorem_bound_single_stage() {
    check(1, 1.8, 30.0, 6);
}

/// The bound is not vacuous: at meaningful loads the observed maximum
/// stage delay is a substantial fraction of the theorem bound.
#[test]
fn bound_is_reasonably_tight_under_load() {
    let horizon = Time::from_secs(12);
    let builder = PipelineWorkloadBuilder::new(1)
        .load(2.0)
        .resolution(20.0)
        .seed(7);
    let d_max = TimeDelta::from_secs_f64(1.5 * builder.mean_deadline());
    let mut sim = SimBuilder::new(1).build();
    let m = sim.run(builder.build().until(horizon), horizon).clone();
    let peak = sim.admission().state().stage(StageId::new(0)).peak();
    let bound = d_max.mul_f64(stage_delay_factor(peak));
    let observed = m.stages[0].stage_delay_max;
    let tightness = observed.ratio(bound);
    assert!(
        tightness > 0.05,
        "observed {observed} should be a visible fraction of bound {bound}"
    );
}
