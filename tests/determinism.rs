//! Reproducibility: identical configurations and seeds give bit-identical
//! results; different seeds give different streams.

use frap::core::time::Time;
use frap::sim::pipeline::SimBuilder;
use frap::sim::SimMetrics;
use frap::workload::taskgen::{CriticalSectionConfig, PipelineWorkloadBuilder};
use frap::workload::tsce::TsceScenario;

fn run_once(seed: u64) -> SimMetrics {
    let horizon = Time::from_secs(8);
    let mut sim = SimBuilder::new(3).record_outcomes(true).build();
    let wl = PipelineWorkloadBuilder::new(3)
        .load(1.1)
        .resolution(40.0)
        .critical_sections(CriticalSectionConfig {
            probability: 0.5,
            fraction: 0.3,
            locks_per_stage: 2,
        })
        .seed(seed)
        .build()
        .until(horizon);
    sim.run(wl, horizon).clone()
}

#[test]
fn same_seed_same_everything() {
    let a = run_once(42);
    let b = run_once(42);
    assert_eq!(a.offered, b.offered);
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.missed, b.missed);
    assert_eq!(
        a.outcomes, b.outcomes,
        "per-task outcomes must be identical"
    );
    for j in 0..3 {
        assert_eq!(a.stages[j].busy, b.stages[j].busy);
        assert_eq!(a.stages[j].idle_resets, b.stages[j].idle_resets);
        assert_eq!(a.stages[j].blocking_total, b.stages[j].blocking_total);
    }
}

#[test]
fn different_seeds_differ() {
    let a = run_once(1);
    let b = run_once(2);
    // Offered counts are Poisson draws; identical streams would be a
    // one-in-astronomical coincidence.
    assert!(
        a.offered != b.offered || a.outcomes != b.outcomes,
        "different seeds should give different workloads"
    );
}

#[test]
fn tsce_scenario_is_reproducible() {
    let horizon = Time::from_secs(5);
    let run = || {
        let mut sim = SimBuilder::new(frap::workload::tsce::STAGES)
            .reservations(frap::workload::tsce::reservations().to_vec())
            .reserved_importance(frap::workload::tsce::CRITICAL)
            .build();
        let arrivals = TsceScenario::new(150).arrivals(horizon);
        sim.run(arrivals.into_iter(), horizon).clone()
    };
    let a = run();
    let b = run();
    assert_eq!(a.admitted, b.admitted);
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.stages[0].busy, b.stages[0].busy);
}
