//! The Section 5 TSCE case study as an executable test: certification,
//! reservations, wait-queue admission, bottleneck structure, and the hard
//! guarantee for critical tasks.

use frap::core::time::{Time, TimeDelta};
use frap::sim::pipeline::{SimBuilder, WaitPolicy};
use frap::workload::tsce;

#[test]
fn critical_set_certifies_at_093() {
    let v = tsce::certification_value();
    assert!(
        (v - 0.93).abs() < 0.005,
        "Eq.(13) value {v} should be ~0.93"
    );
    assert!(v < 1.0);
    let r = tsce::reservations();
    assert!((r[0] - 0.40).abs() < 1e-12);
    assert!((r[1] - 0.25).abs() < 1e-12);
    assert!((r[2] - 0.10).abs() < 1e-12);
}

fn run_tracks(tracks: usize, horizon_secs: u64) -> frap::sim::SimMetrics {
    let horizon = Time::from_secs(horizon_secs);
    let mut sim = SimBuilder::new(tsce::STAGES)
        .reservations(tsce::reservations().to_vec())
        .reserved_importance(tsce::CRITICAL)
        .wait(WaitPolicy::WaitUpTo(TimeDelta::from_millis(200)))
        .build();
    let arrivals = tsce::TsceScenario::new(tracks).arrivals(horizon);
    sim.run(arrivals.into_iter(), horizon).clone()
}

#[test]
fn moderate_tracking_load_fully_admitted_no_misses() {
    let m = run_tracks(200, 10);
    assert_eq!(m.missed, 0, "no deadline misses in the TSCE scenario");
    assert_eq!(m.wait_timeouts, 0, "200 tracks fit comfortably");
    assert!(m.acceptance_ratio() > 0.999);
}

#[test]
fn heavy_tracking_load_keeps_hard_guarantees() {
    let m = run_tracks(600, 10);
    // Overloaded tracking: some updates may time out waiting, but nothing
    // admitted ever misses, and stage 1 is the bottleneck.
    assert_eq!(m.missed, 0);
    let s1 = m.stage_utilization(0);
    let s2 = m.stage_utilization(1);
    let s3 = m.stage_utilization(2);
    assert!(
        s1 > s2 && s1 > s3,
        "stage 1 is the bottleneck: {s1} {s2} {s3}"
    );
    assert!(s1 > 0.6, "tracking stage should be heavily used: {s1}");
}

#[test]
fn capacity_scales_between_the_two_regimes() {
    let low = run_tracks(100, 6);
    let high = run_tracks(500, 6);
    assert!(high.stage_utilization(0) > low.stage_utilization(0));
    assert_eq!(low.missed + high.missed, 0);
}

#[test]
fn wait_queue_raises_admission_over_immediate_rejection() {
    let horizon = Time::from_secs(8);
    let tracks = 600;
    let run = |wait: WaitPolicy| {
        let mut sim = SimBuilder::new(tsce::STAGES)
            .reservations(tsce::reservations().to_vec())
            .reserved_importance(tsce::CRITICAL)
            .wait(wait)
            .build();
        let arrivals = tsce::TsceScenario::new(tracks).arrivals(horizon);
        sim.run(arrivals.into_iter(), horizon).clone()
    };
    let waiting = run(WaitPolicy::WaitUpTo(TimeDelta::from_millis(200)));
    let immediate = run(WaitPolicy::Reject);
    assert!(
        waiting.admitted >= immediate.admitted,
        "the paper's 200 ms wait must not hurt admission: {} vs {}",
        waiting.admitted,
        immediate.admitted
    );
    assert_eq!(waiting.missed, 0);
}
