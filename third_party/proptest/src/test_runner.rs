//! Test-execution support: configuration, case outcomes, and the RNG.

use std::fmt;

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Outcome of a single failed or discarded case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was discarded (`prop_assume!` failed); not a test failure.
    Reject(String),
    /// The case failed (`prop_assert!` family); fails the whole test.
    Fail(String),
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(msg) => write!(f, "rejected: {msg}"),
            TestCaseError::Fail(msg) => write!(f, "failed: {msg}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// A small, fast, deterministic RNG (splitmix64).
///
/// Each property test seeds one from its fully qualified name, so runs
/// are reproducible without any persisted state.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from an arbitrary string (FNV-1a hash).
    pub fn deterministic(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform `f64` in `[0, 1)` with 53 random mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
