//! A dependency-free stand-in for the subset of the `proptest` API this
//! workspace uses, substituted via `[patch.crates-io]` because the build
//! environment has no network access (DESIGN.md §6).
//!
//! Semantics: each `proptest!` test runs `ProptestConfig::cases` random
//! cases drawn from its strategies with a deterministic per-test seed
//! (derived from the test's module path and name), so failures are
//! reproducible run-to-run. Unlike the real crate there is **no input
//! shrinking** and no persisted failure regressions — a failing case is
//! reported with its case number and generated inputs left to the panic
//! message. The strategy combinators implemented are exactly the ones the
//! workspace's tests use: numeric ranges, tuples, `collection::vec`,
//! `prop_map`, and the `ANY` generators for `u64`/`f64`/`bool`.

#![forbid(unsafe_code)]

pub mod strategy;
pub mod test_runner;

/// Vector-valued strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::{SizeRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s of `element` with a length drawn from
    /// `size` (an exact `usize`, a `Range`, or a `RangeInclusive`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy::new(element, size.into())
    }
}

/// Numeric `ANY` strategies (`proptest::num::u64::ANY`, …).
pub mod num {
    macro_rules! any_uint_mod {
        ($($m:ident : $t:ty),+ $(,)?) => {$(
            /// `ANY` strategy over the full value range of the type.
            pub mod $m {
                /// Generates uniformly random values over the whole type.
                pub const ANY: Any = Any;
                /// The strategy type behind [`ANY`].
                #[derive(Clone, Copy, Debug)]
                pub struct Any;
                impl crate::strategy::Strategy for Any {
                    type Value = $t;
                    fn generate(&self, rng: &mut crate::test_runner::TestRng) -> $t {
                        rng.next_u64() as $t
                    }
                }
            }
        )+};
    }
    any_uint_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i32: i32, i64: i64);

    /// `ANY` strategy over every `f64` bit pattern (including ±∞ and NaN).
    pub mod f64 {
        /// Generates arbitrary `f64` bit patterns, NaNs and infinities
        /// included — the distribution the workspace's validation-totality
        /// tests rely on.
        pub const ANY: Any = Any;
        /// The strategy type behind [`ANY`].
        #[derive(Clone, Copy, Debug)]
        pub struct Any;
        impl crate::strategy::Strategy for Any {
            type Value = f64;
            fn generate(&self, rng: &mut crate::test_runner::TestRng) -> f64 {
                f64::from_bits(rng.next_u64())
            }
        }
    }
}

/// The boolean `ANY` strategy (`proptest::bool::ANY`).
pub mod bool {
    /// Generates `true`/`false` with equal probability.
    pub const ANY: Any = Any;
    /// The strategy type behind [`ANY`].
    #[derive(Clone, Copy, Debug)]
    pub struct Any;
    impl crate::strategy::Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut crate::test_runner::TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that runs the body for `cases` generated inputs.
///
/// The body is evaluated in a context whose return type is
/// `Result<(), TestCaseError>`, so `return Ok(())` skips the rest of a
/// case and `prop_assert!`-style macros early-return failures.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, $($fmt)+);
    }};
}

/// Discards the current case (counts as neither pass nor fail) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                format!("assumption failed: {}", stringify!($cond)),
            ));
        }
    };
}
