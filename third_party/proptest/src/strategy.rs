//! The [`Strategy`] trait and the combinators the workspace uses.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of random values of one type.
///
/// The real proptest `Strategy` produces shrinkable value *trees*; this
/// stand-in generates plain values (no shrinking), which is all the
/// workspace's property tests require to exercise their invariants.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (the `prop_map` combinator).
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying a bounded number of
    /// times (the `prop_filter` combinator).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always generates a clone of one value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The [`Strategy::prop_map`] combinator.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_filter`] combinator.
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.whence);
    }
}

macro_rules! uint_ranges {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )+};
}
uint_ranges!(u8, u16, u32, u64, usize);

macro_rules! int_ranges {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }
    )+};
}
int_ranges!(i8, i16, i32, i64, isize);

macro_rules! float_ranges {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t; // in [0, 1)
                self.start + unit * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                lo + rng.unit_f64() as $t * (hi - lo)
            }
        }
    )+};
}
float_ranges!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategies!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// The length specification accepted by [`crate::collection::vec`].
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: r.end() + 1,
        }
    }
}

/// The strategy returned by [`crate::collection::vec`].
#[derive(Clone, Copy, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> VecStrategy<S> {
    pub(crate) fn new(element: S, size: SizeRange) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi_exclusive - self.size.lo) as u64;
        let len = self.size.lo + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
