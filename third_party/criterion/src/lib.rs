//! A dependency-free stand-in for the subset of the `criterion` API this
//! workspace's benches use, substituted via `[patch.crates-io]` because the
//! build environment has no network access (DESIGN.md §6).
//!
//! It is a real (if minimal) benchmark harness, not a no-op: each
//! benchmark is warmed up, then timed over `sample_size` samples whose
//! iteration counts are auto-scaled to a per-sample time target, and the
//! min / mean / max per-iteration times are printed. There are no plots,
//! no saved baselines, and no statistical outlier analysis.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; the stand-in treats every
/// variant as "one setup per iteration batch of 1".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `function_name/parameter`.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing configuration shared by every benchmark in a group.
#[derive(Clone, Copy, Debug)]
struct Config {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
            measurement: Duration::from_millis(600),
        }
    }
}

/// The benchmark manager handed to `criterion_group!` target functions.
#[derive(Debug)]
pub struct Criterion {
    config: Config,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            config: Config::default(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample size must be at least 2");
        self.config.sample_size = n;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.config.warm_up = d;
        self
    }

    /// Sets the total measurement time target per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.config.measurement = d;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, self.config, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.config.sample_size = n;
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement = d;
        self
    }

    /// Declares throughput for reporting; the stand-in ignores it.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark identified by `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.config, &mut f);
        self
    }

    /// Runs a benchmark over one input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.config, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (reporting already happened per-benchmark).
    pub fn finish(self) {}
}

/// Throughput declaration accepted (and ignored) by the stand-in.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// The per-sample timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Lets the routine time itself: it receives the iteration count and
    /// returns the measured duration (used to exclude per-call setup).
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        self.elapsed = routine(self.iters);
    }

    /// Times `routine` over fresh inputs built by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }

    /// Like `iter_batched` but the routine borrows its input mutably.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Runs one benchmark: calibrate iteration count during warm-up, take
/// `sample_size` samples, and print min/mean/max time per iteration.
fn run_benchmark(label: &str, config: Config, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibration: grow the iteration count until one sample takes long
    // enough to time reliably.
    let per_sample = config.measurement.max(Duration::from_millis(100)) / config.sample_size as u32;
    let mut iters: u64 = 1;
    let warm_up_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= per_sample || warm_up_start.elapsed() >= config.warm_up {
            if b.elapsed < per_sample && b.elapsed > Duration::ZERO {
                let scale = per_sample.as_nanos() as f64 / b.elapsed.as_nanos().max(1) as f64;
                iters =
                    ((iters as f64 * scale).ceil() as u64).clamp(iters, iters.saturating_mul(1000));
            }
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters.max(1) as f64);
    }
    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter_ns.first().copied().unwrap_or(0.0);
    let max = per_iter_ns.last().copied().unwrap_or(0.0);
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len().max(1) as f64;
    println!(
        "{label:<48} time: [{} {} {}]  ({} samples x {} iters)",
        format_ns(min),
        format_ns(mean),
        format_ns(max),
        config.sample_size,
        iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
