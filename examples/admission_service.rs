//! The TSCE scenario through the *concurrent service* layer.
//!
//! Where `shipboard_tsce.rs` simulates the shipboard pipeline in virtual
//! time, this example drives the same Section 5 workload through
//! [`frap::service::AdmissionService`] — the sharded, wall-clock-capable
//! admission controller — replaying the generated arrival instants on a
//! [`ManualClock`] so the run is deterministic. It prints the admission
//! counters (admitted / rejected / shed / deadline-expired) and the tail
//! of the decision-latency histogram.
//!
//! Run with: `cargo run --release --example admission_service`

use frap::core::admission::ExactContributions;
use frap::core::region::FeasibleRegion;
use frap::core::time::Time;
use frap::service::{AdmissionService, ManualClock, ServiceOutcome};
use frap::workload::tsce;
use std::sync::Arc;

fn main() {
    // The paper's per-stage reservations for the certified-critical tasks
    // (Weapon Detection, Weapon Targeting, UAV video) become floors that
    // idle resets never drop below.
    let reservations = tsce::reservations();
    println!("TSCE through the service layer");
    println!("reserved synthetic utilization per stage: {reservations:?}\n");

    let horizon = Time::from_secs(20);
    // Weapon detections are the one *aperiodic* critical stream: they are
    // admitted online (and may shed tracking work); the periodic critical
    // tasks are recognized below by their computation signature.
    let wd_cost = tsce::weapon_detection_spec().total_computation();
    for tracks in [200usize, 400, 550] {
        let clock = Arc::new(ManualClock::new());
        let service = AdmissionService::builder(
            FeasibleRegion::deadline_monotonic(tsce::STAGES),
            ExactContributions,
        )
        .clock(Arc::clone(&clock))
        .shards(2)
        .reservations(&reservations)
        .build();

        // Replay the generated arrival schedule on the manual clock.
        // *Periodic* certified-critical tasks (Weapon Targeting, UAV
        // video) ride on the reservation floors — charging them again
        // would double-count the capacity certified offline — while the
        // aperiodic weapon detections and all tracking load go through
        // online admission. Every admitted ticket is detached: its
        // synthetic utilization stays charged until the deadline
        // decrement, exactly the paper's rule.
        let mut reserved = 0u64;
        for (at, spec) in tsce::TsceScenario::new(tracks).arrivals(horizon) {
            clock.set(at);
            if spec.importance == tsce::CRITICAL && spec.total_computation() != wd_cost {
                reserved += 1;
                service.maintain();
                continue;
            }
            match service.try_admit_or_shed(&spec) {
                ServiceOutcome::Admitted(ticket) => {
                    ticket.detach();
                }
                ServiceOutcome::AdmittedAfterShedding { ticket, .. } => {
                    ticket.detach();
                }
                ServiceOutcome::Rejected => {}
            }
        }
        clock.set(horizon);
        service.maintain();

        let snap = service.snapshot();
        let c = snap.counters;
        println!("{tracks} tracks over {}s:", horizon.as_secs_f64());
        println!(
            "  admitted {}  rejected {}  shed {}  deadline-expired {}  \
             reserved(pre-certified) {}  (accept {:.1}%)",
            c.admitted,
            c.rejected,
            c.shed,
            c.expired,
            reserved,
            c.acceptance_ratio() * 100.0
        );
        println!(
            "  decision latency: p50 {} ns, p99 {} ns, max {} ns",
            snap.decision_latency_ns(0.50),
            snap.decision_latency_ns(0.99),
            snap.decision_max_ns()
        );
        let floors: Vec<String> = snap
            .utilizations
            .iter()
            .map(|u| format!("{u:.3}"))
            .collect();
        println!(
            "  end-of-run utilization (≥ reservations): [{}]\n",
            floors.join(", ")
        );
        service.debug_validate();
    }
    println!("all invariants validated");
}
