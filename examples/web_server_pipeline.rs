//! A three-tier web server (front end → business logic → database) serving
//! aperiodic requests with end-to-end response-time guarantees — the
//! motivating scenario from the paper's introduction.
//!
//! Compares feasible-region admission control against no admission control
//! at 150 % offered load: the controller trades a fraction of the arrivals
//! for a hard guarantee that every *accepted* request meets its deadline.
//!
//! Run with: `cargo run --example web_server_pipeline`

use frap::core::admission::AlwaysAdmit;
use frap::core::time::Time;
use frap::sim::pipeline::SimBuilder;
use frap::sim::SimMetrics;
use frap::workload::taskgen::PipelineWorkloadBuilder;

const STAGES: usize = 3; // front end, app tier, database

fn serve(with_admission_control: bool) -> SimMetrics {
    let horizon = Time::from_secs(30);
    // Mean request work: 2 ms + 5 ms + 3 ms; deadlines ~ 60x total work
    // (hundreds of concurrent requests in flight, as on a real server).
    let workload = PipelineWorkloadBuilder::new(STAGES)
        .stage_means_ms(&[2.0, 5.0, 3.0])
        .resolution(60.0)
        .load(1.5)
        .seed(2024)
        .build()
        .until(horizon);

    let mut sim = if with_admission_control {
        SimBuilder::new(STAGES).record_outcomes(false).build()
    } else {
        SimBuilder::new(STAGES)
            .region(AlwaysAdmit::new(STAGES))
            .build()
    };
    sim.run(workload, horizon).clone()
}

fn report(label: &str, m: &SimMetrics) {
    println!("--- {label} ---");
    println!("  offered:     {}", m.offered);
    println!(
        "  admitted:    {} ({:.1}%)",
        m.admitted,
        m.acceptance_ratio() * 100.0
    );
    println!("  completed:   {}", m.completed);
    println!(
        "  missed:      {} ({:.2}% of completions)",
        m.missed,
        m.miss_ratio() * 100.0
    );
    println!("  mean resp:   {}", m.mean_response());
    println!(
        "  resp p50/p99: {} / {}",
        m.response_percentile(0.50),
        m.response_percentile(0.99)
    );
    println!("  max resp:    {}", m.response_max);
    for j in 0..STAGES {
        println!("  tier {j} util: {:.1}%", m.stage_utilization(j) * 100.0);
    }
    println!();
}

fn main() {
    println!("three-tier server at 150% offered load (bottleneck tier capacity)\n");
    let with_ac = serve(true);
    let without_ac = serve(false);
    report("feasible-region admission control", &with_ac);
    report("no admission control", &without_ac);

    assert_eq!(
        with_ac.missed, 0,
        "the feasible region guarantees every admitted request its deadline"
    );
    println!(
        "=> admission control served {} requests with ZERO deadline misses;\n\
         => without it, {} of {} completed requests blew their deadline.",
        with_ac.completed, without_ac.missed, without_ac.completed
    );
}
