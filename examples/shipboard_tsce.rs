//! The Total Ship Computing Environment case study (paper Section 5).
//!
//! Certifies the Table 1 critical task set offline (Equation 13), reserves
//! its synthetic utilization, then admits Target Tracking updates online
//! with a 200 ms admission wait queue — reproducing the paper's finding
//! that the system runs its bottleneck stage near capacity while every
//! hard deadline holds.
//!
//! Run with: `cargo run --example shipboard_tsce`

use frap::core::time::{Time, TimeDelta};
use frap::sim::pipeline::{SimBuilder, WaitPolicy};
use frap::workload::tsce;

fn main() {
    // ------------------------------------------------------------
    // 1. Offline certification of the critical tasks (Equation 13).
    // ------------------------------------------------------------
    let reservations = tsce::reservations();
    println!("reserved synthetic utilization per stage: {reservations:?}");
    let cert = tsce::certification_value();
    println!(
        "Equation (13) value: {cert:.4}  ->  {}",
        if cert <= 1.0 {
            "certifiable: Weapon Detection + Weapon Targeting + UAV video are schedulable"
        } else {
            "NOT certifiable"
        }
    );

    // ------------------------------------------------------------
    // 2. Online admission of Target Tracking load on top.
    // ------------------------------------------------------------
    let horizon = Time::from_secs(20);
    for tracks in [200usize, 400, 550] {
        let mut sim = SimBuilder::new(tsce::STAGES)
            .reservations(reservations.to_vec())
            .reserved_importance(tsce::CRITICAL)
            .wait(WaitPolicy::WaitUpTo(TimeDelta::from_millis(200)))
            .build();
        let scenario = tsce::TsceScenario::new(tracks);
        let m = sim.run(scenario.arrivals(horizon).into_iter(), horizon);

        println!(
            "\n{tracks} tracks: accept {:.1}%, wait-timeouts {}, misses {}",
            m.acceptance_ratio() * 100.0,
            m.wait_timeouts,
            m.missed
        );
        for j in 0..tsce::STAGES {
            println!(
                "  stage {} utilization: {:.1}%{}",
                j + 1,
                m.stage_utilization(j) * 100.0,
                if j == 0 {
                    "  (tracking: bottleneck)"
                } else {
                    ""
                }
            );
        }
        assert_eq!(m.missed, 0, "hard deadlines must hold");
    }
    println!(
        "\npaper's observation reproduced: hundreds of tracks run concurrently \
         with the tracking stage near capacity and zero deadline misses."
    );
}
