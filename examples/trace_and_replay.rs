//! Capture, save, replay, and trace a workload.
//!
//! Demonstrates the operational tooling around the simulator: arrival
//! traces serialize to a shareable text format, and the simulator can
//! record a scheduling trace (admissions, dispatches, completions, idle
//! resets) for post-mortem inspection.
//!
//! Run with: `cargo run --example trace_and_replay`

use frap::core::time::Time;
use frap::sim::pipeline::SimBuilder;
use frap::workload::replay::{load_arrivals, save_arrivals};
use frap::workload::taskgen::PipelineWorkloadBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = Time::from_secs(1);

    // 1. Generate a workload and save it.
    let original: Vec<_> = PipelineWorkloadBuilder::new(2)
        .load(1.0)
        .resolution(30.0)
        .seed(7)
        .build()
        .until(horizon)
        .collect();
    let path = std::env::temp_dir().join("frap_demo_trace.txt");
    save_arrivals(&path, &original)?;
    println!("saved {} arrivals to {}", original.len(), path.display());

    // 2. Load it back — bit-identical workload, shareable across machines.
    let replayed = load_arrivals(&path)?;
    assert_eq!(original.len(), replayed.len());

    // 3. Run it with scheduling-trace recording enabled.
    let mut sim = SimBuilder::new(2).trace(50_000).build();
    let m = sim.run(replayed.into_iter(), horizon).clone();
    println!(
        "replayed run: {} offered, {} admitted, {} completed, {} missed",
        m.offered, m.admitted, m.completed, m.missed
    );
    println!(
        "response times: p50 {}  p99 {}  max {}",
        m.response_percentile(0.50),
        m.response_percentile(0.99),
        m.response_max
    );

    // 4. Inspect the trace: overall stats and one task's life story.
    let trace = sim.trace().expect("tracing enabled");
    println!(
        "\ntrace: {} events retained ({} dropped)",
        trace.len(),
        trace.dropped()
    );
    if let Some(first_admitted) = trace.iter().find_map(|e| match e {
        frap::sim::TraceEvent::Admitted { task, .. } => Some(*task),
        _ => None,
    }) {
        println!("life of {first_admitted}:");
        for event in trace.of_task(first_admitted) {
            println!("  {event}");
        }
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
