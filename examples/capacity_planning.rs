//! Offline capacity planning with the feasible region.
//!
//! Shows the analysis-side tooling: certifying a critical task set
//! (Section 5's workflow), splitting the remaining budget across stages
//! proportionally to demand, querying per-stage headroom, and the
//! cost-of-depth table behind Section 3.1's "the bound does not degrade
//! with pipeline length" argument.
//!
//! Run with: `cargo run --example capacity_planning`

use frap::core::capacity::{balanced_allocation, depth_table, stage_headroom, weighted_allocation};
use frap::core::certify::ReservationPlan;
use frap::core::graph::TaskSpec;
use frap::core::region::FeasibleRegion;
use frap::core::task::StageId;
use frap::core::time::TimeDelta;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = TimeDelta::from_millis;
    let region = FeasibleRegion::deadline_monotonic(3);

    // ----------------------------------------------------------------
    // 1. Certify the critical tasks and reserve their capacity.
    // ----------------------------------------------------------------
    let heartbeat = TaskSpec::pipeline(ms(100), &[ms(5), ms(2), ms(1)])?;
    let alarm = TaskSpec::pipeline(ms(250), &[ms(20), ms(10), ms(5)])?;
    let mut plan = ReservationPlan::new(3);
    plan.add(&heartbeat).add(&alarm);
    let report = plan.certify(&region);
    println!(
        "critical set: reservations {:?}, Eq.(13) value {:.3}, budget {:.3} -> {}",
        report.reservations,
        report.value,
        report.budget,
        if report.feasible {
            "certified"
        } else {
            "INFEASIBLE"
        }
    );
    println!("budget left for dynamic work: {:.3}\n", report.margin());

    // ----------------------------------------------------------------
    // 2. Split the region across stages for an imbalanced demand profile.
    // ----------------------------------------------------------------
    let balanced = balanced_allocation(&region);
    println!("balanced surface point:            {balanced:?}");
    // Stage 0 sees 4× the demand of stage 2.
    let weighted = weighted_allocation(&region, &[4.0, 2.0, 1.0])?;
    println!("demand-weighted (4:2:1) allocation: {weighted:?}\n");

    // ----------------------------------------------------------------
    // 3. Live headroom queries at an operating point.
    // ----------------------------------------------------------------
    let operating = [0.25, 0.15, 0.05];
    for j in 0..3 {
        let h = stage_headroom(&region, &operating, StageId::new(j))?;
        println!("at {operating:?}, stage {j} can still absorb ΔU = {h:.4}");
    }

    // ----------------------------------------------------------------
    // 4. The cost of pipeline depth.
    // ----------------------------------------------------------------
    println!("\n   N   per-stage bound   aggregate admissible");
    for (n, per_stage, aggregate) in depth_table(8) {
        println!("  {n:2}        {per_stage:.4}              {aggregate:.4}");
    }
    println!(
        "\nper-stage bounds shrink like O(1/N) but per-stage demand does too \
         (Section 3.1), and the aggregate actually grows with depth."
    );
    Ok(())
}
