//! Importance-aware overload management (paper Section 5).
//!
//! Scheduling priority inside the pipeline stays deadline-monotonic (the
//! optimal policy), while *semantic importance* only decides what gets
//! shed at overload: when an important arrival falls outside the feasible
//! region, the admission controller evicts the least important admitted
//! work until the arrival fits.
//!
//! Run with: `cargo run --example overload_shedding`

use frap::core::graph::TaskSpec;
use frap::core::task::Importance;
use frap::core::time::{Time, TimeDelta};
use frap::sim::pipeline::{OverloadPolicy, SimBuilder};
use frap::workload::rng::Rng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = TimeDelta::from_millis;
    let horizon = Time::from_secs(20);

    // Background load: a steady stream of low-importance batch jobs that
    // alone would saturate the two-stage pipeline...
    let mut arrivals: Vec<(Time, TaskSpec)> = Vec::new();
    let mut rng = Rng::new(42);
    let mut t = Time::ZERO;
    while t <= horizon {
        t += TimeDelta::from_micros(6_000 + rng.range_u64(6_000));
        let batch =
            TaskSpec::pipeline(ms(400), &[ms(12), ms(12)])?.with_importance(Importance::new(1));
        arrivals.push((t, batch));
    }
    // ...plus occasional mission-critical alerts that must always get in.
    let mut t = Time::from_millis(137);
    while t <= horizon {
        let alert =
            TaskSpec::pipeline(ms(100), &[ms(8), ms(8)])?.with_importance(Importance::CRITICAL);
        arrivals.push((t, alert));
        t += TimeDelta::from_millis(500);
    }
    arrivals.sort_by_key(|&(t, _)| t);
    let total_alerts = arrivals
        .iter()
        .filter(|(_, s)| s.importance == Importance::CRITICAL)
        .count();

    for (label, policy) in [
        (
            "reject-arrival (no shedding)",
            OverloadPolicy::RejectArrival,
        ),
        (
            "shed-less-important (paper §5)",
            OverloadPolicy::ShedLessImportant,
        ),
    ] {
        let mut sim = SimBuilder::new(2)
            .overload(policy)
            .record_outcomes(true)
            .build();
        let m = sim.run(arrivals.clone().into_iter(), horizon);
        // Alerts have deadline 100 ms; count how many of the *offered*
        // alerts completed on time.
        let alerts_served = m
            .outcomes
            .iter()
            .filter(|o| o.deadline.saturating_since(o.arrival) == ms(100) && !o.missed())
            .count();
        println!("--- {label} ---");
        println!(
            "  admitted {}/{} offered, shed {}, misses {}",
            m.admitted, m.offered, m.shed, m.missed
        );
        println!("  critical alerts served on time: {alerts_served}/{total_alerts}");
        println!(
            "  stage utilization: {:.1}% / {:.1}%\n",
            m.stage_utilization(0) * 100.0,
            m.stage_utilization(1) * 100.0
        );
        assert_eq!(m.missed, 0, "admitted work always meets its deadline");
        if policy == OverloadPolicy::ShedLessImportant {
            assert_eq!(
                alerts_served, total_alerts,
                "with shedding, every critical alert gets through"
            );
        }
    }
    println!(
        "=> shedding decouples semantic importance from scheduling priority: \
         the scheduler stays deadline-monotonic, yet critical alerts always fit."
    );
    Ok(())
}
