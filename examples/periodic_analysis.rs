//! Periodic task sets: classical offline analysis vs online admission.
//!
//! Certifies a periodic pipeline set with holistic response-time analysis
//! (the paper's related-work baseline), shows how release jitter wrecks
//! that analysis, and then serves the same jittery streams through the
//! feasible-region admission controller — the paper's Section 1
//! motivation, end to end.
//!
//! Run with: `cargo run --example periodic_analysis`

use frap::core::graph::TaskSpec;
use frap::core::rta::{HolisticAnalysis, PeriodicTask};
use frap::core::time::{Time, TimeDelta};
use frap::sim::pipeline::SimBuilder;
use frap::workload::taskgen::PeriodicSet;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = TimeDelta::from_millis;

    // A control system's periodic set on a two-stage pipeline
    // (sense → actuate).
    let streams: [(u64, [u64; 2]); 5] = [
        (20, [2, 2]),   // fast control loop
        (50, [6, 4]),   // telemetry
        (100, [10, 8]), // camera A
        (100, [10, 8]), // camera B
        (100, [10, 8]), // logging/planning
    ];

    // ----------------------------------------------------------------
    // 1. Offline certification with holistic RTA (no jitter).
    // ----------------------------------------------------------------
    let mut rta = HolisticAnalysis::new(2);
    for (period, comps) in &streams {
        rta.add(PeriodicTask::deadline_monotonic(
            ms(*period),
            ms(*period),
            comps.iter().map(|&c| ms(c)).collect(),
        ));
    }
    let clean = rta.analyze();
    println!("holistic RTA, zero jitter:");
    for (i, t) in clean.tasks.iter().enumerate() {
        println!(
            "  stream {i}: worst-case end-to-end response {} (deadline {} ms) -> {}",
            t.total,
            streams[i].0,
            if t.schedulable { "ok" } else { "MISS" }
        );
    }
    assert!(clean.schedulable);

    // ----------------------------------------------------------------
    // 2. The same set with heavy release jitter: RTA capitulates.
    // ----------------------------------------------------------------
    let mut jittery = HolisticAnalysis::new(2);
    for (period, comps) in &streams {
        jittery.add(
            PeriodicTask::deadline_monotonic(
                ms(*period),
                ms(*period),
                comps.iter().map(|&c| ms(c)).collect(),
            )
            .with_jitter(ms(period * 9 / 10)),
        );
    }
    let analysis = jittery.analyze();
    println!(
        "\nholistic RTA, 90% release jitter: schedulable = {}",
        analysis.schedulable
    );
    assert!(
        !analysis.schedulable,
        "near-period jitter inflates the interference terms past the deadlines"
    );

    // ----------------------------------------------------------------
    // 3. Serve the jittery streams online instead.
    // ----------------------------------------------------------------
    let horizon = Time::from_secs(30);
    let mut set = PeriodicSet::new();
    for (period, comps) in &streams {
        let comps: Vec<TimeDelta> = comps.iter().map(|&c| ms(c)).collect();
        let spec = TaskSpec::pipeline(ms(*period), &comps)?;
        set.add_with(spec, ms(*period), TimeDelta::ZERO, 0.9);
    }
    set.stagger_phases();
    let mut sim = SimBuilder::new(2).build();
    let m = sim
        .run(set.arrivals(horizon, 42).into_iter(), horizon)
        .clone();
    println!(
        "\nonline feasible-region admission of the same jittery streams:\n\
         {} instances offered, {:.1}% admitted, {} deadline misses\n\
         response p50/p99: {} / {}",
        m.offered,
        m.acceptance_ratio() * 100.0,
        m.missed,
        m.response_percentile(0.50),
        m.response_percentile(0.99),
    );
    assert_eq!(m.missed, 0);
    println!(
        "\n=> the aperiodic feasible region needs no periods, no jitter bounds,\n\
         and still guarantees every admitted instance its end-to-end deadline."
    );
    Ok(())
}
