//! Partitioned multi-server stages: a logical application tier backed by
//! three replicas.
//!
//! The paper analyzes *independent resources*; a tier of `m` identical
//! servers fits the theory by treating each replica as its own stage and
//! binding every task to one replica at admission time (partitioned
//! scheduling). The interesting knob is the *routing policy*: binding to
//! the **least-utilized** replica balances the synthetic-utilization
//! vector, which keeps the region sum low and admits measurably more than
//! oblivious round-robin-by-hash routing — with the per-replica deadline
//! guarantee intact either way.
//!
//! Run with: `cargo run --example replicated_tier`

use frap::core::graph::TaskSpec;
use frap::core::synthetic::SyntheticState;
use frap::core::task::StageId;
use frap::core::time::{Time, TimeDelta};
use frap::sim::pipeline::SimBuilder;
use frap::sim::SimMetrics;
use frap::workload::rng::Rng;

/// Stage 0: front end. Stages 1–3: app-server replicas. Stage 4: database.
const STAGES: usize = 5;
const REPLICAS: [StageId; 3] = [StageId::new(1), StageId::new(2), StageId::new(3)];
/// Logical placeholder stage rewritten by the router.
const APP_TIER: StageId = StageId::new(1);

fn workload(horizon: Time, seed: u64) -> Vec<(Time, TaskSpec)> {
    let ms = TimeDelta::from_millis;
    let mut rng = Rng::new(seed);
    let mut out = Vec::new();
    let mut t = Time::ZERO;
    loop {
        // ~250 requests/s: the app tier needs all three replicas.
        t += TimeDelta::from_micros(3_000 + rng.range_u64(2_000));
        if t > horizon {
            break;
        }
        let app_work = TimeDelta::from_micros(6_000 + rng.range_u64(8_000));
        let deadline = ms(150 + rng.range_u64(300));
        // FE -> APP_TIER (rebound to a replica by the router) -> DB.
        let spec = {
            use frap::core::task::SubtaskSpec;
            let graph = frap::core::graph::TaskGraph::chain(vec![
                SubtaskSpec::new(StageId::new(0), ms(1)),
                SubtaskSpec::new(APP_TIER, app_work),
                SubtaskSpec::new(StageId::new(4), ms(3)),
            ])
            .expect("valid chain");
            TaskSpec::new(deadline, graph)
        };
        out.push((t, spec));
    }
    out
}

fn least_utilized(state: &SyntheticState, spec: TaskSpec) -> TaskSpec {
    let best = REPLICAS
        .iter()
        .copied()
        .min_by(|a, b| {
            state
                .stage(*a)
                .value()
                .partial_cmp(&state.stage(*b).value())
                .expect("utilizations are finite")
        })
        .expect("replicas exist");
    spec.remap_stages(|s| if s == APP_TIER { best } else { s })
}

fn hash_routed(state: &SyntheticState, spec: TaskSpec) -> TaskSpec {
    // Oblivious routing: pick a replica from the deadline bits (a stand-in
    // for hashing the session id).
    let _ = state;
    let pick = REPLICAS[(spec.deadline.as_micros() % 3) as usize];
    spec.remap_stages(|s| if s == APP_TIER { pick } else { s })
}

fn run(router: fn(&SyntheticState, TaskSpec) -> TaskSpec) -> SimMetrics {
    let horizon = Time::from_secs(20);
    let mut sim = SimBuilder::new(STAGES).router(router).build();
    sim.run(workload(horizon, 77).into_iter(), horizon).clone()
}

fn main() {
    let smart = run(least_utilized);
    let oblivious = run(hash_routed);

    for (label, m) in [
        ("least-utilized routing", &smart),
        ("hash routing", &oblivious),
    ] {
        println!("--- {label} ---");
        println!(
            "  admitted {}/{} ({:.1}%), missed {}",
            m.admitted,
            m.offered,
            m.acceptance_ratio() * 100.0,
            m.missed
        );
        for (j, name) in [(1, "replica A"), (2, "replica B"), (3, "replica C")] {
            println!("  {name}: {:.1}% busy", m.stage_utilization(j) * 100.0);
        }
        println!();
    }
    assert_eq!(
        smart.missed + oblivious.missed,
        0,
        "both routings stay safe"
    );
    assert!(
        smart.admitted >= oblivious.admitted,
        "utilization-aware routing should not admit less"
    );
    println!(
        "=> binding each task to the least-utilized replica keeps the \
         utilization vector balanced and admits {} more requests \
         ({:+.1}%), with the deadline guarantee intact under both policies.",
        smart.admitted - oblivious.admitted,
        (smart.admitted as f64 / oblivious.admitted as f64 - 1.0) * 100.0
    );
}
