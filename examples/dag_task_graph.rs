//! Arbitrary task graphs (paper Section 3.3, Figure 3 / Theorem 2).
//!
//! Builds the paper's example DAG — a radar frame processed on R1, fanned
//! out to two parallel analyses on R2 ∥ R3, fused on R4 — derives its
//! feasible region `f(U1) + max(f(U2), f(U3)) + f(U4) ≤ 1`, and runs it
//! through the simulator with a graph-aware admission controller.
//!
//! Run with: `cargo run --example dag_task_graph`

use frap::core::graph::{TaskGraph, TaskSpec};
use frap::core::region::{FeasibleRegion, GraphRegion, RegionTest};
use frap::core::task::{StageId, SubtaskSpec};
use frap::core::time::{Time, TimeDelta};
use frap::sim::pipeline::SimBuilder;

fn radar_frame(deadline_ms: u64) -> TaskSpec {
    let ms = TimeDelta::from_millis;
    let mut b = TaskGraph::builder();
    let ingest = b.add(SubtaskSpec::new(StageId::new(0), ms(4))); // R1: ingest
    let track = b.add(SubtaskSpec::new(StageId::new(1), ms(10))); // R2: tracking
    let classify = b.add(SubtaskSpec::new(StageId::new(2), ms(8))); // R3: classification
    let fuse = b.add(SubtaskSpec::new(StageId::new(3), ms(4))); // R4: fusion
    b.edge(ingest, track)
        .edge(ingest, classify)
        .edge(track, fuse)
        .edge(classify, fuse);
    TaskSpec::new(
        TimeDelta::from_millis(deadline_ms),
        b.build().expect("acyclic"),
    )
}

fn main() {
    let frame = radar_frame(400);
    println!(
        "task graph: {} subtasks, sources {:?}, sinks {:?}",
        frame.graph.len(),
        frame.graph.sources(),
        frame.graph.sinks()
    );
    println!(
        "end-to-end delay expression d(L) over unit delays: {} (= 1 + max(1,1) + 1)",
        frame.graph.longest_path(&[1.0; 4])
    );

    // The feasible region induced by this shape (Theorem 2).
    let region = GraphRegion::new(FeasibleRegion::deadline_monotonic(4), frame.graph.clone());
    // f(0.2) + max(f(0.4), f(0.4)) + f(0.2) ≈ 0.98 ≤ 1: feasible, even
    // though a 4-stage *chain* at these utilizations would be far outside.
    let inside = [0.2, 0.4, 0.4, 0.2];
    let outside = [0.2, 0.4, 0.4, 0.4];
    println!(
        "utilizations {inside:?} feasible? {}",
        region.feasible(&inside)
    );
    println!(
        "utilizations {outside:?} feasible? {}",
        region.feasible(&outside)
    );
    println!(
        "note: parallel branches share the same term via max(), so the \
         branches tolerate far more load than a 4-stage chain would.\n"
    );

    // Simulate a stream of radar frames admitted against the graph region.
    let horizon = Time::from_secs(10);
    let mut sim = SimBuilder::new(4)
        .region(region)
        .record_outcomes(true)
        .build();
    let arrivals: Vec<(Time, TaskSpec)> = (0..2_000)
        .map(|i| (Time::from_micros(i * 5_000), radar_frame(400)))
        .collect();
    let m = sim.run(arrivals.into_iter(), horizon);
    println!(
        "simulated {} frames: admitted {} ({:.1}%), missed {}",
        m.offered,
        m.admitted,
        m.acceptance_ratio() * 100.0,
        m.missed
    );
    let uncontended: Vec<_> = m
        .outcomes
        .iter()
        .filter(|o| o.response() == TimeDelta::from_millis(18))
        .collect();
    println!(
        "{} frames saw the uncontended critical path (4 + max(10, 8) + 4 = 18 ms)",
        uncontended.len()
    );
    assert_eq!(m.missed, 0, "Theorem 2's region keeps every frame on time");
}
