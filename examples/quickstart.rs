//! Quickstart: feasible-region admission control on a three-stage pipeline.
//!
//! Run with: `cargo run --example quickstart`

use frap::core::admission::{Admission, ExactContributions};
use frap::core::delay::{stage_delay_factor, UNIPROCESSOR_BOUND};
use frap::core::graph::TaskSpec;
use frap::core::region::FeasibleRegion;
use frap::core::task::StageId;
use frap::core::time::{Time, TimeDelta};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ms = TimeDelta::from_millis;

    // ---------------------------------------------------------------
    // 1. The analysis: the stage delay function and the feasible region.
    // ---------------------------------------------------------------
    println!("stage delay function f(u) = u(1-u/2)/(1-u):");
    for u in [0.1, 0.3, 0.5, UNIPROCESSOR_BOUND] {
        println!("  f({u:.3}) = {:.3}", stage_delay_factor(u));
    }
    println!("single-stage bound: f(u) = 1  at u = {UNIPROCESSOR_BOUND:.4}  (= 1/(1+sqrt(1/2)))\n");

    // A three-stage pipeline under deadline-monotonic scheduling: all
    // end-to-end deadlines are met while  sum_j f(U_j) <= 1.
    let region = FeasibleRegion::deadline_monotonic(3);
    println!(
        "symmetric surface point for 3 stages: U_j = {:.4} per stage\n",
        region.max_equal_utilization()
    );

    // ---------------------------------------------------------------
    // 2. The admission controller: O(stages) per decision.
    // ---------------------------------------------------------------
    let mut ac = Admission::new(region, ExactContributions);

    // A request takes 5 ms + 10 ms + 5 ms through the stages and must
    // finish within 200 ms end to end.
    let request = TaskSpec::pipeline(ms(200), &[ms(5), ms(10), ms(5)])?;
    println!(
        "request contributions C_ij/D_i: {:?}",
        request.contributions().collect::<Vec<_>>()
    );

    let mut admitted = 0;
    let mut rejected = 0;
    for _ in 0..40 {
        match ac.try_admit(Time::ZERO, &request) {
            Some(_id) => admitted += 1,
            None => rejected += 1,
        }
    }
    println!("burst of 40 simultaneous requests: {admitted} admitted, {rejected} rejected");
    println!(
        "synthetic utilizations now: {:?}",
        ac.state_mut().utilizations()
    );

    // ---------------------------------------------------------------
    // 3. The bookkeeping rules: deadlines decrement, idle resets free
    //    capacity early.
    // ---------------------------------------------------------------
    let later = Time::ZERO + ms(200);
    ac.advance_to(later);
    println!(
        "after all deadlines expire: {:?}",
        ac.state_mut().utilizations()
    );
    let id = ac.try_admit(later, &request).expect("capacity is back");
    // The task finishes everywhere and the stages go idle well before its
    // deadline: the idle reset removes its contribution immediately.
    for j in 0..3 {
        ac.on_stage_departure(StageId::new(j), id);
        ac.on_stage_idle(later + ms(25), StageId::new(j));
    }
    println!(
        "after an idle reset 25 ms in: {:?}",
        ac.state_mut().utilizations()
    );
    println!("\nstats: {:?}", ac.stats());
    Ok(())
}
